//! A minimal scoped thread pool with per-job fault isolation.
//!
//! The orchestrator needs exactly two shapes of parallelism — "produce N
//! indexed results" and "mutate N items in place" — with results
//! independent of the worker count. Both run on `std::thread::scope`
//! (replica states borrow the netlist, so `'static` spawning is out) and
//! assign work by index, never by arrival order.
//!
//! A panicking job must not take the run down with it: the `try_` forms
//! catch each job's unwind and report it as a typed [`ReplicaError`] in
//! that job's result slot, leaving every other job's outcome intact. The
//! plain forms are thin wrappers that re-raise the first failure for
//! callers with nothing useful to salvage.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::PoisonError;

/// One job's failure: the replica index it was running as and the panic
/// payload rendered to text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaError {
    /// Index of the failed job.
    pub index: usize,
    /// Panic message (or a placeholder for non-string payloads).
    pub message: String,
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replica {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for ReplicaError {}

/// Renders a caught panic payload to text (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one job under an unwind guard, mapping a panic to [`ReplicaError`].
fn isolate<T>(index: usize, job: impl FnOnce() -> T) -> Result<T, ReplicaError> {
    catch_unwind(AssertUnwindSafe(job)).map_err(|payload| ReplicaError {
        index,
        message: panic_message(payload),
    })
}

/// Runs `job(0..n)` on up to `threads` workers and returns the results
/// in index order, each individually fault-isolated: a panicking job
/// yields `Err(ReplicaError)` in its slot without disturbing the others.
///
/// `threads <= 1` runs sequentially on the caller's thread — the
/// graceful fallback used when parallelism is disabled. Work is assigned
/// by striding (worker `w` takes indices `w, w + threads, …`), so the
/// output depends only on `job`, not on scheduling.
pub fn try_run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<Result<T, ReplicaError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(|i| isolate(i, || job(i))).collect();
    }
    let out: std::sync::Mutex<Vec<Option<Result<T, ReplicaError>>>> =
        std::sync::Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for w in 0..threads {
            let job = &job;
            let out = &out;
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut i = w;
                while i < n {
                    local.push((i, isolate(i, || job(i))));
                    i += threads;
                }
                let mut slots = out.lock().unwrap_or_else(PoisonError::into_inner);
                for (i, v) in local {
                    slots[i] = Some(v);
                }
            });
        }
    });
    out.into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            v.unwrap_or_else(|| {
                Err(ReplicaError {
                    index: i,
                    message: "worker produced no result".to_owned(),
                })
            })
        })
        .collect()
}

/// Runs `job(0..n)` on up to `threads` workers and returns the results
/// in index order.
///
/// # Panics
///
/// Re-raises the first job panic (by index) after all jobs finish. Use
/// [`try_run_indexed`] to handle failures per slot.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_run_indexed(n, threads, job)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// Applies `job(index, item)` to every item on up to `threads` workers,
/// returning one fault-isolated result per item.
///
/// Items are partitioned into contiguous chunks, one per worker; each
/// item is touched by exactly one worker, so no synchronization beyond
/// the scope join is needed and the outcome is thread-count independent.
/// A panicking job leaves `Err(ReplicaError)` in its item's slot; the
/// item itself may be mid-mutation and the caller decides whether it is
/// still usable (the orchestrator retires such replicas).
pub fn try_run_mut<T, F>(items: &mut [T], threads: usize, job: F) -> Vec<Result<(), ReplicaError>>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| isolate(i, || job(i, item)))
            .collect();
    }
    let chunk = n.div_ceil(threads);
    let out: std::sync::Mutex<Vec<Option<Result<(), ReplicaError>>>> =
        std::sync::Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for (w, slice) in items.chunks_mut(chunk).enumerate() {
            let job = &job;
            let out = &out;
            scope.spawn(move || {
                let mut local = Vec::new();
                for (k, item) in slice.iter_mut().enumerate() {
                    let i = w * chunk + k;
                    local.push((i, isolate(i, || job(i, item))));
                }
                let mut slots = out.lock().unwrap_or_else(PoisonError::into_inner);
                for (i, v) in local {
                    slots[i] = Some(v);
                }
            });
        }
    });
    out.into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            v.unwrap_or_else(|| {
                Err(ReplicaError {
                    index: i,
                    message: "worker produced no result".to_owned(),
                })
            })
        })
        .collect()
}

/// Applies `job(index, item)` to every item on up to `threads` workers.
///
/// # Panics
///
/// Re-raises the first job panic (by index) after all jobs finish. Use
/// [`try_run_mut`] to handle failures per item.
pub fn run_mut<T, F>(items: &mut [T], threads: usize, job: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    for r in try_run_mut(items, threads, job) {
        if let Err(e) = r {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_results_in_order() {
        for threads in [1, 2, 3, 8] {
            let out = run_indexed(7, threads, |i| i * i);
            assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36], "threads={threads}");
        }
    }

    #[test]
    fn indexed_handles_empty_and_excess_threads() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
        let out = run_indexed(2, 100, |i| i + 1);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn mutation_touches_every_item_once() {
        for threads in [1, 2, 5] {
            let mut items = vec![0u64; 9];
            run_mut(&mut items, threads, |i, item| *item += 10 + i as u64);
            let expect: Vec<u64> = (0..9).map(|i| 10 + i).collect();
            assert_eq!(items, expect, "threads={threads}");
        }
    }

    #[test]
    fn workers_really_run_concurrently() {
        // Two jobs that each wait for the other's side effect would
        // deadlock on one thread; with two they finish.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let started = AtomicUsize::new(0);
        let out = run_indexed(2, 2, |i| {
            started.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while started.load(Ordering::SeqCst) < 2 {
                assert!(std::time::Instant::now() < deadline, "no concurrency");
                std::thread::yield_now();
            }
            i
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn panicking_job_is_isolated_to_its_slot() {
        for threads in [1, 2, 4] {
            let out = try_run_indexed(5, threads, |i| {
                if i == 2 {
                    panic!("boom at {i}");
                }
                i * 10
            });
            assert_eq!(out.len(), 5, "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                if i == 2 {
                    let e = r.as_ref().expect_err("job 2 failed");
                    assert_eq!(e.index, 2);
                    assert!(e.message.contains("boom at 2"), "{}", e.message);
                } else {
                    assert_eq!(*r.as_ref().expect("others survive"), i * 10);
                }
            }
        }
    }

    #[test]
    fn panicking_mut_job_leaves_other_items_mutated() {
        for threads in [1, 3] {
            let mut items = vec![0u64; 6];
            let out = try_run_mut(&mut items, threads, |i, item| {
                *item = 1;
                if i == 4 {
                    panic!("injected");
                }
                *item = 2;
            });
            assert!(out[4].is_err());
            for (i, item) in items.iter().enumerate() {
                if i == 4 {
                    assert_eq!(*item, 1, "failed item stops mid-mutation");
                } else {
                    assert_eq!(*item, 2);
                }
            }
        }
    }

    #[test]
    fn plain_forms_reraise_with_the_replica_index() {
        let caught = std::panic::catch_unwind(|| {
            run_indexed(3, 2, |i| {
                if i == 1 {
                    panic!("bad seed");
                }
                i
            })
        });
        let msg = panic_message(caught.expect_err("panic propagates"));
        assert!(msg.contains("replica 1"), "{msg}");
        assert!(msg.contains("bad seed"), "{msg}");
    }

    #[test]
    fn error_formats_with_index_and_message() {
        let e = ReplicaError {
            index: 3,
            message: "x".into(),
        };
        assert_eq!(e.to_string(), "replica 3 panicked: x");
    }
}
