//! A minimal scoped thread pool.
//!
//! The orchestrator needs exactly two shapes of parallelism — "produce N
//! indexed results" and "mutate N items in place" — with results
//! independent of the worker count. Both run on `std::thread::scope`
//! (replica states borrow the netlist, so `'static` spawning is out) and
//! assign work by index, never by arrival order.

/// Runs `job(0..n)` on up to `threads` workers and returns the results
/// in index order.
///
/// `threads <= 1` runs sequentially on the caller's thread — the
/// graceful fallback used when parallelism is disabled. Work is assigned
/// by striding (worker `w` takes indices `w, w + threads, …`), so the
/// output depends only on `job`, not on scheduling.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(job).collect();
    }
    let out: std::sync::Mutex<Vec<Option<T>>> =
        std::sync::Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for w in 0..threads {
            let job = &job;
            let out = &out;
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut i = w;
                while i < n {
                    local.push((i, job(i)));
                    i += threads;
                }
                let mut slots = out.lock().expect("result mutex");
                for (i, v) in local {
                    slots[i] = Some(v);
                }
            });
        }
    });
    out.into_inner()
        .expect("result mutex")
        .into_iter()
        .map(|v| v.expect("every index produced"))
        .collect()
}

/// Applies `job(index, item)` to every item on up to `threads` workers.
///
/// Items are partitioned into contiguous chunks, one per worker; each
/// item is touched by exactly one worker, so no synchronization beyond
/// the scope join is needed and the outcome is thread-count independent.
pub fn run_mut<T, F>(items: &mut [T], threads: usize, job: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            job(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (w, slice) in items.chunks_mut(chunk).enumerate() {
            let job = &job;
            scope.spawn(move || {
                for (k, item) in slice.iter_mut().enumerate() {
                    job(w * chunk + k, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_results_in_order() {
        for threads in [1, 2, 3, 8] {
            let out = run_indexed(7, threads, |i| i * i);
            assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36], "threads={threads}");
        }
    }

    #[test]
    fn indexed_handles_empty_and_excess_threads() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
        let out = run_indexed(2, 100, |i| i + 1);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn mutation_touches_every_item_once() {
        for threads in [1, 2, 5] {
            let mut items = vec![0u64; 9];
            run_mut(&mut items, threads, |i, item| *item += 10 + i as u64);
            let expect: Vec<u64> = (0..9).map(|i| 10 + i).collect();
            assert_eq!(items, expect, "threads={threads}");
        }
    }

    #[test]
    fn workers_really_run_concurrently() {
        // Two jobs that each wait for the other's side effect would
        // deadlock on one thread; with two they finish.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let started = AtomicUsize::new(0);
        let out = run_indexed(2, 2, |i| {
            started.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while started.load(Ordering::SeqCst) < 2 {
                assert!(std::time::Instant::now() < deadline, "no concurrency");
                std::thread::yield_now();
            }
            i
        });
        assert_eq!(out, vec![0, 1]);
    }
}
