//! Deterministic replica-fault injection for resilience tests.
//!
//! Compiled to no-ops unless the `fault-inject` cargo feature is on, so
//! production builds carry zero overhead and no way to trip the fault
//! path. With the feature, a test arms one (replica, step) coordinate
//! and the orchestrator's worker panics when it reaches it — exercising
//! the real `catch_unwind` isolation path, not a simulation of it.

#[cfg(feature = "fault-inject")]
use std::sync::atomic::{AtomicI64, Ordering};

#[cfg(feature = "fault-inject")]
static ARMED_REPLICA: AtomicI64 = AtomicI64::new(-1);
#[cfg(feature = "fault-inject")]
static ARMED_STEP: AtomicI64 = AtomicI64::new(-1);

/// Arms a one-shot fault: the next time `replica` reaches annealing step
/// (or tempering round) `step`, its worker panics.
#[cfg(feature = "fault-inject")]
pub fn arm(replica: usize, step: usize) {
    ARMED_STEP.store(step as i64, Ordering::SeqCst);
    ARMED_REPLICA.store(replica as i64, Ordering::SeqCst);
}

/// Disarms any pending fault.
#[cfg(feature = "fault-inject")]
pub fn disarm() {
    ARMED_REPLICA.store(-1, Ordering::SeqCst);
    ARMED_STEP.store(-1, Ordering::SeqCst);
}

/// Worker-side probe: panics if a fault is armed for this coordinate.
/// The fault auto-disarms on firing so one `arm` kills one replica once.
#[inline]
pub(crate) fn maybe_fail(replica: usize, step: usize) {
    #[cfg(feature = "fault-inject")]
    {
        if ARMED_REPLICA.load(Ordering::SeqCst) == replica as i64
            && ARMED_STEP.load(Ordering::SeqCst) == step as i64
        {
            disarm();
            panic!("injected fault: replica {replica} at step {step}");
        }
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        let _ = (replica, step);
    }
}
