//! Parallel tempering: replicas pinned to Table-1 temperature rungs with
//! Metropolis configuration exchanges between adjacent rungs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use twmc_anneal::{derive_seed, swap_probability, temperature_rungs, CoolingSchedule};
use twmc_estimator::EstimatorParams;
use twmc_netlist::Netlist;
use twmc_obs::{ClassCount, CostBreakdown, Event, PlaceTemp, Recorder, RunScope, Swap};
use twmc_place::{
    generate, MoveSet, MoveStats, PlaceParams, PlacementState, Stage1Context, Stage1Result,
};

use crate::{multistart, pool, ParallelParams, ParallelReport, ReplicaReport, SwapReport};

/// One rung's worker: the configuration currently at this temperature,
/// the rung's RNG stream, and its accumulated statistics. Swaps exchange
/// `state` between rungs; everything else stays with the rung.
struct Rung<'a> {
    state: PlacementState<'a>,
    rng: StdRng,
    stats: MoveStats,
    trajectory: Vec<f64>,
}

/// Runs the tempering ladder and quenches the best rung's configuration.
///
/// Per round, every rung performs one inner loop (`A_c · N_c` attempts,
/// eq. 17) at its pinned temperature — rounds run in parallel, swap
/// sweeps are sequential on the orchestrator's own RNG stream so the
/// outcome is independent of the thread count.
///
/// Telemetry (all on the orchestrator thread, so event order is
/// deterministic): one `tempering`-phase [`PlaceTemp`] per rung per
/// round, one [`Swap`] per exchange attempt, one
/// [`twmc_obs::ReplicaSummary`] per rung, then the winner's quench
/// stream under phase `quench`.
pub(crate) fn run<'a>(
    nl: &'a Netlist,
    place: &PlaceParams,
    est: &EstimatorParams,
    schedule: &CoolingSchedule,
    params: &ParallelParams,
    master_seed: u64,
    rec: &mut dyn Recorder,
) -> (PlacementState<'a>, Stage1Result, ParallelReport) {
    let replicas = params.replicas;
    let threads = params.effective_threads(replicas);
    let swap_interval = params.swap_interval.max(1);
    let ctx = Stage1Context::new(nl, place, est);
    let rung_temps = temperature_rungs(
        schedule,
        ctx.t_infinity,
        ctx.s_t,
        ctx.final_temperature(),
        replicas,
    );
    // Default round count: the Table-1 trajectory length, so each rung
    // does about as many inner loops as one full stage-1 run.
    let rounds = if params.rounds > 0 {
        params.rounds
    } else {
        schedule
            .steps_between(ctx.t_infinity, ctx.final_temperature(), ctx.s_t)
            .max(1)
    };

    // Independent random starting configurations, one RNG stream per rung.
    let seeds: Vec<u64> = (0..replicas).map(|i| derive_seed(master_seed, i)).collect();
    let mut rungs: Vec<Rung<'a>> = pool::run_indexed(replicas, threads, |i| {
        let mut rng = StdRng::seed_from_u64(seeds[i]);
        let state = ctx.random_state(place, &mut rng);
        Rung {
            state,
            rng,
            stats: MoveStats::default(),
            trajectory: Vec::new(),
        }
    });
    // The `p₂` overlap normalization is calibrated per random start; the
    // exchange rule compares energies across rungs, so all rungs must
    // price overlap identically — rung 0's calibration wins.
    let p2 = rungs[0].state.p2();
    for rung in &mut rungs[1..] {
        rung.state.set_p2(p2);
    }

    let inner = place.attempts_per_cell * nl.cells().len();
    let mut orch_rng = StdRng::seed_from_u64(derive_seed(master_seed, replicas));
    let mut swaps = SwapReport::default();
    let mut sweep = 0usize;

    for round in 0..rounds {
        // Snapshot per-rung counters so the round's deltas can be
        // reported after the join (workers cannot share `rec`).
        let stats_before: Vec<MoveStats> = if rec.enabled() {
            rungs.iter().map(|r| r.stats).collect()
        } else {
            Vec::new()
        };
        pool::run_mut(&mut rungs, threads, |i, rung| {
            let t = rung_temps[i];
            let wx = ctx.limiter.window_x(t);
            let wy = ctx.limiter.window_y(t);
            for _ in 0..inner {
                generate(
                    &mut rung.state,
                    place,
                    MoveSet::Full,
                    wx,
                    wy,
                    t,
                    &mut rung.rng,
                    &mut rung.stats,
                );
            }
            rung.trajectory.push(rung.state.teil());
        });
        if rec.enabled() {
            for (i, rung) in rungs.iter().enumerate() {
                let t = rung_temps[i];
                let delta = rung.stats.since(&stats_before[i]);
                rec.record(&Event::PlaceTemp(PlaceTemp {
                    phase: "tempering",
                    iteration: round as u64,
                    replica: i as i64,
                    step: round,
                    temperature: t,
                    s_t: ctx.s_t,
                    window_x: ctx.limiter.window_x(t),
                    window_y: ctx.limiter.window_y(t),
                    inner,
                    attempts: delta.attempts(),
                    accepts: delta.accepts(),
                    cost: CostBreakdown {
                        total: rung.state.cost(),
                        c1: rung.state.c1(),
                        overlap: rung.state.raw_overlap(),
                        overlap_penalty: rung.state.p2() * rung.state.raw_overlap() as f64,
                        c3: rung.state.c3(),
                    },
                    teil: rung.state.teil(),
                    index_rebuilds: rung.state.index_rebuilds(),
                    index_updates: rung.state.index_updates(),
                    classes: delta
                        .classes()
                        .iter()
                        .map(|&(class, (attempts, accepts))| ClassCount {
                            class,
                            attempts,
                            accepts,
                        })
                        .collect(),
                }));
            }
        }

        if (round + 1) % swap_interval == 0 {
            // Alternate even/odd adjacent pairs per sweep, the standard
            // scheme that lets a configuration traverse the ladder.
            let start = sweep % 2;
            sweep += 1;
            for i in (start..replicas.saturating_sub(1)).step_by(2) {
                let p = swap_probability(
                    rung_temps[i],
                    rung_temps[i + 1],
                    rungs[i].state.cost(),
                    rungs[i + 1].state.cost(),
                );
                swaps.attempts += 1;
                let accepted = orch_rng.random::<f64>() < p;
                if accepted {
                    let (a, b) = rungs.split_at_mut(i + 1);
                    std::mem::swap(&mut a[i].state, &mut b[0].state);
                    swaps.accepts += 1;
                }
                if rec.enabled() {
                    rec.record(&Event::Swap(Swap {
                        round: round as u64,
                        lower: i,
                        upper: i + 1,
                        t_lower: rung_temps[i],
                        t_upper: rung_temps[i + 1],
                        accepted,
                    }));
                }
            }
        }
    }

    // Report the ladder phase before the quench mutates the winner.
    let replica_reports: Vec<ReplicaReport> = rungs
        .iter()
        .enumerate()
        .map(|(i, rung)| ReplicaReport {
            replica: i,
            seed: seeds[i],
            rung_temperature: Some(rung_temps[i]),
            teil: rung.state.teil(),
            cost: rung.state.cost(),
            attempts: rung.stats.attempts(),
            accepts: rung.stats.accepts(),
            teil_trajectory: rung.trajectory.clone(),
        })
        .collect();
    if rec.enabled() {
        for report in &replica_reports {
            rec.record(&multistart::replica_summary("tempering", report));
        }
    }

    // Quench the best configuration (usually the coldest rung, but a
    // warmer rung can hold the minimum right after an exchange sweep)
    // through the rest of the schedule from its rung temperature.
    let mut best = 0;
    for (i, rung) in rungs.iter().enumerate().skip(1) {
        if rung.state.cost() < rungs[best].state.cost() {
            best = i;
        }
    }
    let mut winner = rungs.swap_remove(best);
    let result = ctx.cool_with(
        &mut winner.state,
        place,
        schedule,
        rung_temps[best],
        &mut winner.rng,
        rec,
        RunScope {
            phase: "quench",
            iteration: 0,
            replica: best as i64,
        },
    );

    let report = ParallelReport {
        strategy: params.strategy,
        replicas,
        threads,
        best_replica: best,
        replica_reports,
        swaps,
    };
    (winner.state, result, report)
}
