//! Parallel tempering: replicas pinned to Table-1 temperature rungs with
//! Metropolis configuration exchanges between adjacent rungs.
//!
//! Rounds are the orchestration quantum: each round every live rung runs
//! one inner loop in parallel, then the orchestrator emits telemetry,
//! runs any swap sweep, probes the cancellation token, and writes a
//! checkpoint when due — so a round boundary is a consistent cut of the
//! ladder (rung states, per-rung RNG streams, the orchestrator's swap
//! stream, and the sweep parity), and interrupt/resume is exact. A rung
//! whose worker panics is retired: it stops stepping, is skipped by swap
//! pairing (no orchestrator RNG draw for a dead pair), and is excluded
//! from winner selection; the survivors complete the run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;

use twmc_anneal::{derive_seed, swap_probability, temperature_rungs, CoolingSchedule};
use twmc_estimator::EstimatorParams;
use twmc_netlist::Netlist;
use twmc_obs::{
    ClassCount, CostBreakdown, Event, PlaceTemp, Recorder, ReplicaFailed, RunScope, Swap,
};
use twmc_place::{
    generate, CoolingRun, MoveSet, MoveStats, PlaceParams, PlacementState, Stage1Context,
};

use crate::{
    fault, multistart, pool, resume, OrchestratorError, ParallelParams, ParallelReport,
    ReplicaFailure, ReplicaReport, RunCtrl, Stage1Outcome, SwapReport,
};

/// One rung's worker: the configuration currently at this temperature,
/// the rung's RNG stream, its accumulated statistics, and the failure
/// note that retires it. Swaps exchange `state` between rungs;
/// everything else stays with the rung.
struct Rung<'a> {
    index: usize,
    seed: u64,
    state: PlacementState<'a>,
    rng: StdRng,
    stats: MoveStats,
    trajectory: Vec<f64>,
    failed: Option<String>,
}

impl Rung<'_> {
    fn live(&self) -> bool {
        self.failed.is_none()
    }

    fn checkpoint(&self) -> resume::RungCk {
        resume::RungCk {
            seed: self.seed,
            failed: self.failed.clone(),
            rng: self.rng.state(),
            stats: self.stats,
            trajectory: self.trajectory.clone(),
            snap: self.state.snapshot(),
            rebuilds: self.state.index_rebuilds(),
            updates: self.state.index_updates(),
        }
    }

    fn restore(&mut self, ck: &resume::RungCk) {
        self.state.restore(&ck.snap);
        self.state.force_index_counters(ck.rebuilds, ck.updates);
        self.rng = StdRng::from_state(ck.rng);
        self.stats = ck.stats;
        self.trajectory = ck.trajectory.clone();
        self.failed = ck.failed.clone();
    }
}

/// Runs the tempering ladder under the run controller and quenches the
/// best surviving rung's configuration through the rest of the schedule.
///
/// Per round, every live rung performs one inner loop (`A_c · N_c`
/// attempts, eq. 17) at its pinned temperature — rounds run in parallel,
/// swap sweeps are sequential on the orchestrator's own RNG stream so
/// the outcome is independent of the thread count.
///
/// Telemetry (all on the orchestrator thread, so event order is
/// deterministic): one `tempering`-phase [`PlaceTemp`] per live rung per
/// round, one [`Swap`] per exchange attempt, a
/// [`twmc_obs::ReplicaFailed`] when a rung dies, one
/// [`twmc_obs::ReplicaSummary`] per surviving rung, then the winner's
/// quench stream under phase `quench`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_controlled<'a>(
    nl: &'a Netlist,
    place: &PlaceParams,
    est: &EstimatorParams,
    schedule: &CoolingSchedule,
    params: &ParallelParams,
    master_seed: u64,
    rec: &mut dyn Recorder,
    ctrl: &mut RunCtrl,
    resume_payload: Option<&Value>,
) -> Result<Stage1Outcome<'a>, OrchestratorError> {
    let replicas = params.replicas;
    let threads = params.effective_threads(replicas);
    let swap_interval = params.swap_interval.max(1);
    let stats = nl.stats();
    let config = resume::config_value(
        master_seed,
        params,
        place.attempts_per_cell,
        (stats.cells, stats.nets, stats.pins),
    );
    let ctx = Stage1Context::new(nl, place, est);
    let rung_temps = temperature_rungs(
        schedule,
        ctx.t_infinity,
        ctx.s_t,
        ctx.final_temperature(),
        replicas,
    );
    // Default round count: the Table-1 trajectory length, so each rung
    // does about as many inner loops as one full stage-1 run.
    let rounds = if params.rounds > 0 {
        params.rounds
    } else {
        schedule
            .steps_between(ctx.t_infinity, ctx.final_temperature(), ctx.s_t)
            .max(1)
    };

    // Resuming a quench needs no ladder at all — only the winner.
    if let Some(payload) = resume_payload {
        if resume::payload_phase(payload)? == "quench" {
            let ck = resume::quench_from(payload)?;
            let mut winner = ctx.random_state(place, &mut StdRng::seed_from_u64(0));
            winner.restore(&ck.winner.snap);
            winner.force_index_counters(ck.winner.rebuilds, ck.winner.updates);
            return quench(
                &ctx,
                nl,
                place,
                schedule,
                params,
                rec,
                ctrl,
                &config,
                ck.best,
                ck.t_start,
                winner,
                StdRng::from_state(ck.winner.rng),
                ck.winner.run.clone(),
                ck.reports,
                ck.swaps,
                ck.failures,
                threads,
            );
        }
    }

    // Independent random starting configurations, one RNG stream per rung.
    let seeds: Vec<u64> = (0..replicas).map(|i| derive_seed(master_seed, i)).collect();
    let init = pool::try_run_indexed(replicas, threads, |i| {
        let mut rng = StdRng::seed_from_u64(seeds[i]);
        let state = ctx.random_state(place, &mut rng);
        (state, rng)
    });
    let mut rungs: Vec<Rung<'a>> = Vec::with_capacity(replicas);
    for (i, r) in init.into_iter().enumerate() {
        let (state, rng) = r.map_err(|e| {
            OrchestratorError::AllReplicasFailed(vec![ReplicaFailure {
                replica: e.index,
                round: 0,
                error: e.message,
            }])
        })?;
        rungs.push(Rung {
            index: i,
            seed: seeds[i],
            state,
            rng,
            stats: MoveStats::default(),
            trajectory: Vec::new(),
            failed: None,
        });
    }
    // The `p₂` overlap normalization is calibrated per random start; the
    // exchange rule compares energies across rungs, so all rungs must
    // price overlap identically — rung 0's calibration wins.
    let p2 = rungs[0].state.p2();
    for rung in &mut rungs[1..] {
        rung.state.set_p2(p2);
    }

    let mut orch_rng = StdRng::seed_from_u64(derive_seed(master_seed, replicas));
    let mut swaps = SwapReport::default();
    let mut sweep = 0usize;
    let mut start_round = 0usize;
    let mut failures: Vec<ReplicaFailure> = Vec::new();

    if let Some(payload) = resume_payload {
        let ck = resume::tempering_from(payload)?;
        if ck.rungs.len() != replicas {
            return Err(OrchestratorError::Checkpoint(
                twmc_resume::CheckpointError::Corrupt("checkpoint rung count differs".into()),
            ));
        }
        for (rung, rck) in rungs.iter_mut().zip(&ck.rungs) {
            rung.restore(rck);
        }
        orch_rng = StdRng::from_state(ck.orch_rng);
        swaps = ck.swaps;
        sweep = ck.sweep;
        start_round = ck.round;
        failures = ck.failures;
    }

    let inner = place.attempts_per_cell * nl.cells().len();
    let enabled = rec.enabled();

    for round in start_round..rounds {
        // Snapshot per-rung counters so the round's deltas can be
        // reported after the join (workers cannot share `rec`).
        let stats_before: Vec<MoveStats> = if enabled {
            rungs.iter().map(|r| r.stats).collect()
        } else {
            Vec::new()
        };
        let before: usize = rungs.iter().map(|r| r.stats.attempts()).sum();
        let outcomes = pool::try_run_mut(&mut rungs, threads, |_, rung| {
            if !rung.live() {
                return;
            }
            fault::maybe_fail(rung.index, round);
            let t = rung_temps[rung.index];
            let wx = ctx.limiter.window_x(t);
            let wy = ctx.limiter.window_y(t);
            for _ in 0..inner {
                generate(
                    &mut rung.state,
                    place,
                    MoveSet::Full,
                    wx,
                    wy,
                    t,
                    &mut rung.rng,
                    &mut rung.stats,
                );
            }
            rung.trajectory.push(rung.state.teil());
        });
        for (rung, out) in rungs.iter_mut().zip(&outcomes) {
            if let Err(e) = out {
                if rung.live() {
                    rung.failed = Some(e.message.clone());
                    failures.push(ReplicaFailure {
                        replica: rung.index,
                        round: round as u64,
                        error: e.message.clone(),
                    });
                    if enabled {
                        rec.record(&Event::ReplicaFailed(ReplicaFailed {
                            phase: "tempering",
                            replica: rung.index,
                            round: round as u64,
                            error: e.message.clone(),
                        }));
                    }
                }
            }
        }
        if enabled {
            for (i, rung) in rungs.iter().enumerate().filter(|(_, r)| r.live()) {
                let t = rung_temps[i];
                let delta = rung.stats.since(&stats_before[i]);
                rec.record(&Event::PlaceTemp(PlaceTemp {
                    phase: "tempering",
                    iteration: round as u64,
                    replica: i as i64,
                    step: round,
                    temperature: t,
                    s_t: ctx.s_t,
                    window_x: ctx.limiter.window_x(t),
                    window_y: ctx.limiter.window_y(t),
                    inner,
                    attempts: delta.attempts(),
                    accepts: delta.accepts(),
                    cost: CostBreakdown {
                        total: rung.state.cost(),
                        c1: rung.state.c1(),
                        overlap: rung.state.raw_overlap(),
                        overlap_penalty: rung.state.p2() * rung.state.raw_overlap() as f64,
                        c3: rung.state.c3(),
                    },
                    teil: rung.state.teil(),
                    index_rebuilds: rung.state.index_rebuilds(),
                    index_updates: rung.state.index_updates(),
                    classes: delta
                        .classes()
                        .iter()
                        .map(|&(class, (attempts, accepts))| ClassCount {
                            class,
                            attempts,
                            accepts,
                        })
                        .collect(),
                }));
            }
        }
        let after: usize = rungs.iter().map(|r| r.stats.attempts()).sum();
        ctrl.cancel.add_moves((after - before) as u64);

        if (round + 1) % swap_interval == 0 {
            // Alternate even/odd adjacent pairs per sweep, the standard
            // scheme that lets a configuration traverse the ladder.
            let start = sweep % 2;
            sweep += 1;
            for i in (start..replicas.saturating_sub(1)).step_by(2) {
                if !rungs[i].live() || !rungs[i + 1].live() {
                    continue;
                }
                let p = swap_probability(
                    rung_temps[i],
                    rung_temps[i + 1],
                    rungs[i].state.cost(),
                    rungs[i + 1].state.cost(),
                );
                swaps.attempts += 1;
                let accepted = orch_rng.random::<f64>() < p;
                if accepted {
                    let (a, b) = rungs.split_at_mut(i + 1);
                    std::mem::swap(&mut a[i].state, &mut b[0].state);
                    swaps.accepts += 1;
                }
                if enabled {
                    rec.record(&Event::Swap(Swap {
                        round: round as u64,
                        lower: i,
                        upper: i + 1,
                        t_lower: rung_temps[i],
                        t_upper: rung_temps[i + 1],
                        accepted,
                    }));
                }
            }
        }

        if rungs.iter().all(|r| !r.live()) {
            return Err(OrchestratorError::AllReplicasFailed(failures));
        }
        let ladder_payload = |rungs: &[Rung<'a>]| {
            resume::phase_payload(
                "tempering",
                config.clone(),
                vec![
                    ("round", Value::UInt(round as u64 + 1)),
                    ("sweep", Value::UInt(sweep as u64)),
                    ("orch_rng", twmc_resume::codec::u64x4(orch_rng.state())),
                    ("swaps", resume::swaps_value(&swaps)),
                    (
                        "rungs",
                        Value::Array(
                            rungs
                                .iter()
                                .map(|r| resume::rung_value(&r.checkpoint()))
                                .collect(),
                        ),
                    ),
                    ("failed", resume::failures_value(&failures)),
                ],
            )
        };
        if let Some(reason) = ctrl.cancel.check() {
            ctrl.write_checkpoint(&ladder_payload(&rungs))?;
            // Best live configuration by cost (comparable: shared `p₂`).
            let mut best = 0;
            let mut seen = false;
            for (i, rung) in rungs.iter().enumerate() {
                if rung.live() && (!seen || rung.state.cost() < rungs[best].state.cost()) {
                    best = i;
                    seen = true;
                }
            }
            let rung = rungs.swap_remove(best);
            return Ok(Stage1Outcome::Interrupted {
                reason,
                teil: rung.state.teil(),
                cost: rung.state.cost(),
                state: rung.state,
            });
        }
        if ctrl.checkpoint_due(round as u64) {
            ctrl.write_checkpoint(&ladder_payload(&rungs))?;
        }
    }

    // Report the ladder phase before the quench mutates the winner.
    let replica_reports: Vec<ReplicaReport> = rungs
        .iter()
        .filter(|r| r.live())
        .map(|rung| ReplicaReport {
            replica: rung.index,
            seed: rung.seed,
            rung_temperature: Some(rung_temps[rung.index]),
            teil: rung.state.teil(),
            cost: rung.state.cost(),
            attempts: rung.stats.attempts(),
            accepts: rung.stats.accepts(),
            teil_trajectory: rung.trajectory.clone(),
        })
        .collect();
    if replica_reports.is_empty() {
        return Err(OrchestratorError::AllReplicasFailed(failures));
    }
    if enabled {
        for report in &replica_reports {
            rec.record(&multistart::replica_summary("tempering", report));
        }
    }

    // Quench the best configuration (usually the coldest rung, but a
    // warmer rung can hold the minimum right after an exchange sweep)
    // through the rest of the schedule from its rung temperature.
    let mut best = 0;
    let mut seen = false;
    for (i, rung) in rungs.iter().enumerate() {
        if rung.live() && (!seen || rung.state.cost() < rungs[best].state.cost()) {
            best = i;
            seen = true;
        }
    }
    let winner = rungs.swap_remove(best);
    let best_index = winner.index;
    quench(
        &ctx,
        nl,
        place,
        schedule,
        params,
        rec,
        ctrl,
        &config,
        best_index,
        rung_temps[best_index],
        winner.state,
        winner.rng,
        CoolingRun::new(rung_temps[best_index]),
        replica_reports,
        swaps,
        failures,
        threads,
    )
}

/// Drives the winner's quench (a plain stage-1 cooling run from its rung
/// temperature) with cancellation and checkpointing at every step.
#[allow(clippy::too_many_arguments)]
fn quench<'a>(
    ctx: &Stage1Context<'a>,
    _nl: &'a Netlist,
    place: &PlaceParams,
    schedule: &CoolingSchedule,
    params: &ParallelParams,
    rec: &mut dyn Recorder,
    ctrl: &mut RunCtrl,
    config: &Value,
    best: usize,
    t_start: f64,
    mut state: PlacementState<'a>,
    mut rng: StdRng,
    mut run: CoolingRun,
    reports: Vec<ReplicaReport>,
    swaps: SwapReport,
    failures: Vec<ReplicaFailure>,
    threads: usize,
) -> Result<Stage1Outcome<'a>, OrchestratorError> {
    let scope = RunScope {
        phase: "quench",
        iteration: 0,
        replica: best as i64,
    };
    loop {
        if run.done {
            break;
        }
        let before = run.moves.attempts();
        let finished = run.step(
            &mut state,
            place,
            MoveSet::Full,
            schedule,
            &ctx.limiter,
            ctx.s_t,
            None,
            &mut rng,
            rec,
            scope,
        );
        ctrl.cancel
            .add_moves((run.moves.attempts() - before) as u64);
        if finished {
            break;
        }
        let payload = |state: &PlacementState<'a>, rng: &StdRng, run: &CoolingRun| {
            resume::phase_payload(
                "quench",
                config.clone(),
                vec![
                    ("best", Value::UInt(best as u64)),
                    ("t_start", twmc_resume::codec::f64_bits(t_start)),
                    (
                        "winner",
                        resume::replica_value(&resume::ReplicaCk {
                            seed: best as u64,
                            failed: None,
                            rng: rng.state(),
                            run: run.clone(),
                            snap: state.snapshot(),
                            rebuilds: state.index_rebuilds(),
                            updates: state.index_updates(),
                        }),
                    ),
                    (
                        "reports",
                        Value::Array(reports.iter().map(resume::report_value).collect()),
                    ),
                    ("swaps", resume::swaps_value(&swaps)),
                    ("failed", resume::failures_value(&failures)),
                ],
            )
        };
        if let Some(reason) = ctrl.cancel.check() {
            ctrl.write_checkpoint(&payload(&state, &rng, &run))?;
            return Ok(Stage1Outcome::Interrupted {
                reason,
                teil: state.teil(),
                cost: state.cost(),
                state,
            });
        }
        let step = run.steps() as u64;
        if step > 0 && ctrl.checkpoint_due(step - 1) {
            ctrl.write_checkpoint(&payload(&state, &rng, &run))?;
        }
    }
    let mut result = run.into_result(&state, t_start, ctx.s_t);
    result.t_infinity = ctx.t_infinity;
    let report = ParallelReport {
        strategy: params.strategy,
        replicas: params.replicas,
        threads,
        best_replica: best,
        replica_reports: reports,
        swaps,
        failed: failures,
    };
    Ok(Stage1Outcome::Complete {
        state,
        result,
        report,
    })
}
