//! Parallel tempering: replicas on an adaptive, cooling temperature
//! ladder with Metropolis configuration exchanges between adjacent
//! rungs.
//!
//! The ladder is *not* static: every rung starts at `T∞` and performs
//! its own complete Table-1 descent, staggered cold-end-first. The
//! coldest rung (the anchor) steps every round; each hotter rung waits
//! at `T∞` until its colder neighbour has pulled a full gap ratio
//! ahead, then descends at its own schedule pace
//! ([`twmc_anneal::cool_ladder`]) — so every rung spends the
//! experimentally tuned dwell time in its own critical region instead
//! of sprinting through it on a scaled copy of the anchor's
//! trajectory. The gap ratios adapt after every swap attempt toward
//! the 20–40% acceptance band ([`twmc_anneal::adapt_gap`]): accepted
//! swaps widen a pair, rejected swaps pull it together, so spacing
//! tracks the circuit's actual energy fluctuations instead of a
//! geometric guess. A rung only burns moves while its temperature is
//! in transit (waiting at `T∞` it already holds an equilibrium sample;
//! once landed, its polish comes from the quench), which keeps the
//! ensemble's move budget near one multi-start batch. Ensembles wider
//! than [`MAX_LADDER_RUNGS`] split into a pack of independent ladders
//! (`8 = 4 + 4`): a swap chain propagates a discovery one rung per
//! sweep, so past about four rungs the hot end cannot reach the anchor
//! before it freezes, and the pack keeps multi-start's best-of-N order
//! statistics instead. After the ladder lands, **every** surviving
//! rung is quenched through the tail of the schedule from a short
//! reheat under its own overlap calibration, with an elitist rollback
//! guaranteeing no rung ends worse than it started; the best
//! post-quench TEIL wins.
//!
//! Rounds are the orchestration quantum: each round every live rung runs
//! one inner loop in parallel, then the orchestrator emits telemetry,
//! runs any swap sweep, cools the ladder, probes the cancellation token,
//! and writes a checkpoint when due — so a round boundary is a
//! consistent cut of the ladder (rung states, per-rung RNG streams, the
//! orchestrator's swap stream, the sweep parity, and the adaptive
//! temperatures/gaps), and interrupt/resume is exact. A rung whose
//! worker panics is retired: it stops stepping, is skipped by swap
//! pairing (no orchestrator RNG draw for a dead pair), and is excluded
//! from winner selection; the survivors complete the run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;

use twmc_anneal::{
    adapt_gap, cool_ladder, derive_seed, initial_gaps, ladder_landed, swap_probability,
    CoolingSchedule,
};
use twmc_estimator::EstimatorParams;
use twmc_netlist::Netlist;
use twmc_obs::{
    ClassCount, CostBreakdown, Event, Instrumented, NullRecorder, PlaceTemp, Recorder,
    ReplicaFailed, RunScope, SummaryRecorder, Swap, MOVE_EVAL_SAMPLE,
};
use twmc_place::{
    attribute_cost_terms, generate, CoolingRun, MoveSet, MoveStats, PlaceParams, PlacementState,
    Stage1Context, COST_ATTRIB_SAMPLE,
};

use crate::{
    fault, multistart, pool, resume, OrchestratorError, PairSwap, ParallelParams, ParallelReport,
    ReplicaFailure, ReplicaReport, RunCtrl, Stage1Outcome, SwapReport,
};

/// Longest ladder a single exchange chain is allowed to span. A swap
/// moves a configuration one rung per sweep at the target acceptance
/// rate, so a discovery at the hot end of an `n`-rung ladder needs
/// `O(n / rate)` sweeps to reach the anchor — past about four rungs it
/// cannot arrive before the cold end freezes. Wider ensembles therefore
/// run as a pack of independent adaptive ladders (`8 = 4 + 4`): each
/// keeps the fast in-ladder exchange, and the pack keeps the
/// best-of-N order statistics that made multi-start strong.
const MAX_LADDER_RUNGS: usize = 4;

/// Quench restart temperature as a multiple of the stage-1 floor. The
/// post-ladder quench re-starts every rung a few schedule steps above
/// the floor rather than at it: the brief reheat lets a configuration
/// shed strain accumulated under the ladder's shared overlap penalty
/// before the final descent, and the elitist harvest in `quench_all`
/// makes the reheat risk-free (a rung that ends worse than it started
/// is rolled back to its pre-quench configuration).
const QUENCH_REHEAT: f64 = 4.0;

/// Splits `replicas` rungs into balanced contiguous ladders of at most
/// [`MAX_LADDER_RUNGS`] each (`6 → 3 + 3`, `8 → 4 + 4`).
pub(crate) fn ladder_partitions(replicas: usize) -> Vec<std::ops::Range<usize>> {
    let n = replicas.div_ceil(MAX_LADDER_RUNGS).max(1);
    let base = replicas / n;
    let rem = replicas % n;
    let mut parts = Vec::with_capacity(n);
    let mut start = 0;
    for p in 0..n {
        let len = base + usize::from(p < rem);
        parts.push(start..start + len);
        start += len;
    }
    parts
}

/// One rung's worker during the ladder phase: the configuration
/// currently at this temperature, the rung's RNG stream, its accumulated
/// statistics, and the failure note that retires it. Swaps exchange
/// `state` between rungs; everything else stays with the rung.
struct Rung<'a> {
    index: usize,
    seed: u64,
    state: PlacementState<'a>,
    rng: StdRng,
    stats: MoveStats,
    trajectory: Vec<f64>,
    failed: Option<String>,
}

impl Rung<'_> {
    fn live(&self) -> bool {
        self.failed.is_none()
    }

    fn checkpoint(&self) -> resume::RungCk {
        resume::RungCk {
            seed: self.seed,
            failed: self.failed.clone(),
            rng: self.rng.state(),
            stats: self.stats,
            trajectory: self.trajectory.clone(),
            snap: self.state.snapshot(),
            rebuilds: self.state.index_rebuilds(),
            updates: self.state.index_updates(),
        }
    }

    fn restore(&mut self, ck: &resume::RungCk) {
        self.state.restore(&ck.snap);
        self.state.force_index_counters(ck.rebuilds, ck.updates);
        self.rng = StdRng::from_state(ck.rng);
        self.stats = ck.stats;
        self.trajectory = ck.trajectory.clone();
        self.failed = ck.failed.clone();
    }
}

/// One rung's worker during the quench phase: the same configuration and
/// RNG stream continuing into a plain stage-1 cooling run from the
/// rung's ladder-end temperature, with a private telemetry buffer
/// drained by the orchestrator after each round (the same
/// step-synchronized scheme multi-start uses).
struct QuenchRep<'a> {
    index: usize,
    seed: u64,
    state: PlacementState<'a>,
    rng: StdRng,
    run: CoolingRun,
    local: SummaryRecorder,
    failed: Option<String>,
}

impl QuenchRep<'_> {
    fn live(&self) -> bool {
        self.failed.is_none()
    }

    fn checkpoint(&self) -> resume::ReplicaCk {
        resume::ReplicaCk {
            seed: self.seed,
            failed: self.failed.clone(),
            rng: self.rng.state(),
            run: self.run.clone(),
            snap: self.state.snapshot(),
            rebuilds: self.state.index_rebuilds(),
            updates: self.state.index_updates(),
        }
    }

    fn restore(&mut self, ck: &resume::ReplicaCk) {
        self.state.restore(&ck.snap);
        self.state.force_index_counters(ck.rebuilds, ck.updates);
        self.rng = StdRng::from_state(ck.rng);
        self.run = ck.run.clone();
        self.failed = ck.failed.clone();
    }
}

/// Runs the tempering ladder under the run controller and quenches every
/// surviving rung's configuration through the rest of the schedule,
/// keeping the lowest post-quench TEIL.
///
/// Per round, every live rung performs one inner loop (`A_c · N_c`
/// attempts, eq. 17) at its current ladder temperature — rounds run in
/// parallel, swap sweeps are sequential on the orchestrator's own RNG
/// stream so the outcome is independent of the thread count. Between
/// rounds the whole ladder advances: the anchor takes one Table-1 step
/// and the per-pair gaps adapt toward the target swap-acceptance band.
///
/// Telemetry (deterministic event order for any thread count): one
/// `tempering`-phase [`PlaceTemp`] per live rung per round, one
/// [`Swap`] per exchange attempt, a [`twmc_obs::ReplicaFailed`] when a
/// rung dies, one [`twmc_obs::ReplicaSummary`] per surviving rung at
/// ladder end, then the per-rung quench streams under phase `quench`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_controlled<'a>(
    nl: &'a Netlist,
    place: &PlaceParams,
    est: &EstimatorParams,
    schedule: &CoolingSchedule,
    params: &ParallelParams,
    master_seed: u64,
    rec: &mut dyn Recorder,
    ctrl: &mut RunCtrl,
    resume_payload: Option<&Value>,
) -> Result<Stage1Outcome<'a>, OrchestratorError> {
    let replicas = params.replicas;
    let threads = params.effective_threads(replicas);
    let swap_interval = params.swap_interval;
    debug_assert!(swap_interval >= 1, "validated by parallel_stage1_resilient");
    let stats = nl.stats();
    let config = resume::config_value(
        master_seed,
        params,
        place.attempts_per_cell,
        (stats.cells, stats.nets, stats.pins),
    );
    let ctx = Stage1Context::new(nl, place, est);
    let t_floor = ctx.final_temperature();
    // A fixed round budget truncates the ladder (the quench below then
    // harvests rungs stranded mid-air); the default (0) runs the ladder
    // until every rung has completed its own staggered descent to the
    // floor, so the ensemble ends with `replicas` finished anneals.
    let fixed_rounds = (params.rounds > 0).then_some(params.rounds);
    // The Table-1 trajectory length — the anchor's landing time and the
    // round-numbering base a resumed quench continues from.
    let schedule_len = schedule
        .steps_between(ctx.t_infinity, t_floor, ctx.s_t)
        .max(1);

    // Independent random starting configurations, one RNG stream per
    // rung — identical for fresh and resumed runs (restores below
    // overwrite everything construction consumed).
    let seeds: Vec<u64> = (0..replicas).map(|i| derive_seed(master_seed, i)).collect();
    let init = pool::try_run_indexed(replicas, threads, |i| {
        let mut rng = StdRng::seed_from_u64(seeds[i]);
        let state = ctx.random_state(place, &mut rng);
        (state, rng)
    });
    let mut states: Vec<(PlacementState<'a>, StdRng)> = Vec::with_capacity(replicas);
    for r in init {
        let pair = r.map_err(|e| {
            OrchestratorError::AllReplicasFailed(vec![ReplicaFailure {
                replica: e.index,
                round: 0,
                error: e.message,
            }])
        })?;
        states.push(pair);
    }
    // The `p₂` overlap normalization is calibrated per random start; the
    // exchange rule compares energies across rungs, so every rung of a
    // ladder must price overlap identically — the ladder's first rung
    // calibrates its whole ladder. Each rung's own calibration is kept
    // for the quench, where no exchanges happen and per-replica pricing
    // is legitimate again.
    let parts = ladder_partitions(replicas);
    let own_p2: Vec<f64> = states.iter().map(|(s, _)| s.p2()).collect();
    for part in &parts {
        let p2 = own_p2[part.start];
        for (state, _) in &mut states[part.start + 1..part.end] {
            state.set_p2(p2);
        }
    }
    // A pair is exchangeable only inside one ladder; the pair that
    // straddles two ladders of the pack never swaps.
    let intra: Vec<bool> = (0..replicas.saturating_sub(1))
        .map(|i| parts.iter().any(|p| p.start <= i && i + 1 < p.end))
        .collect();

    // Resuming a quench skips the ladder: rebuild the rungs and drop
    // straight back into the per-rung cooling runs.
    if let Some(payload) = resume_payload {
        if resume::payload_phase(payload)? == "quench" {
            let ck = resume::quench_from(payload)?;
            if ck.rungs.len() != replicas || ck.elites.len() != replicas {
                return Err(OrchestratorError::Checkpoint(
                    twmc_resume::CheckpointError::Corrupt("checkpoint rung count differs".into()),
                ));
            }
            let mut reps: Vec<QuenchRep<'a>> = states
                .into_iter()
                .enumerate()
                .map(|(i, (state, rng))| QuenchRep {
                    index: i,
                    seed: seeds[i],
                    state,
                    rng,
                    run: CoolingRun::new(ctx.t_infinity),
                    local: SummaryRecorder::new(),
                    failed: None,
                })
                .collect();
            for (rep, rck) in reps.iter_mut().zip(&ck.rungs) {
                rep.restore(rck);
            }
            return quench_all(
                &ctx,
                place,
                schedule,
                params,
                rec,
                ctrl,
                &config,
                reps,
                ck.reports,
                ck.swaps,
                ck.failures,
                ck.elites,
                threads,
                fixed_rounds.unwrap_or(schedule_len),
            );
        }
    }

    let mut rungs: Vec<Rung<'a>> = states
        .into_iter()
        .enumerate()
        .map(|(i, (state, rng))| Rung {
            index: i,
            seed: seeds[i],
            state,
            rng,
            stats: MoveStats::default(),
            trajectory: Vec::new(),
            failed: None,
        })
        .collect();

    // Adaptive ladder state: every rung starts at T∞ (the fan opens from
    // the cold end as the anchor descends) with uniform initial gaps.
    let mut temps: Vec<f64> = vec![ctx.t_infinity; replicas];
    let mut gaps: Vec<f64> = initial_gaps(replicas);
    let mut orch_rng = StdRng::seed_from_u64(derive_seed(master_seed, replicas));
    let mut swaps = SwapReport {
        pairs: vec![PairSwap::default(); replicas - 1],
        ..SwapReport::default()
    };
    let mut sweep = 0usize;
    let mut start_round = 0usize;
    let mut failures: Vec<ReplicaFailure> = Vec::new();

    if let Some(payload) = resume_payload {
        let ck = resume::tempering_from(payload)?;
        if ck.rungs.len() != replicas || ck.temps.len() != replicas || ck.gaps.len() != replicas - 1
        {
            return Err(OrchestratorError::Checkpoint(
                twmc_resume::CheckpointError::Corrupt("checkpoint rung count differs".into()),
            ));
        }
        for (rung, rck) in rungs.iter_mut().zip(&ck.rungs) {
            rung.restore(rck);
        }
        orch_rng = StdRng::from_state(ck.orch_rng);
        temps = ck.temps;
        gaps = ck.gaps;
        swaps = ck.swaps;
        sweep = ck.sweep;
        start_round = ck.round;
        failures = ck.failures;
    }

    let inner = place.attempts_per_cell * nl.cells().len();
    let enabled = rec.enabled();

    // A rung moves only while its temperature is in transit. Waiting at
    // `T∞` it already holds an equilibrium sample (any configuration
    // is), and once landed its floor polish comes from the quench — so
    // skipping both dwells costs nothing in quality while keeping the
    // ensemble's total move budget near `replicas × schedule length`,
    // the same budget a multi-start batch spends.
    let in_transit = |t: f64| t > t_floor && t < ctx.t_infinity;

    // Backstop for pathological schedules that never land; the quench
    // harvests whatever is still mid-air if it ever triggers.
    let round_cap = fixed_rounds.unwrap_or_else(|| schedule_len.saturating_mul(replicas.max(2)));
    let mut round = start_round;
    while round < round_cap {
        // With no fixed budget, the ladder ends once every rung has
        // completed its staggered descent to the floor.
        if fixed_rounds.is_none() && ladder_landed(&temps, t_floor) {
            break;
        }
        // Snapshot per-rung counters so the round's deltas can be
        // reported after the join (workers cannot share `rec`).
        let stats_before: Vec<MoveStats> = if enabled {
            rungs.iter().map(|r| r.stats).collect()
        } else {
            Vec::new()
        };
        let before: usize = rungs.iter().map(|r| r.stats.attempts()).sum();
        let round_hub = rec.hub().cloned();
        let round_tracer = rec.tracer().cloned();
        let outcomes = pool::try_run_mut(&mut rungs, threads, |_, rung| {
            if !rung.live() || !in_transit(temps[rung.index]) {
                return;
            }
            fault::maybe_fail(rung.index, round);
            let t = temps[rung.index];
            let wx = ctx.limiter.window_x(t);
            let wy = ctx.limiter.window_y(t);
            if round_hub.is_some() || round_tracer.is_some() {
                // Instrumented rung round: block-averaged move timing
                // shared between the hub histogram and the tracer's
                // `move_block` spans (each rung writes its own
                // `rung<k>` lane; hub handles are atomic, so
                // concurrent rungs fold in safely), plus sampled
                // cost-term attribution exactly as in the stage-1
                // loop. RNG use is identical to the plain loop below.
                let round_t0 = std::time::Instant::now();
                let mut lane = round_tracer
                    .as_ref()
                    .map(|tr| tr.lane(&format!("rung{}", rung.index)));
                let (a0, c0) = (rung.stats.attempts(), rung.stats.accepts());
                let mut done = 0usize;
                let mut block = 0usize;
                while done < inner {
                    let n = MOVE_EVAL_SAMPLE.min(inner - done);
                    let attributed = lane.is_some() && block.is_multiple_of(COST_ATTRIB_SAMPLE);
                    if attributed {
                        rung.state.cost_clock().start();
                    }
                    let t0 = std::time::Instant::now();
                    for _ in 0..n {
                        generate(
                            &mut rung.state,
                            place,
                            MoveSet::Full,
                            wx,
                            wy,
                            t,
                            &mut rung.rng,
                            &mut rung.stats,
                        );
                    }
                    let elapsed = t0.elapsed();
                    if let Some(hub) = &round_hub {
                        hub.move_eval_ns
                            .observe(elapsed.as_nanos() as f64 / n as f64);
                    }
                    if let Some(lane) = &mut lane {
                        lane.span("move_block", "place", t0, elapsed);
                        if attributed {
                            attribute_cost_terms(lane, t0, elapsed, rung.state.cost_clock().stop());
                        }
                    }
                    done += n;
                    block += 1;
                }
                if let Some(hub) = &round_hub {
                    hub.moves_total.add((rung.stats.attempts() - a0) as u64);
                    hub.moves_accepted_total
                        .add((rung.stats.accepts() - c0) as u64);
                    hub.temp_steps_total.inc();
                }
                if let Some(lane) = &mut lane {
                    lane.span("temp_step", "place", round_t0, round_t0.elapsed());
                }
            } else {
                for _ in 0..inner {
                    generate(
                        &mut rung.state,
                        place,
                        MoveSet::Full,
                        wx,
                        wy,
                        t,
                        &mut rung.rng,
                        &mut rung.stats,
                    );
                }
            }
            rung.trajectory.push(rung.state.teil());
        });
        for (rung, out) in rungs.iter_mut().zip(&outcomes) {
            if let Err(e) = out {
                if rung.live() {
                    rung.failed = Some(e.message.clone());
                    failures.push(ReplicaFailure {
                        replica: rung.index,
                        round: round as u64,
                        error: e.message.clone(),
                    });
                    if let Some(hub) = rec.hub() {
                        hub.replica_failures_total.inc();
                    }
                    if enabled {
                        rec.record(&Event::ReplicaFailed(ReplicaFailed {
                            phase: "tempering",
                            replica: rung.index,
                            round: round as u64,
                            error: e.message.clone(),
                        }));
                    }
                }
            }
        }
        if enabled {
            for (i, rung) in rungs
                .iter()
                .enumerate()
                .filter(|&(i, r)| r.live() && in_transit(temps[i]))
            {
                let t = temps[i];
                let delta = rung.stats.since(&stats_before[i]);
                rec.record(&Event::PlaceTemp(PlaceTemp {
                    phase: "tempering",
                    iteration: round as u64,
                    replica: i as i64,
                    step: round,
                    temperature: t,
                    s_t: ctx.s_t,
                    window_x: ctx.limiter.window_x(t),
                    window_y: ctx.limiter.window_y(t),
                    inner,
                    attempts: delta.attempts(),
                    accepts: delta.accepts(),
                    cost: CostBreakdown {
                        total: rung.state.cost(),
                        c1: rung.state.c1(),
                        overlap: rung.state.raw_overlap(),
                        overlap_penalty: rung.state.p2() * rung.state.raw_overlap() as f64,
                        c3: rung.state.c3(),
                    },
                    teil: rung.state.teil(),
                    index_rebuilds: rung.state.index_rebuilds(),
                    index_updates: rung.state.index_updates(),
                    classes: delta
                        .classes()
                        .iter()
                        .map(|&(class, (attempts, accepts))| ClassCount {
                            class,
                            attempts,
                            accepts,
                        })
                        .collect(),
                }));
            }
        }
        let after: usize = rungs.iter().map(|r| r.stats.attempts()).sum();
        ctrl.cancel.add_moves((after - before) as u64);

        if (round + 1).is_multiple_of(swap_interval) {
            // Alternate even/odd adjacent pairs per sweep, the standard
            // scheme that lets a configuration traverse the ladder.
            let start = sweep % 2;
            sweep += 1;
            for i in (start..replicas.saturating_sub(1)).step_by(2) {
                if !intra[i] || !rungs[i].live() || !rungs[i + 1].live() {
                    continue;
                }
                // Before the fan reaches a pair both rungs sit at the
                // same temperature; exchanging them is a no-op, so skip
                // deterministically (no orchestrator RNG draw, no
                // counters) instead of logging a meaningless free swap.
                if temps[i] <= temps[i + 1] {
                    continue;
                }
                let p = swap_probability(
                    temps[i],
                    temps[i + 1],
                    rungs[i].state.cost(),
                    rungs[i + 1].state.cost(),
                );
                swaps.attempts += 1;
                swaps.pairs[i].attempts += 1;
                let accepted = orch_rng.random::<f64>() < p;
                if accepted {
                    let (a, b) = rungs.split_at_mut(i + 1);
                    std::mem::swap(&mut a[i].state, &mut b[0].state);
                    swaps.accepts += 1;
                    swaps.pairs[i].accepts += 1;
                }
                gaps[i] = adapt_gap(gaps[i], accepted);
                if let Some(hub) = rec.hub() {
                    hub.swap_attempts_total.inc();
                    if accepted {
                        hub.swaps_accepted_total.inc();
                    }
                }
                if enabled {
                    rec.record(&Event::Swap(Swap {
                        round: round as u64,
                        lower: i,
                        upper: i + 1,
                        t_lower: temps[i],
                        t_upper: temps[i + 1],
                        s_t: ctx.s_t,
                        accepted,
                    }));
                }
            }
        }
        // Advance every ladder of the pack one cooling step under the
        // freshly adapted gaps; rungs never re-heat and stay ordered.
        for part in &parts {
            cool_ladder(
                schedule,
                &mut temps[part.clone()],
                &gaps[part.start..part.end - 1],
                ctx.s_t,
                t_floor,
            );
        }

        if rungs.iter().all(|r| !r.live()) {
            return Err(OrchestratorError::AllReplicasFailed(failures));
        }
        let ladder_payload = |rungs: &[Rung<'a>]| {
            resume::phase_payload(
                "tempering",
                config.clone(),
                vec![
                    ("round", Value::UInt(round as u64 + 1)),
                    ("sweep", Value::UInt(sweep as u64)),
                    ("orch_rng", twmc_resume::codec::u64x4(orch_rng.state())),
                    ("temps", resume::ladder_temps_value(&temps)),
                    ("gaps", resume::ladder_temps_value(&gaps)),
                    ("swaps", resume::swaps_value(&swaps)),
                    (
                        "rungs",
                        Value::Array(
                            rungs
                                .iter()
                                .map(|r| resume::rung_value(&r.checkpoint()))
                                .collect(),
                        ),
                    ),
                    ("failed", resume::failures_value(&failures)),
                ],
            )
        };
        if let Some(reason) = ctrl.cancel.check() {
            ctrl.write_checkpoint(&ladder_payload(&rungs))?;
            // Best live configuration by cost (comparable: shared `p₂`).
            let mut best = 0;
            let mut seen = false;
            for (i, rung) in rungs.iter().enumerate() {
                if rung.live() && (!seen || rung.state.cost() < rungs[best].state.cost()) {
                    best = i;
                    seen = true;
                }
            }
            let rung = rungs.swap_remove(best);
            return Ok(Stage1Outcome::Interrupted {
                reason,
                teil: rung.state.teil(),
                cost: rung.state.cost(),
                state: rung.state,
            });
        }
        if ctrl.checkpoint_due(round as u64) {
            ctrl.write_checkpoint(&ladder_payload(&rungs))?;
        }
        round += 1;
    }
    let ladder_rounds = round;

    // Report the ladder phase before the quench mutates the rungs.
    let replica_reports: Vec<ReplicaReport> = rungs
        .iter()
        .filter(|r| r.live())
        .map(|rung| ReplicaReport {
            replica: rung.index,
            seed: rung.seed,
            rung_temperature: Some(temps[rung.index]),
            teil: rung.state.teil(),
            cost: rung.state.cost(),
            attempts: rung.stats.attempts(),
            accepts: rung.stats.accepts(),
            teil_trajectory: rung.trajectory.clone(),
        })
        .collect();
    if replica_reports.is_empty() {
        return Err(OrchestratorError::AllReplicasFailed(failures));
    }
    if enabled {
        for report in &replica_reports {
            rec.record(&multistart::replica_summary("tempering", report));
        }
    }

    // Quench every surviving rung through the tail of the schedule.
    // Each rung re-starts from a few steps above the floor
    // (`QUENCH_REHEAT × t_floor`) under its own calibrated overlap
    // penalty: the short reheat lets a configuration shed the strain
    // the ladder's shared penalty left in it, and every rung carries a
    // distinct basin, multiplying the chances one anneals out ahead of
    // the single-quench baseline. The elitist harvest in `quench_all`
    // guarantees the reheat can never end worse than it started.
    let reps: Vec<QuenchRep<'a>> = rungs
        .into_iter()
        .map(|r| {
            let mut state = r.state;
            state.set_p2(own_p2[r.index]);
            QuenchRep {
                run: CoolingRun::new(temps[r.index].max(t_floor * QUENCH_REHEAT)),
                index: r.index,
                seed: r.seed,
                state,
                rng: r.rng,
                local: SummaryRecorder::new(),
                failed: r.failed,
            }
        })
        .collect();
    // Elitist baselines: each live rung's pre-quench configuration and
    // TEIL. They ride in every quench checkpoint so a resumed quench
    // rolls back against the exact baselines of the uninterrupted run.
    let elites: Vec<Option<(twmc_place::PlacementSnapshot, f64)>> = reps
        .iter()
        .map(|r| r.live().then(|| (r.state.snapshot(), r.state.teil())))
        .collect();
    quench_all(
        &ctx,
        place,
        schedule,
        params,
        rec,
        ctrl,
        &config,
        reps,
        replica_reports,
        swaps,
        failures,
        elites,
        threads,
        ladder_rounds,
    )
}

/// Drives every surviving rung's quench (a plain stage-1 cooling run
/// from its reheated ladder-end temperature, under the rung's own
/// overlap calibration) in step-synchronized rounds with cancellation
/// and checkpointing. Rungs that end above their pre-quench `elites`
/// baseline are rolled back to it; the lowest post-quench TEIL wins
/// (ties go to the lowest rung index).
#[allow(clippy::too_many_arguments)]
fn quench_all<'a>(
    ctx: &Stage1Context<'a>,
    place: &PlaceParams,
    schedule: &CoolingSchedule,
    params: &ParallelParams,
    rec: &mut dyn Recorder,
    ctrl: &mut RunCtrl,
    config: &Value,
    mut reps: Vec<QuenchRep<'a>>,
    reports: Vec<ReplicaReport>,
    swaps: SwapReport,
    mut failures: Vec<ReplicaFailure>,
    elites: Vec<Option<(twmc_place::PlacementSnapshot, f64)>>,
    threads: usize,
    ladder_rounds: usize,
) -> Result<Stage1Outcome<'a>, OrchestratorError> {
    let enabled = rec.enabled();
    let build_payload = |reps: &[QuenchRep<'a>], failures: &[ReplicaFailure]| {
        resume::phase_payload(
            "quench",
            config.clone(),
            vec![
                (
                    "rungs",
                    Value::Array(
                        reps.iter()
                            .map(|r| resume::replica_value(&r.checkpoint()))
                            .collect(),
                    ),
                ),
                (
                    "reports",
                    Value::Array(reports.iter().map(resume::report_value).collect()),
                ),
                ("swaps", resume::swaps_value(&swaps)),
                ("failed", resume::failures_value(failures)),
                ("elites", resume::elites_value(&elites)),
            ],
        )
    };
    loop {
        if !reps.iter().any(|r| r.live() && !r.run.done) {
            break;
        }
        let before: usize = reps.iter().map(|r| r.run.moves.attempts()).sum();
        let round_hub = rec.hub().cloned();
        let outcomes = pool::try_run_mut(&mut reps, threads, |_, rep| {
            if !rep.live() || rep.run.done {
                return;
            }
            fault::maybe_fail(rep.index, ladder_rounds + rep.run.steps());
            let mut null = NullRecorder;
            let sink: &mut dyn Recorder = if enabled { &mut rep.local } else { &mut null };
            // Forward the orchestrator's hub into the worker thread so
            // the per-move histogram fills from quench rounds too.
            let mut sink = Instrumented::maybe(sink, round_hub.clone());
            rep.run.step(
                &mut rep.state,
                place,
                MoveSet::Full,
                schedule,
                &ctx.limiter,
                ctx.s_t,
                None,
                &mut rep.rng,
                &mut sink,
                RunScope {
                    phase: "quench",
                    iteration: 0,
                    replica: rep.index as i64,
                },
            );
        });
        for (rep, out) in reps.iter_mut().zip(&outcomes) {
            if let Err(e) = out {
                if rep.live() {
                    rep.failed = Some(e.message.clone());
                    let round = (ladder_rounds + rep.run.steps()) as u64;
                    failures.push(ReplicaFailure {
                        replica: rep.index,
                        round,
                        error: e.message.clone(),
                    });
                    if let Some(hub) = rec.hub() {
                        hub.replica_failures_total.inc();
                    }
                    if enabled {
                        rec.record(&Event::ReplicaFailed(ReplicaFailed {
                            phase: "quench",
                            replica: rep.index,
                            round,
                            error: e.message.clone(),
                        }));
                    }
                }
            }
        }
        if enabled {
            for rep in &mut reps {
                for e in std::mem::take(&mut rep.local).into_events() {
                    rec.record(&e);
                }
            }
        }
        let after: usize = reps.iter().map(|r| r.run.moves.attempts()).sum();
        ctrl.cancel.add_moves((after - before) as u64);

        if let Some(reason) = ctrl.cancel.check() {
            ctrl.write_checkpoint(&build_payload(&reps, &failures))?;
            // Best live configuration so far by TEIL (costs are also
            // comparable here — shared `p₂` — but TEIL matches the final
            // winner rule).
            let mut best = usize::MAX;
            for (i, rep) in reps.iter().enumerate() {
                if rep.live() && (best == usize::MAX || rep.state.teil() < reps[best].state.teil())
                {
                    best = i;
                }
            }
            let pick = if best == usize::MAX { 0 } else { best };
            let rep = reps.swap_remove(pick);
            return Ok(Stage1Outcome::Interrupted {
                reason,
                teil: rep.state.teil(),
                cost: rep.state.cost(),
                state: rep.state,
            });
        }
        let step = reps
            .iter()
            .filter(|r| r.live())
            .map(|r| r.run.steps())
            .max()
            .unwrap_or(0);
        if step > 0 && ctrl.checkpoint_due((ladder_rounds + step) as u64 - 1) {
            ctrl.write_checkpoint(&build_payload(&reps, &failures))?;
        }
    }

    if reps.iter().all(|r| !r.live()) {
        return Err(OrchestratorError::AllReplicasFailed(failures));
    }
    // A quench that ended above its own starting point is rolled back.
    for (rep, elite) in reps.iter_mut().zip(&elites) {
        if let Some((snap, teil)) = elite {
            if rep.live() && *teil < rep.state.teil() {
                rep.state.restore(snap);
            }
        }
    }
    // Lowest post-quench TEIL wins; first minimum, so the selection is
    // total and deterministic.
    let mut best = usize::MAX;
    for (i, rep) in reps.iter().enumerate() {
        if rep.live() && (best == usize::MAX || rep.state.teil() < reps[best].state.teil()) {
            best = i;
        }
    }
    let rep = reps.swap_remove(best);
    let mut result = rep.run.into_result(&rep.state, ctx.t_infinity, ctx.s_t);
    result.t_infinity = ctx.t_infinity;
    let report = ParallelReport {
        strategy: params.strategy,
        replicas: params.replicas,
        threads,
        best_replica: rep.index,
        replica_reports: reports,
        swaps,
        failed: failures,
    };
    Ok(Stage1Outcome::Complete {
        state: rep.state,
        result,
        report,
    })
}
