//! Parallel tempering: replicas pinned to Table-1 temperature rungs with
//! Metropolis configuration exchanges between adjacent rungs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use twmc_anneal::{derive_seed, swap_probability, temperature_rungs, CoolingSchedule};
use twmc_estimator::EstimatorParams;
use twmc_netlist::Netlist;
use twmc_place::{
    generate, MoveSet, MoveStats, PlaceParams, PlacementState, Stage1Context, Stage1Result,
};

use crate::{pool, ParallelParams, ParallelReport, ReplicaReport, SwapReport};

/// One rung's worker: the configuration currently at this temperature,
/// the rung's RNG stream, and its accumulated statistics. Swaps exchange
/// `state` between rungs; everything else stays with the rung.
struct Rung<'a> {
    state: PlacementState<'a>,
    rng: StdRng,
    stats: MoveStats,
    trajectory: Vec<f64>,
}

/// Runs the tempering ladder and quenches the best rung's configuration.
///
/// Per round, every rung performs one inner loop (`A_c · N_c` attempts,
/// eq. 17) at its pinned temperature — rounds run in parallel, swap
/// sweeps are sequential on the orchestrator's own RNG stream so the
/// outcome is independent of the thread count.
pub(crate) fn run<'a>(
    nl: &'a Netlist,
    place: &PlaceParams,
    est: &EstimatorParams,
    schedule: &CoolingSchedule,
    params: &ParallelParams,
    master_seed: u64,
) -> (PlacementState<'a>, Stage1Result, ParallelReport) {
    let replicas = params.replicas;
    let threads = params.effective_threads(replicas);
    let swap_interval = params.swap_interval.max(1);
    let ctx = Stage1Context::new(nl, place, est);
    let rung_temps = temperature_rungs(
        schedule,
        ctx.t_infinity,
        ctx.s_t,
        ctx.final_temperature(),
        replicas,
    );
    // Default round count: the Table-1 trajectory length, so each rung
    // does about as many inner loops as one full stage-1 run.
    let rounds = if params.rounds > 0 {
        params.rounds
    } else {
        schedule
            .steps_between(ctx.t_infinity, ctx.final_temperature(), ctx.s_t)
            .max(1)
    };

    // Independent random starting configurations, one RNG stream per rung.
    let seeds: Vec<u64> = (0..replicas).map(|i| derive_seed(master_seed, i)).collect();
    let mut rungs: Vec<Rung<'a>> = pool::run_indexed(replicas, threads, |i| {
        let mut rng = StdRng::seed_from_u64(seeds[i]);
        let state = ctx.random_state(place, &mut rng);
        Rung {
            state,
            rng,
            stats: MoveStats::default(),
            trajectory: Vec::new(),
        }
    });
    // The `p₂` overlap normalization is calibrated per random start; the
    // exchange rule compares energies across rungs, so all rungs must
    // price overlap identically — rung 0's calibration wins.
    let p2 = rungs[0].state.p2();
    for rung in &mut rungs[1..] {
        rung.state.set_p2(p2);
    }

    let inner = place.attempts_per_cell * nl.cells().len();
    let mut orch_rng = StdRng::seed_from_u64(derive_seed(master_seed, replicas));
    let mut swaps = SwapReport::default();
    let mut sweep = 0usize;

    for round in 0..rounds {
        pool::run_mut(&mut rungs, threads, |i, rung| {
            let t = rung_temps[i];
            let wx = ctx.limiter.window_x(t);
            let wy = ctx.limiter.window_y(t);
            for _ in 0..inner {
                generate(
                    &mut rung.state,
                    place,
                    MoveSet::Full,
                    wx,
                    wy,
                    t,
                    &mut rung.rng,
                    &mut rung.stats,
                );
            }
            rung.trajectory.push(rung.state.teil());
        });

        if (round + 1) % swap_interval == 0 {
            // Alternate even/odd adjacent pairs per sweep, the standard
            // scheme that lets a configuration traverse the ladder.
            let start = sweep % 2;
            sweep += 1;
            for i in (start..replicas.saturating_sub(1)).step_by(2) {
                let p = swap_probability(
                    rung_temps[i],
                    rung_temps[i + 1],
                    rungs[i].state.cost(),
                    rungs[i + 1].state.cost(),
                );
                swaps.attempts += 1;
                if orch_rng.random::<f64>() < p {
                    let (a, b) = rungs.split_at_mut(i + 1);
                    std::mem::swap(&mut a[i].state, &mut b[0].state);
                    swaps.accepts += 1;
                }
            }
        }
    }

    // Report the ladder phase before the quench mutates the winner.
    let replica_reports: Vec<ReplicaReport> = rungs
        .iter()
        .enumerate()
        .map(|(i, rung)| ReplicaReport {
            replica: i,
            seed: seeds[i],
            rung_temperature: Some(rung_temps[i]),
            teil: rung.state.teil(),
            cost: rung.state.cost(),
            attempts: rung.stats.attempts(),
            accepts: rung.stats.accepts(),
            teil_trajectory: rung.trajectory.clone(),
        })
        .collect();

    // Quench the best configuration (usually the coldest rung, but a
    // warmer rung can hold the minimum right after an exchange sweep)
    // through the rest of the schedule from its rung temperature.
    let mut best = 0;
    for (i, rung) in rungs.iter().enumerate().skip(1) {
        if rung.state.cost() < rungs[best].state.cost() {
            best = i;
        }
    }
    let mut winner = rungs.swap_remove(best);
    let result = ctx.cool(
        &mut winner.state,
        place,
        schedule,
        rung_temps[best],
        &mut winner.rng,
    );

    let report = ParallelReport {
        strategy: params.strategy,
        replicas,
        threads,
        best_replica: best,
        replica_reports,
        swaps,
    };
    (winner.state, result, report)
}
