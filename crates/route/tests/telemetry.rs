//! Stage-2 routing telemetry: `global_route_with` must report exactly
//! what the returned routing contains, never perturb the routing
//! itself, and produce a stream the obs validator accepts end-to-end.

use twmc_geom::{Point, Rect, TileSet};
use twmc_obs::validate::{expect_kinds, validate_jsonl};
use twmc_obs::{Event, JsonlRecorder, SummaryRecorder};
use twmc_route::{global_route, global_route_with, NetPins, PlacedGeometry, RouterParams};

/// A 2×2 cell grid with enough nets to congest the center channels.
fn congested_instance() -> (PlacedGeometry, Vec<NetPins>) {
    let mut cells = Vec::new();
    for gy in 0..2 {
        for gx in 0..2 {
            cells.push((
                TileSet::rect(10, 10),
                Point::new(gx as i64 * 16 - 13, gy as i64 * 16 - 13),
            ));
        }
    }
    let geometry = PlacedGeometry {
        cells,
        core: Rect::from_wh(-18, -18, 40, 40),
    };
    let mut nets = Vec::new();
    for k in 0..8i64 {
        nets.push(NetPins {
            points: vec![
                vec![Point::new(-13 + (k % 3), -2)],
                vec![Point::new(3 + (k % 2), -2 + 16 * (k % 2))],
            ],
        });
    }
    (geometry, nets)
}

#[test]
fn route_iter_matches_the_returned_routing() {
    let (geometry, nets) = congested_instance();
    let params = RouterParams {
        m_alternatives: 6,
        per_level: 3,
        ..Default::default()
    };

    let plain = global_route(&geometry, &nets, &params, 77);
    let mut rec = SummaryRecorder::new();
    let recorded = global_route_with(&geometry, &nets, &params, 77, &mut rec, "stage2", 1);

    // Observation only: identical routing with or without a recorder.
    assert_eq!(plain.routes, recorded.routes);
    assert_eq!(plain.assignment, recorded.assignment);

    assert_eq!(rec.count("route_iter"), 1);
    let Event::RouteIter(ev) = &rec.events()[0] else {
        panic!("expected a route_iter event");
    };
    assert_eq!(ev.phase, "stage2");
    assert_eq!(ev.iteration, 1);
    assert_eq!(ev.nets, nets.len());
    assert_eq!(ev.unrouted, recorded.unrouted);
    assert_eq!(ev.overflow, recorded.overflow());
    assert_eq!(ev.total_length, recorded.total_length());
    assert_eq!(ev.attempts, recorded.assignment.attempts);
    assert_eq!(ev.reassignments, recorded.assignment.reassignments);
    // Phase 2 only accepts dX <= 0 moves, so the residual overflow
    // never exceeds the all-shortest-routes starting overflow.
    assert_eq!(ev.overflow_start, recorded.assignment.overflow_start);
    assert!(ev.overflow <= ev.overflow_start);
    assert!(ev.reassignments <= ev.attempts);
    // The utilization histogram buckets every channel edge exactly
    // once, and the usage total is the summed per-edge demand of the
    // chosen routes.
    assert_eq!(
        ev.util_hist.iter().sum::<u64>(),
        recorded.graph.edges.len() as u64
    );
    assert_eq!(
        ev.usage_total,
        recorded
            .assignment
            .edge_usage
            .iter()
            .map(|&d| d as u64)
            .sum::<u64>()
    );
    // Phase 1 enumerated at least one alternative per routed net, at
    // most M per net.
    assert!(ev.alts_total >= nets.len() - ev.unrouted);
    assert!(ev.alts_max <= params.m_alternatives);
}

#[test]
fn repeated_routes_keep_overflow_within_the_shortest_route_bound() {
    let (geometry, nets) = congested_instance();
    let params = RouterParams {
        m_alternatives: 6,
        per_level: 3,
        ..Default::default()
    };
    // Every reassign iteration (distinct seeds, as stage 2 drives it)
    // honors the accept rule: selected overflow <= starting overflow.
    for k in 0..4u64 {
        let mut rec = SummaryRecorder::new();
        let routing = global_route_with(&geometry, &nets, &params, 100 ^ k, &mut rec, "stage2", k);
        let Event::RouteIter(ev) = &rec.events()[0] else {
            panic!("expected a route_iter event");
        };
        assert!(
            ev.overflow <= ev.overflow_start,
            "iteration {k}: {} > {}",
            ev.overflow,
            ev.overflow_start
        );
        assert_eq!(ev.overflow, routing.overflow());
    }
}

#[test]
fn route_iter_stream_validates_end_to_end() {
    let (geometry, nets) = congested_instance();
    let mut rec = JsonlRecorder::new(Vec::new());
    let _ = global_route_with(
        &geometry,
        &nets,
        &RouterParams::default(),
        5,
        &mut rec,
        "final",
        3,
    );
    let text = String::from_utf8(rec.finish().expect("memory sink")).expect("utf-8");
    let stats = validate_jsonl(&text).expect("stream validates");
    expect_kinds(&stats, &["route_iter"]).expect("route_iter present");
    assert_eq!(stats.kind_counts["route_iter"], 1);
}
