//! Property-based tests for the router: the Yen/Lawler enumeration is
//! checked against brute-force simple-path enumeration, and the phase-2
//! assignment invariants are exercised on random instances.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

use twmc_geom::{Point, Rect, TileSet};
use twmc_route::{
    assign_routes, build_channel_graph, enumerate_route_trees, k_shortest_paths, ChannelGraph,
    PlacedGeometry, RouteTree,
};

/// A small random legal placement (grid with some cells removed), giving
/// varied channel graphs.
fn arb_graph() -> impl Strategy<Value = ChannelGraph> {
    (2usize..4, 2usize..4, any::<u16>()).prop_map(|(nx, ny, mask)| {
        let mut cells = Vec::new();
        for gy in 0..ny {
            for gx in 0..nx {
                if mask & (1 << (gy * nx + gx)) != 0 && cells.len() + 1 < nx * ny {
                    continue; // drop this cell (keep at least one)
                }
                cells.push((
                    TileSet::rect(8, 8),
                    Point::new(gx as i64 * 14, gy as i64 * 14),
                ));
            }
        }
        if cells.is_empty() {
            cells.push((TileSet::rect(8, 8), Point::new(0, 0)));
        }
        let w = nx as i64 * 14 + 6;
        let h = ny as i64 * 14 + 6;
        build_channel_graph(
            &PlacedGeometry {
                cells,
                core: Rect::from_wh(-6, -6, w + 6, h + 6),
            },
            2.0,
        )
    })
}

/// Brute force: all simple paths from `s` to `t` via DFS, as
/// `(length, nodes)` sorted by length.
fn all_simple_paths(g: &ChannelGraph, s: usize, t: usize, cap: usize) -> Vec<(i64, Vec<usize>)> {
    let mut out = Vec::new();
    let mut path = vec![s];
    let mut on_path = vec![false; g.len()];
    on_path[s] = true;
    fn dfs(
        g: &ChannelGraph,
        t: usize,
        path: &mut Vec<usize>,
        on_path: &mut Vec<bool>,
        len: i64,
        out: &mut Vec<(i64, Vec<usize>)>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        let u = *path.last().expect("nonempty");
        if u == t {
            out.push((len, path.clone()));
            return;
        }
        for &(v, e) in g.neighbors(u) {
            if !on_path[v] {
                on_path[v] = true;
                path.push(v);
                dfs(g, t, path, on_path, len + g.edges[e].length, out, cap);
                path.pop();
                on_path[v] = false;
            }
        }
    }
    dfs(g, t, &mut path, &mut on_path, 0, &mut out, cap);
    out.sort();
    out
}

proptest! {
    // Modest case count: the brute-force oracle enumerates up to 10⁵
    // simple paths per case.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn yen_matches_brute_force(g in arb_graph(), pick in any::<u64>()) {
        prop_assume!(g.len() >= 2);
        let s = (pick as usize) % g.len();
        let t = (pick as usize / 7 + 1) % g.len();
        prop_assume!(s != t);

        let brute = all_simple_paths(&g, s, t, 100_000);
        prop_assume!(brute.len() <= 2000); // keep the oracle tractable
        let k = 5.min(brute.len());
        let paths = k_shortest_paths(&g, s, t, k);
        prop_assert_eq!(paths.len(), k, "Yen found fewer paths than exist");
        // Lengths match the brute-force top-k exactly (paths may tie).
        for (i, p) in paths.iter().enumerate() {
            prop_assert_eq!(p.length, brute[i].0, "rank {}", i);
        }
    }

    #[test]
    fn trees_cover_points_and_lengths_add_up(g in arb_graph(), pick in any::<u64>()) {
        prop_assume!(g.len() >= 3);
        let a = (pick as usize) % g.len();
        let b = (pick as usize / 3 + 1) % g.len();
        let c = (pick as usize / 11 + 2) % g.len();
        let points = vec![vec![a], vec![b], vec![c]];
        let trees = enumerate_route_trees(&g, &points, 6, 3);
        prop_assert!(!trees.is_empty(), "connected graph must route");
        for t in &trees {
            for pt in &points {
                prop_assert!(pt.iter().any(|n| t.nodes.contains(n)));
            }
            let len: i64 = t
                .edges
                .iter()
                .map(|&(x, y)| {
                    let e = g.edge_between(x, y).expect("edges exist");
                    g.edges[e].length
                })
                .sum();
            prop_assert_eq!(len, t.length);
            // No duplicate edges.
            let set: HashSet<_> = t.edges.iter().collect();
            prop_assert_eq!(set.len(), t.edges.len());
        }
        // Sorted by length.
        for w in trees.windows(2) {
            prop_assert!(w[0].length <= w[1].length);
        }
    }

    #[test]
    fn three_terminal_trees_are_near_optimal(g in arb_graph(), pick in any::<u64>()) {
        // The paper claims the Prim-guided enumeration finds the minimal
        // Steiner route among the M alternatives for nearly all nets
        // (§4.2.1). For 3 terminals the optimum is computable exactly:
        // min over Steiner vertices v of d(a,v)+d(b,v)+d(c,v).
        prop_assume!(g.len() >= 4);
        let a = (pick as usize) % g.len();
        let b = (pick as usize / 5 + 1) % g.len();
        let c = (pick as usize / 17 + 2) % g.len();
        prop_assume!(a != b && b != c && a != c);
        let da = twmc_route::dijkstra(&g, &[a]);
        let db = twmc_route::dijkstra(&g, &[b]);
        let dc = twmc_route::dijkstra(&g, &[c]);
        let optimal = (0..g.len())
            .map(|v| da[v].saturating_add(db[v]).saturating_add(dc[v]))
            .min()
            .expect("nonempty");
        prop_assume!(optimal < i64::MAX / 4);
        let trees = enumerate_route_trees(&g, &[vec![a], vec![b], vec![c]], 8, 4);
        prop_assert!(!trees.is_empty());
        let best = trees[0].length;
        // Never better than optimal, and within 25% of it (exact on most
        // instances; the beam occasionally misses by a small margin).
        prop_assert!(best >= optimal, "{best} < optimal {optimal}");
        prop_assert!(
            best * 4 <= optimal * 5,
            "best {best} vs optimal {optimal}"
        );
    }

    #[test]
    fn assignment_never_worsens_overflow(g in arb_graph(), seed in any::<u64>(), n_nets in 2usize..10) {
        prop_assume!(g.len() >= 2);
        let mut tight = g.clone();
        for e in &mut tight.edges {
            e.capacity = 1;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let alternatives: Vec<Vec<RouteTree>> = (0..n_nets)
            .map(|_| {
                let s = rand::Rng::random_range(&mut rng, 0..tight.len());
                let mut t = rand::Rng::random_range(&mut rng, 0..tight.len());
                if t == s {
                    t = (t + 1) % tight.len();
                }
                enumerate_route_trees(&tight, &[vec![s], vec![t]], 6, 3)
            })
            .collect();
        let start_usage = {
            let mut usage = vec![0u32; tight.edges.len()];
            for alts in &alternatives {
                if let Some(t0) = alts.first() {
                    for &(a, b) in &t0.edges {
                        usage[tight.edge_between(a, b).expect("edge")] += 1;
                    }
                }
            }
            usage
        };
        let start_x: i64 = start_usage
            .iter()
            .zip(&tight.edges)
            .map(|(&d, e)| (d as i64 - e.capacity as i64).max(0))
            .sum();
        let a = assign_routes(&tight, &alternatives, &mut rng).expect("fresh routes");
        // Phase 2 only accepts ΔX <= 0 moves: overflow never grows.
        prop_assert!(a.overflow <= start_x, "{} > {start_x}", a.overflow);
        // Choice indices are valid.
        for (net, &k) in a.choice.iter().enumerate() {
            if !alternatives[net].is_empty() {
                prop_assert!(k < alternatives[net].len());
            }
        }
        // Reported length matches the chosen routes.
        let l: i64 = a
            .choice
            .iter()
            .enumerate()
            .filter(|(net, _)| !alternatives[*net].is_empty())
            .map(|(net, &k)| alternatives[net][k].length)
            .sum();
        prop_assert_eq!(l, a.total_length);
    }

    #[test]
    fn attach_pin_prefers_containing_region(g in arb_graph(), pick in any::<u64>()) {
        prop_assume!(!g.is_empty());
        let node = (pick as usize) % g.len();
        let center = g.nodes[node].center;
        let attached = g.attach_pin(center).expect("nonempty graph");
        // The chosen region contains the point (possibly a narrower one
        // when regions overlap).
        prop_assert!(g.nodes[attached].region.rect.contains(center));
        prop_assert!(
            g.nodes[attached].region.separation() <= g.nodes[node].region.separation()
                || !g.nodes[node].region.rect.contains(center)
        );
    }
}
