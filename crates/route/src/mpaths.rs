//! M-shortest-path enumeration (paper §4.2.1).
//!
//! For two-pin nets the paper uses Lawler's algorithm for the M shortest
//! paths between two vertices; we implement the equivalent deviation
//! scheme (Yen's algorithm) over the channel graph, generalized to
//! multiple sources (the already-connected tree) and multiple targets
//! (electrically-equivalent pins) via virtual terminals.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::ChannelGraph;

/// A simple path through the channel graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// Node sequence (first is a source, last is a target).
    pub nodes: Vec<usize>,
    /// Total length.
    pub length: i64,
}

/// Multi-source Dijkstra over the channel graph; returns per-node
/// distance (`i64::MAX` when unreachable).
pub fn dijkstra(graph: &ChannelGraph, sources: &[usize]) -> Vec<i64> {
    let mut dist = vec![i64::MAX; graph.len()];
    let mut heap = BinaryHeap::new();
    for &s in sources {
        dist[s] = 0;
        heap.push(Reverse((0i64, s)));
    }
    while let Some(Reverse((d, n))) = heap.pop() {
        if d > dist[n] {
            continue;
        }
        for &(m, e) in graph.neighbors(n) {
            let nd = d + graph.edges[e].length;
            if nd < dist[m] {
                dist[m] = nd;
                heap.push(Reverse((nd, m)));
            }
        }
    }
    dist
}

/// Internal adjacency with virtual terminals appended.
struct AugGraph {
    adj: Vec<Vec<(usize, i64)>>,
}

impl AugGraph {
    /// Builds plain adjacency plus virtual source (index `n`) linked to
    /// `sources` and virtual target (index `n + 1`) linked from `targets`,
    /// all with zero length.
    fn new(graph: &ChannelGraph, sources: &[usize], targets: &[usize]) -> AugGraph {
        let n = graph.len();
        let mut adj = vec![Vec::new(); n + 2];
        for (i, row) in adj.iter_mut().enumerate().take(n) {
            for &(m, e) in graph.neighbors(i) {
                row.push((m, graph.edges[e].length));
            }
        }
        for &s in sources {
            adj[n].push((s, 0));
        }
        for &t in targets {
            adj[t].push((n + 1, 0));
        }
        AugGraph { adj }
    }

    fn shortest(
        &self,
        s: usize,
        t: usize,
        banned_nodes: &[bool],
        banned_edges: &HashSet<(usize, usize)>,
    ) -> Option<(Vec<usize>, i64)> {
        let n = self.adj.len();
        let mut dist = vec![i64::MAX; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        if banned_nodes[s] {
            return None;
        }
        dist[s] = 0;
        heap.push(Reverse((0i64, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == t {
                break;
            }
            for &(v, len) in &self.adj[u] {
                if banned_nodes[v] || banned_edges.contains(&(u, v)) {
                    continue;
                }
                let nd = d + len;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        if dist[t] == i64::MAX {
            return None;
        }
        let mut nodes = vec![t];
        let mut cur = t;
        while cur != s {
            cur = prev[cur];
            nodes.push(cur);
        }
        nodes.reverse();
        Some((nodes, dist[t]))
    }
}

/// Yen's deviation algorithm over the augmented graph.
fn yen(aug: &AugGraph, s: usize, t: usize, k: usize) -> Vec<(Vec<usize>, i64)> {
    let n = aug.adj.len();
    let mut found: Vec<(Vec<usize>, i64)> = Vec::new();
    let mut candidates: BinaryHeap<Reverse<(i64, Vec<usize>)>> = BinaryHeap::new();
    let no_nodes = vec![false; n];
    let no_edges = HashSet::new();

    let Some(first) = aug.shortest(s, t, &no_nodes, &no_edges) else {
        return found;
    };
    found.push((first.0, first.1));

    while found.len() < k {
        let (last_path, _) = found.last().expect("nonempty").clone();
        // Deviate at every spur node of the previous path.
        for spur_idx in 0..last_path.len() - 1 {
            let spur = last_path[spur_idx];
            let root = &last_path[..=spur_idx];
            let root_len: i64 = root
                .windows(2)
                .map(|w| {
                    aug.adj[w[0]]
                        .iter()
                        .find(|&&(v, _)| v == w[1])
                        .map(|&(_, l)| l)
                        .expect("root follows existing edges")
                })
                .sum();
            // Ban edges used by found paths sharing this root.
            let mut banned_edges = HashSet::new();
            for (p, _) in &found {
                if p.len() > spur_idx && p[..=spur_idx] == *root {
                    banned_edges.insert((p[spur_idx], p[spur_idx + 1]));
                }
            }
            // Ban root nodes except the spur.
            let mut banned_nodes = vec![false; n];
            for &r in &root[..spur_idx] {
                banned_nodes[r] = true;
            }
            if let Some((tail, tail_len)) = aug.shortest(spur, t, &banned_nodes, &banned_edges) {
                let mut nodes = root[..spur_idx].to_vec();
                nodes.extend(tail);
                let total = root_len + tail_len;
                candidates.push(Reverse((total, nodes)));
            }
        }
        // Pop the best unseen candidate.
        let mut next = None;
        while let Some(Reverse((len, nodes))) = candidates.pop() {
            if !found.iter().any(|(p, _)| *p == nodes) {
                next = Some((nodes, len));
                break;
            }
        }
        match next {
            Some(p) => found.push(p),
            None => break,
        }
    }
    found
}

/// The `k` shortest simple paths between two channel-graph nodes, sorted
/// by length (Lawler/Yen).
pub fn k_shortest_paths(graph: &ChannelGraph, s: usize, t: usize, k: usize) -> Vec<Path> {
    k_shortest_from_set(graph, &[s], &[t], k)
}

/// The `k` shortest simple paths from any of `sources` to any of
/// `targets` (used to connect the next pin group to the growing tree;
/// `targets` holds electrically-equivalent alternatives).
pub fn k_shortest_from_set(
    graph: &ChannelGraph,
    sources: &[usize],
    targets: &[usize],
    k: usize,
) -> Vec<Path> {
    if graph.is_empty() || sources.is_empty() || targets.is_empty() || k == 0 {
        return Vec::new();
    }
    // Degenerate: a target is already a source.
    if let Some(&t) = targets.iter().find(|t| sources.contains(t)) {
        let mut out = vec![Path {
            nodes: vec![t],
            length: 0,
        }];
        out.extend(
            k_shortest_from_set_nontrivial(graph, sources, targets, k - 1)
                .into_iter()
                .filter(|p| p.nodes.len() > 1),
        );
        return out;
    }
    k_shortest_from_set_nontrivial(graph, sources, targets, k)
}

fn k_shortest_from_set_nontrivial(
    graph: &ChannelGraph,
    sources: &[usize],
    targets: &[usize],
    k: usize,
) -> Vec<Path> {
    let n = graph.len();
    let aug = AugGraph::new(graph, sources, targets);
    yen(&aug, n, n + 1, k)
        .into_iter()
        .map(|(nodes, length)| Path {
            // Strip the virtual terminals.
            nodes: nodes[1..nodes.len() - 1].to_vec(),
            length,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_channel_graph, PlacedGeometry};
    use twmc_geom::{Point, Rect, TileSet};

    /// A 3x3 grid of cells: a rich channel network with many alternative
    /// routes.
    fn grid_graph() -> ChannelGraph {
        let mut cells = Vec::new();
        for gy in 0..3 {
            for gx in 0..3 {
                cells.push((
                    TileSet::rect(10, 10),
                    Point::new(gx * 20 - 25, gy * 20 - 25),
                ));
            }
        }
        build_channel_graph(
            &PlacedGeometry {
                cells,
                core: Rect::from_wh(-30, -30, 60, 60),
            },
            2.0,
        )
    }

    #[test]
    fn dijkstra_distances_are_consistent() {
        let g = grid_graph();
        let d = dijkstra(&g, &[0]);
        assert_eq!(d[0], 0);
        // Triangle inequality along every edge.
        for e in &g.edges {
            if d[e.a] < i64::MAX && d[e.b] < i64::MAX {
                assert!(d[e.b] <= d[e.a] + e.length);
                assert!(d[e.a] <= d[e.b] + e.length);
            }
        }
    }

    #[test]
    fn k_paths_sorted_and_simple() {
        let g = grid_graph();
        let (s, t) = (0, g.len() - 1);
        let paths = k_shortest_paths(&g, s, t, 8);
        assert!(!paths.is_empty());
        for pair in paths.windows(2) {
            assert!(pair[0].length <= pair[1].length, "not sorted");
        }
        for p in &paths {
            // Simple: no repeated nodes.
            let mut seen = std::collections::HashSet::new();
            assert!(p.nodes.iter().all(|&n| seen.insert(n)), "cycle in path");
            assert_eq!(*p.nodes.first().expect("nonempty"), s);
            assert_eq!(*p.nodes.last().expect("nonempty"), t);
            // Consecutive nodes are adjacent and lengths add up.
            let mut len = 0;
            for w in p.nodes.windows(2) {
                let e = g.edge_between(w[0], w[1]).expect("adjacent");
                len += g.edges[e].length;
            }
            assert_eq!(len, p.length);
        }
        // All distinct.
        let set: std::collections::HashSet<&Vec<usize>> = paths.iter().map(|p| &p.nodes).collect();
        assert_eq!(set.len(), paths.len());
    }

    #[test]
    fn first_path_matches_dijkstra() {
        let g = grid_graph();
        let (s, t) = (1, g.len() - 2);
        let d = dijkstra(&g, &[s]);
        let paths = k_shortest_paths(&g, s, t, 3);
        assert_eq!(paths[0].length, d[t]);
    }

    #[test]
    fn multi_source_reaches_nearest() {
        let g = grid_graph();
        let sources = [0, 1, 2];
        let t = g.len() - 1;
        let paths = k_shortest_from_set(&g, &sources, &[t], 4);
        assert!(!paths.is_empty());
        // Starts at one of the sources.
        assert!(sources.contains(paths[0].nodes.first().expect("nonempty")));
        // Not longer than any single-source shortest.
        let best_single = sources
            .iter()
            .map(|&s| dijkstra(&g, &[s])[t])
            .min()
            .expect("nonempty");
        assert_eq!(paths[0].length, best_single);
    }

    #[test]
    fn equivalent_targets_pick_closer() {
        let g = grid_graph();
        let s = 0;
        let d = dijkstra(&g, &[s]);
        // Choose two targets with different distances.
        let mut far = 0;
        let mut near = 0;
        for i in 0..g.len() {
            if d[i] > d[far] {
                far = i;
            }
        }
        for i in 0..g.len() {
            if d[i] > 0 && d[i] < d[near] || d[near] == 0 {
                near = i;
            }
        }
        let paths = k_shortest_from_set(&g, &[s], &[near, far], 2);
        assert_eq!(paths[0].length, d[near].min(d[far]));
    }

    #[test]
    fn target_in_source_set_is_zero_length() {
        let g = grid_graph();
        let paths = k_shortest_from_set(&g, &[3, 4], &[4], 3);
        assert_eq!(paths[0].length, 0);
        assert_eq!(paths[0].nodes, vec![4]);
    }

    #[test]
    fn k_larger_than_path_count_saturates() {
        // A hand-built chain of three touching regions has exactly one
        // simple path end to end; asking for 50 must return just it.
        use crate::{ChannelGraph, ChannelKind, CriticalRegion, EdgeRef};
        use twmc_geom::{Side, Span};
        let strip = |x0: i64| CriticalRegion {
            rect: Rect::from_wh(x0, 0, 2, 10),
            kind: ChannelKind::Vertical,
            lo_edge: EdgeRef {
                cell: None,
                side: Side::Right,
                coord: x0,
                span: Span::new(0, 10),
            },
            hi_edge: EdgeRef {
                cell: None,
                side: Side::Left,
                coord: x0 + 2,
                span: Span::new(0, 10),
            },
        };
        let g = ChannelGraph::build(vec![strip(0), strip(2), strip(4)], 2.0);
        assert_eq!(g.len(), 3);
        let paths = k_shortest_paths(&g, 0, 2, 50);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, vec![0, 1, 2]);
    }
}
