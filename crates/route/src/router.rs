//! The global router driver: channel graph → phase 1 (alternative route
//! enumeration) → phase 2 (congestion-driven selection) → channel
//! densities (paper §4.2).

use rand::rngs::StdRng;
use rand::SeedableRng;

use twmc_geom::Point;
use twmc_obs::{CancelToken, Event, NullRecorder, Recorder, RouteIter, StopReason};

use crate::{
    assign_routes, build_channel_graph, enumerate_route_trees, Assignment, ChannelGraph,
    PlacedGeometry, RouteTree,
};

/// Global router parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterParams {
    /// Number of alternative routes stored per net (`M`; the paper uses
    /// "on the order of 20 or more").
    pub m_alternatives: usize,
    /// Alternative paths explored per Prim step of the multi-pin
    /// enumeration.
    pub per_level: usize,
    /// Wiring track separation `t_s`.
    pub track_spacing: f64,
    /// Extra track-equivalents reserved in every channel beyond the
    /// eq. 22 allocation — the paper's §5 evaluation assumed power and
    /// ground lines "about twice a normal wire width ... present in
    /// every channel", i.e. `reserved_tracks = 2.0` per rail pair.
    pub reserved_tracks: f64,
}

impl Default for RouterParams {
    fn default() -> Self {
        RouterParams {
            m_alternatives: 20,
            per_level: 4,
            track_spacing: 2.0,
            reserved_tracks: 0.0,
        }
    }
}

/// One net's connection points: per point, the candidate (electrically
/// equivalent) pin positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetPins {
    /// `points[i]` lists the equivalent positions of connection point `i`.
    pub points: Vec<Vec<Point>>,
}

/// The routing result.
#[derive(Debug, Clone)]
pub struct GlobalRouting {
    /// The channel graph routed over.
    pub graph: ChannelGraph,
    /// Chosen route per net (`None` for nets that could not be routed,
    /// e.g. when the channel graph is disconnected by an illegal
    /// placement).
    pub routes: Vec<Option<RouteTree>>,
    /// The phase-2 assignment record.
    pub assignment: Assignment,
    /// Distinct nets through each channel node — the density that sets
    /// the required channel width `w = (d + 2)·t_s` (eq. 22).
    pub node_density: Vec<u32>,
    /// Per net, the chosen attachment of each connection point: the
    /// channel node it enters the graph at and the pin's position
    /// (empty for unrouted nets). Feeds detailed-routing checks.
    pub pin_attachments: Vec<Vec<(usize, Point)>>,
    /// Reserved track-equivalents per channel (power/ground allowance,
    /// copied from [`RouterParams::reserved_tracks`]).
    pub reserved_tracks: f64,
    /// Nets that could not be routed.
    pub unrouted: usize,
}

impl GlobalRouting {
    /// Total routed length `L`.
    pub fn total_length(&self) -> i64 {
        self.assignment.total_length
    }

    /// Residual capacity overflow `X`.
    pub fn overflow(&self) -> i64 {
        self.assignment.overflow
    }

    /// Required width of channel node `i` per eq. 22, plus any reserved
    /// power/ground tracks: `(d + 2 + reserved) · t_s`.
    pub fn required_width(&self, node: usize, track_spacing: f64) -> f64 {
        (self.node_density[node] as f64 + 2.0 + self.reserved_tracks) * track_spacing
    }
}

/// Runs the full global-routing flow on a placed circuit.
///
/// Each net's connection points are mapped onto channel-graph nodes by
/// perpendicular projection ([`ChannelGraph::attach_pin`]); phase 1
/// enumerates up to `M` alternative route trees; phase 2 selects one per
/// net under the capacity constraints.
pub fn global_route(
    geometry: &PlacedGeometry,
    nets: &[NetPins],
    params: &RouterParams,
    seed: u64,
) -> GlobalRouting {
    global_route_with(geometry, nets, params, seed, &mut NullRecorder, "route", 0)
}

/// [`global_route`] with a telemetry sink: emits one
/// [`RouteIter`] event labeled `phase`/`iteration` summarizing the
/// execution — phase-1 alternative counts, the phase-2 interchange's
/// overflow trajectory (`overflow_start` → `overflow`), rip-up
/// counters, and the channel-edge utilization histogram. Recording
/// never touches the router's RNG stream, so the routing is
/// bit-identical to [`global_route`] for any recorder.
pub fn global_route_with(
    geometry: &PlacedGeometry,
    nets: &[NetPins],
    params: &RouterParams,
    seed: u64,
    rec: &mut dyn Recorder,
    phase: &'static str,
    iteration: u64,
) -> GlobalRouting {
    match route_inner(geometry, nets, params, seed, rec, phase, iteration, None) {
        Ok(r) => r,
        Err(_) => unreachable!("routing without a token cannot be cancelled"),
    }
}

/// [`global_route_with`] under a cancellation token, polled once per net
/// during the phase-1 enumeration (the dominant cost for large nets).
/// `Err` means the routing was abandoned mid-flight — no partial result
/// is returned, since a half-enumerated alternative set would bias the
/// phase-2 selection. A run that is not stopped is bit-identical to
/// [`global_route_with`].
#[allow(clippy::too_many_arguments)]
pub fn global_route_cancellable(
    geometry: &PlacedGeometry,
    nets: &[NetPins],
    params: &RouterParams,
    seed: u64,
    rec: &mut dyn Recorder,
    phase: &'static str,
    iteration: u64,
    cancel: &CancelToken,
) -> Result<GlobalRouting, StopReason> {
    route_inner(
        geometry,
        nets,
        params,
        seed,
        rec,
        phase,
        iteration,
        Some(cancel),
    )
}

#[allow(clippy::too_many_arguments)]
fn route_inner(
    geometry: &PlacedGeometry,
    nets: &[NetPins],
    params: &RouterParams,
    seed: u64,
    rec: &mut dyn Recorder,
    phase: &'static str,
    iteration: u64,
    cancel: Option<&CancelToken>,
) -> Result<GlobalRouting, StopReason> {
    let route_t0 = std::time::Instant::now();
    // Span lane for this routing execution: one `route_net` span per
    // net's phase-1 enumeration, a `route_select` span for the phase-2
    // interchange, and a `route_iter` parent covering the whole call.
    // Clocks are read only when a tracer is attached; the RNG is never
    // touched, so routing stays bit-identical.
    let tracer = rec.tracer().cloned();
    let mut lane = tracer.as_ref().map(|tr| tr.lane("route"));
    let graph = build_channel_graph(geometry, params.track_spacing);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut alternatives: Vec<Vec<RouteTree>> = Vec::with_capacity(nets.len());
    let mut net_points: Vec<Vec<Vec<(usize, i64, Point)>>> = Vec::with_capacity(nets.len());
    for net in nets {
        if let Some(reason) = cancel.and_then(|c| c.check()) {
            return Err(reason);
        }
        let net_t0 = lane.as_ref().map(|_| std::time::Instant::now());
        if graph.is_empty() {
            alternatives.push(Vec::new());
            net_points.push(Vec::new());
            continue;
        }
        // Per connection point: candidate attach nodes with the pin's
        // perpendicular-projection offset (distance from the pin to the
        // channel node), which contributes to the route length (§4.1).
        let points: Vec<Vec<(usize, i64, Point)>> = net
            .points
            .iter()
            .map(|cands| {
                let mut nodes: Vec<(usize, i64, Point)> = cands
                    .iter()
                    .filter_map(|&p| {
                        graph
                            .attach_pin(p)
                            .map(|n| (n, graph.nodes[n].center.manhattan(p), p))
                    })
                    .collect();
                nodes.sort_unstable_by_key(|&(n, off, _)| (n, off));
                // Keep the smallest offset per node.
                nodes.dedup_by_key(|&mut (n, _, _)| n);
                nodes
            })
            .filter(|nodes| !nodes.is_empty())
            .collect();
        if points.len() < 2 {
            alternatives.push(Vec::new());
            net_points.push(Vec::new());
            continue;
        }
        let node_lists: Vec<Vec<usize>> = points
            .iter()
            .map(|p| p.iter().map(|&(n, _, _)| n).collect())
            .collect();
        let mut trees =
            enumerate_route_trees(&graph, &node_lists, params.m_alternatives, params.per_level);
        // Charge each tree the offsets of the candidates it actually
        // connects (the cheapest in-tree candidate per point), then
        // re-rank: this is how electrically-equivalent pins shorten nets.
        for tree in &mut trees {
            let mut extra = 0;
            for cands in &points {
                let best = cands
                    .iter()
                    .filter(|(n, _, _)| tree.nodes.binary_search(n).is_ok())
                    .map(|&(_, off, _)| off)
                    .min()
                    .unwrap_or(0);
                extra += best;
            }
            tree.length += extra;
        }
        trees.sort_by(|a, b| a.length.cmp(&b.length).then(a.edges.cmp(&b.edges)));
        alternatives.push(trees);
        net_points.push(points);
        if let (Some(lane), Some(t0)) = (lane.as_mut(), net_t0) {
            lane.span("route_net", "route", t0, t0.elapsed());
        }
    }

    let select_t0 = lane.as_ref().map(|_| std::time::Instant::now());
    let assignment = assign_routes(&graph, &alternatives, &mut rng)
        .expect("alternatives enumerated on this graph");
    if let (Some(lane), Some(t0)) = (lane.as_mut(), select_t0) {
        lane.span("route_select", "route", t0, t0.elapsed());
    }

    // Node densities: distinct nets through each node; chosen pin
    // attachments per connection point.
    let mut node_density = vec![0u32; graph.len()];
    let mut routes = Vec::with_capacity(nets.len());
    let mut pin_attachments = Vec::with_capacity(nets.len());
    let mut unrouted = 0;
    for (net, alts) in alternatives.iter().enumerate() {
        if alts.is_empty() {
            routes.push(None);
            pin_attachments.push(Vec::new());
            unrouted += 1;
            continue;
        }
        let tree = alts[assignment.choice[net]].clone();
        for &n in &tree.nodes {
            node_density[n] += 1;
        }
        let attach: Vec<(usize, Point)> = net_points[net]
            .iter()
            .filter_map(|cands| {
                cands
                    .iter()
                    .filter(|(n, _, _)| tree.nodes.binary_search(n).is_ok())
                    .min_by_key(|&&(_, off, _)| off)
                    .map(|&(n, _, p)| (n, p))
            })
            .collect();
        pin_attachments.push(attach);
        routes.push(Some(tree));
    }

    if rec.enabled() {
        let mut util_hist = [0u64; 5];
        let mut usage_total = 0u64;
        for (&d, e) in assignment.edge_usage.iter().zip(&graph.edges) {
            usage_total += d as u64;
            let util = d as f64 / (e.capacity as f64).max(1.0);
            let bucket = if d == 0 {
                0
            } else if util <= 0.5 {
                1
            } else if util <= 0.9 {
                2
            } else if util <= 1.0 {
                3
            } else {
                4
            };
            util_hist[bucket] += 1;
        }
        rec.record(&Event::RouteIter(RouteIter {
            phase,
            iteration,
            nets: nets.len(),
            unrouted,
            alts_total: alternatives.iter().map(|a| a.len()).sum(),
            alts_max: alternatives.iter().map(|a| a.len()).max().unwrap_or(0),
            overflow_start: assignment.overflow_start,
            overflow: assignment.overflow,
            total_length: assignment.total_length,
            attempts: assignment.attempts,
            reassignments: assignment.reassignments,
            usage_total,
            util_hist,
        }));
    }

    if let Some(hub) = rec.hub() {
        hub.route_iters_total.inc();
        hub.route_iter_ms
            .observe(route_t0.elapsed().as_secs_f64() * 1e3);
        hub.route_overflow.set(assignment.overflow);
    }
    if let Some(lane) = &mut lane {
        lane.span("route_iter", "route", route_t0, route_t0.elapsed());
    }

    Ok(GlobalRouting {
        graph,
        routes,
        assignment,
        node_density,
        pin_attachments,
        reserved_tracks: params.reserved_tracks,
        unrouted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twmc_geom::{Rect, TileSet};

    fn quad_geometry() -> PlacedGeometry {
        PlacedGeometry {
            cells: vec![
                (TileSet::rect(10, 10), Point::new(-15, -15)),
                (TileSet::rect(10, 10), Point::new(5, -15)),
                (TileSet::rect(10, 10), Point::new(-15, 5)),
                (TileSet::rect(10, 10), Point::new(5, 5)),
            ],
            core: Rect::from_wh(-20, -20, 40, 40),
        }
    }

    #[test]
    fn routes_simple_nets() {
        let g = quad_geometry();
        // Net 0: SW right edge to SE left edge; Net 1: SW top to NW bottom.
        let nets = vec![
            NetPins {
                points: vec![vec![Point::new(-5, -10)], vec![Point::new(5, -10)]],
            },
            NetPins {
                points: vec![vec![Point::new(-10, -5)], vec![Point::new(-10, 5)]],
            },
        ];
        let r = global_route(&g, &nets, &RouterParams::default(), 1);
        assert_eq!(r.unrouted, 0);
        assert_eq!(r.overflow(), 0);
        assert!(r.routes.iter().all(|t| t.is_some()));
        // Densities: at least the attachment channels carry the nets.
        assert!(r.node_density.iter().any(|&d| d > 0));
        // Required widths follow eq. 22.
        let node = r
            .node_density
            .iter()
            .position(|&d| d > 0)
            .expect("some dense node");
        assert_eq!(
            r.required_width(node, 2.0),
            (r.node_density[node] as f64 + 2.0) * 2.0
        );
    }

    #[test]
    fn multi_pin_net_with_equivalents() {
        let g = quad_geometry();
        let nets = vec![NetPins {
            points: vec![
                vec![Point::new(-5, -10)],
                // Equivalent pair on different cells' edges.
                vec![Point::new(5, -10), Point::new(5, 10)],
                vec![Point::new(-10, 5)],
            ],
        }];
        let r = global_route(&g, &nets, &RouterParams::default(), 2);
        assert_eq!(r.unrouted, 0);
        let tree = r.routes[0].as_ref().expect("routed");
        assert!(tree.length > 0);
    }

    #[test]
    fn degenerate_net_is_reported_unrouted() {
        let g = PlacedGeometry {
            cells: vec![(TileSet::rect(10, 10), Point::new(-5, -5))],
            core: Rect::from_wh(-5, -5, 10, 10), // cell fills the core: no channels
        };
        let nets = vec![NetPins {
            points: vec![vec![Point::new(-5, 0)], vec![Point::new(5, 0)]],
        }];
        let r = global_route(&g, &nets, &RouterParams::default(), 3);
        assert_eq!(r.unrouted, 1);
        assert!(r.routes[0].is_none());
    }

    #[test]
    fn reserved_tracks_widen_requirements() {
        // The paper's §5 evaluation assumed power/ground rails of about
        // two normal wire widths in every channel.
        let g = quad_geometry();
        let nets = vec![NetPins {
            points: vec![vec![Point::new(-5, -10)], vec![Point::new(5, -10)]],
        }];
        let plain = global_route(&g, &nets, &RouterParams::default(), 4);
        let pg = global_route(
            &g,
            &nets,
            &RouterParams {
                reserved_tracks: 2.0,
                ..Default::default()
            },
            4,
        );
        // Same routing, wider requirement: +reserved*t_s on every node.
        for node in 0..plain.graph.len() {
            assert_eq!(
                pg.required_width(node, 2.0),
                plain.required_width(node, 2.0) + 4.0
            );
        }
    }

    #[test]
    fn deterministic() {
        let g = quad_geometry();
        let nets = vec![NetPins {
            points: vec![vec![Point::new(-5, -10)], vec![Point::new(5, -10)]],
        }];
        let a = global_route(&g, &nets, &RouterParams::default(), 9);
        let b = global_route(&g, &nets, &RouterParams::default(), 9);
        assert_eq!(a.total_length(), b.total_length());
    }
}
