//! The channel graph (paper §4.1, Figs. 8–9).
//!
//! Each empty-space critical region is a *node*; graph *edges* join
//! regions whose rectangles touch or overlap. Pins on cell edges project
//! perpendicularly onto the adjacent channel and attach to its node. Edge
//! capacities derive from the fixed separations of the channels they
//! join (the constraint set of the phase-2 route selection, §4.2.2).

use std::collections::HashMap;

use twmc_geom::{Point, Rect};

use crate::CriticalRegion;

/// A node of the channel graph: one critical region.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelNode {
    /// The underlying critical region.
    pub region: CriticalRegion,
    /// Node position (region center), used for edge lengths.
    pub center: Point,
    /// Wiring capacity of the channel: `floor(separation / t_s)` tracks.
    pub capacity: u32,
}

/// An edge joining two adjacent channel nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphEdge {
    /// Endpoint node indices (`a < b`).
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// Manhattan length between the node centers (min 1, so that path
    /// counting never sees zero-length cycles).
    pub length: i64,
    /// Capacity: the narrower of the two channels' track counts.
    pub capacity: u32,
}

/// The channel graph.
#[derive(Debug, Clone, Default)]
pub struct ChannelGraph {
    /// Nodes (one per critical region).
    pub nodes: Vec<ChannelNode>,
    /// Edges between adjacent regions.
    pub edges: Vec<GraphEdge>,
    adjacency: Vec<Vec<(usize, usize)>>,
    /// Ordered node pair `(min, max)` → edge index, so the phase-2
    /// interchange's inner loop resolves edges in O(1) instead of
    /// scanning the adjacency list.
    edge_index: HashMap<(usize, usize), usize>,
}

impl ChannelGraph {
    /// Builds the graph from the critical regions of a placement.
    ///
    /// `track_spacing` is the center-to-center wiring pitch `t_s` used to
    /// convert separations to track capacities.
    pub fn build(regions: Vec<CriticalRegion>, track_spacing: f64) -> ChannelGraph {
        let ts = track_spacing.max(1.0);
        let nodes: Vec<ChannelNode> = regions
            .into_iter()
            .map(|region| {
                let capacity = (region.separation() as f64 / ts).floor() as u32;
                ChannelNode {
                    center: region.rect.center(),
                    capacity,
                    region,
                }
            })
            .collect();

        let mut edges = Vec::new();
        for a in 0..nodes.len() {
            for b in (a + 1)..nodes.len() {
                let ra = nodes[a].region.rect;
                let rb = nodes[b].region.rect;
                if ra.intersect(rb).is_some() {
                    edges.push(GraphEdge {
                        a,
                        b,
                        length: nodes[a].center.manhattan(nodes[b].center).max(1),
                        capacity: nodes[a].capacity.min(nodes[b].capacity),
                    });
                }
            }
        }

        let mut adjacency = vec![Vec::new(); nodes.len()];
        let mut edge_index = HashMap::with_capacity(edges.len());
        for (ei, e) in edges.iter().enumerate() {
            adjacency[e.a].push((e.b, ei));
            adjacency[e.b].push((e.a, ei));
            edge_index.insert((e.a, e.b), ei);
        }
        ChannelGraph {
            nodes,
            edges,
            adjacency,
            edge_index,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Neighbors of a node as `(neighbor, edge index)` pairs.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[(usize, usize)] {
        &self.adjacency[node]
    }

    /// The edge index joining `a` and `b`, if adjacent (O(1); also safe
    /// on out-of-range node ids, which simply aren't adjacent).
    pub fn edge_between(&self, a: usize, b: usize) -> Option<usize> {
        self.edge_index.get(&(a.min(b), a.max(b))).copied()
    }

    /// Attaches a pin at absolute position `p` to a channel node.
    ///
    /// Preference order: the narrowest region whose closed rectangle
    /// contains `p` (a pin on a cell edge lies on the boundary of the
    /// regions that edge defines); otherwise the node with the nearest
    /// center. Returns `None` only for an empty graph.
    pub fn attach_pin(&self, p: Point) -> Option<usize> {
        let mut containing: Option<(usize, i64)> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.region.rect.contains(p) {
                let sep = n.region.separation();
                if containing.is_none_or(|(_, best)| sep < best) {
                    containing = Some((i, sep));
                }
            }
        }
        if let Some((i, _)) = containing {
            return Some(i);
        }
        self.nodes
            .iter()
            .enumerate()
            .min_by_key(|(_, n)| n.center.manhattan(p))
            .map(|(i, _)| i)
    }

    /// Total channel length (sum of region extents) — the realized `C_L`.
    pub fn total_channel_length(&self) -> i64 {
        self.nodes.iter().map(|n| n.region.extent()).sum()
    }

    /// The bounding rectangle of all regions.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.nodes.iter().map(|n| n.region.rect);
        let first = it.next()?;
        Some(it.fold(first, |acc, r| acc.hull(r)))
    }
}

/// Convenience: run channel definition and build the graph in one step.
pub fn build_channel_graph(geometry: &crate::PlacedGeometry, track_spacing: f64) -> ChannelGraph {
    ChannelGraph::build(crate::critical_regions(geometry), track_spacing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChannelKind, PlacedGeometry};
    use twmc_geom::TileSet;

    fn quad_geometry() -> PlacedGeometry {
        // Four 10x10 cells on a 2x2 grid with 10-unit streets.
        PlacedGeometry {
            cells: vec![
                (TileSet::rect(10, 10), Point::new(-15, -15)),
                (TileSet::rect(10, 10), Point::new(5, -15)),
                (TileSet::rect(10, 10), Point::new(-15, 5)),
                (TileSet::rect(10, 10), Point::new(5, 5)),
            ],
            core: Rect::from_wh(-20, -20, 40, 40),
        }
    }

    #[test]
    fn graph_is_connected_for_grid_placement() {
        let g = build_channel_graph(&quad_geometry(), 2.0);
        assert!(!g.is_empty());
        assert!(!g.edges.is_empty());
        // BFS reaches every node: the channel network around a legal
        // placement is connected.
        let mut seen = vec![false; g.len()];
        let mut stack = vec![0];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for &(m, _) in g.neighbors(n) {
                if !seen[m] {
                    seen[m] = true;
                    stack.push(m);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "disconnected channel graph");
    }

    #[test]
    fn capacities_follow_separation() {
        let g = build_channel_graph(&quad_geometry(), 2.0);
        // The street between the west cells and east cells is 10 wide:
        // capacity 5 at t_s = 2.
        let street = g
            .nodes
            .iter()
            .find(|n| {
                n.region.kind == ChannelKind::Vertical
                    && n.region.rect.x_span() == twmc_geom::Span::new(-5, 5)
                    && n.region.lo_edge.cell.is_some()
                    && n.region.hi_edge.cell.is_some()
            })
            .expect("vertical street");
        assert_eq!(street.capacity, 5);
        // Edge capacity is the min of its endpoints.
        for e in &g.edges {
            assert_eq!(e.capacity, g.nodes[e.a].capacity.min(g.nodes[e.b].capacity));
            assert!(e.length >= 1);
        }
    }

    #[test]
    fn pin_attaches_to_adjacent_channel() {
        let g = build_channel_graph(&quad_geometry(), 2.0);
        // A pin on the right edge of the SW cell (x=-5, y=-10) lies on the
        // boundary of the vertical street region.
        let node = g.attach_pin(Point::new(-5, -10)).expect("graph nonempty");
        let r = &g.nodes[node].region;
        assert!(r.rect.contains(Point::new(-5, -10)));
        // A pin in the middle of nowhere attaches to the nearest region.
        let far = g.attach_pin(Point::new(100, 100)).expect("nonempty");
        assert!(far < g.len());
    }

    #[test]
    fn edge_between_lookup() {
        let g = build_channel_graph(&quad_geometry(), 2.0);
        let e = g.edges[0];
        assert_eq!(g.edge_between(e.a, e.b), Some(0));
        assert_eq!(g.edge_between(e.b, e.a), Some(0));
    }

    #[test]
    fn empty_geometry_gives_single_core_region() {
        // One cell in a core: four side channels plus corners overlap.
        let g = build_channel_graph(
            &PlacedGeometry {
                cells: vec![(TileSet::rect(10, 10), Point::new(-5, -5))],
                core: Rect::from_wh(-15, -15, 30, 30),
            },
            2.0,
        );
        // Four cell-to-border channels exist.
        let cell_border = g
            .nodes
            .iter()
            .filter(|n| (n.region.lo_edge.cell.is_some()) != (n.region.hi_edge.cell.is_some()))
            .count();
        assert!(cell_border >= 4, "{cell_border}");
    }
}
