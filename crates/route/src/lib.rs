//! Channel definition and global routing of TimberWolfMC (paper §4.1–4.2).
//!
//! * **Channel definition** ([`critical_regions`]): every pair of facing
//!   parallel cell/core edges bounding an empty rectangle over their
//!   common span defines a *critical region* — a channel bordered by
//!   exactly two edges, so a single density parameter gives its width
//!   (`w = (d+2)·t_s`, eq. 22). Overlapping regions are kept (unlike
//!   Chen's bottlenecks).
//! * **Channel graph** ([`ChannelGraph`]): regions are nodes, touching
//!   regions are joined by edges with track capacities; pins project
//!   perpendicularly onto their adjacent channel.
//! * **Global routing** ([`global_route`]): phase 1 enumerates the
//!   ~M-shortest route trees per net (Lawler/Yen deviations for two-pin
//!   nets, a Prim-guided recursive generalization with
//!   electrically-equivalent pins for n-pin nets); phase 2 selects one
//!   route per net by random interchange, minimizing total length
//!   subject to the capacity constraints — avoiding net-ordering
//!   dependence.
//!
//! # Examples
//!
//! ```
//! use twmc_geom::{Point, Rect, TileSet};
//! use twmc_route::{global_route, NetPins, PlacedGeometry, RouterParams};
//!
//! let geometry = PlacedGeometry {
//!     cells: vec![
//!         (TileSet::rect(10, 10), Point::new(-15, -5)),
//!         (TileSet::rect(10, 10), Point::new(5, -5)),
//!     ],
//!     core: Rect::from_wh(-20, -10, 40, 20),
//! };
//! let nets = vec![NetPins {
//!     points: vec![vec![Point::new(-5, 0)], vec![Point::new(5, 0)]],
//! }];
//! let routing = global_route(&geometry, &nets, &RouterParams::default(), 42);
//! assert_eq!(routing.unrouted, 0);
//! assert_eq!(routing.overflow(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod assign;
mod channel;
mod graph;
mod mpaths;
mod router;
mod steiner;

pub use assign::{assign_routes, Assignment, StaleRouteError};
pub use channel::{critical_regions, ChannelKind, CriticalRegion, EdgeRef, PlacedGeometry};
pub use graph::{build_channel_graph, ChannelGraph, ChannelNode, GraphEdge};
pub use mpaths::{dijkstra, k_shortest_from_set, k_shortest_paths, Path};
pub use router::{
    global_route, global_route_cancellable, global_route_with, GlobalRouting, NetPins, RouterParams,
};
pub use steiner::{enumerate_route_trees, RouteTree};
