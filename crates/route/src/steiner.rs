//! Route-tree enumeration for multi-pin nets (paper §4.2.1, Figs. 10–12).
//!
//! The paper generalizes Lawler's M-shortest-paths to n-pin nets: pins
//! are connected in Prim order (nearest unconnected pin group next), and
//! each time a pin group is added, the M shortest paths from the current
//! tree's nodes to the group's (electrically-equivalent) candidates are
//! generated; the recursion over path choices keeps the overall M best
//! complete route-trees. We bound the recursion with a beam over partial
//! trees (documented in DESIGN.md); for small per-level counts this
//! explores the same alternatives the paper's recursion stores.

use std::collections::BTreeSet;

use crate::{dijkstra, k_shortest_from_set, ChannelGraph};

/// One complete route (a Steiner tree over channel-graph nodes) for a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTree {
    /// Nodes used by the route (sorted, deduplicated).
    pub nodes: Vec<usize>,
    /// Edges used, as `(a, b)` with `a < b`, sorted.
    pub edges: Vec<(usize, usize)>,
    /// Total length: sum of used edge lengths (shared segments counted
    /// once — the Steiner objective).
    pub length: i64,
}

impl RouteTree {
    fn signature(&self) -> &[(usize, usize)] {
        &self.edges
    }
}

#[derive(Debug, Clone)]
struct PartialTree {
    nodes: BTreeSet<usize>,
    edges: BTreeSet<(usize, usize)>,
    length: i64,
}

impl PartialTree {
    fn absorb_path(&self, graph: &ChannelGraph, path: &[usize]) -> PartialTree {
        let mut out = self.clone();
        for w in path.windows(2) {
            let key = (w[0].min(w[1]), w[0].max(w[1]));
            if out.edges.insert(key) {
                let e = graph
                    .edge_between(w[0], w[1])
                    .expect("paths follow graph edges");
                out.length += graph.edges[e].length;
            }
        }
        for &n in path {
            out.nodes.insert(n);
        }
        out
    }

    fn into_route(self) -> RouteTree {
        RouteTree {
            nodes: self.nodes.into_iter().collect(),
            edges: self.edges.into_iter().collect(),
            length: self.length,
        }
    }
}

/// Enumerates up to `m` alternative route-trees for a net whose
/// connection points are given as candidate node lists (one list per
/// point; alternatives within a list are electrically equivalent).
///
/// `per_level` is the number of alternative tree-to-pin paths explored at
/// each Prim step (the paper stores the M shortest at each level; small
/// values keep the enumeration sharp).
///
/// Returns trees sorted by length, deduplicated by edge set. Empty when
/// some point cannot be reached from the first.
pub fn enumerate_route_trees(
    graph: &ChannelGraph,
    points: &[Vec<usize>],
    m: usize,
    per_level: usize,
) -> Vec<RouteTree> {
    if graph.is_empty() || points.is_empty() || m == 0 {
        return Vec::new();
    }
    let beam_width = m.max(per_level * per_level).min(64);

    // Start states: each candidate of the first connection point.
    let mut beam: Vec<(PartialTree, Vec<usize>)> = points[0]
        .iter()
        .map(|&n| {
            let mut nodes = BTreeSet::new();
            nodes.insert(n);
            (
                PartialTree {
                    nodes,
                    edges: BTreeSet::new(),
                    length: 0,
                },
                (1..points.len()).collect::<Vec<usize>>(),
            )
        })
        .collect();

    while beam.iter().any(|(_, rest)| !rest.is_empty()) {
        let mut next_beam: Vec<(PartialTree, Vec<usize>)> = Vec::new();
        for (tree, rest) in &beam {
            if rest.is_empty() {
                next_beam.push((tree.clone(), rest.clone()));
                continue;
            }
            // Prim: nearest unconnected point next.
            let sources: Vec<usize> = tree.nodes.iter().copied().collect();
            let dist = dijkstra(graph, &sources);
            let (pos, _) = rest
                .iter()
                .enumerate()
                .map(|(k, &pi)| {
                    let d = points[pi]
                        .iter()
                        .map(|&c| dist[c])
                        .min()
                        .unwrap_or(i64::MAX);
                    (k, d)
                })
                .min_by_key(|&(_, d)| d)
                .expect("rest nonempty");
            let point = rest[pos];
            let mut new_rest = rest.clone();
            new_rest.remove(pos);

            let paths = k_shortest_from_set(graph, &sources, &points[point], per_level);
            for p in paths {
                next_beam.push((tree.absorb_path(graph, &p.nodes), new_rest.clone()));
            }
        }
        if next_beam.is_empty() {
            // Some point is unreachable.
            return Vec::new();
        }
        // Keep the best `beam_width` states, deduplicated by edge set.
        next_beam.sort_by_key(|(t, _)| t.length);
        type TreeKey = (BTreeSet<(usize, usize)>, BTreeSet<usize>);
        let mut seen: Vec<TreeKey> = Vec::new();
        next_beam.retain(|(t, _)| {
            let key = (t.edges.clone(), t.nodes.clone());
            if seen.contains(&key) {
                false
            } else {
                seen.push(key);
                true
            }
        });
        next_beam.truncate(beam_width);
        beam = next_beam;
    }

    let mut routes: Vec<RouteTree> = beam.into_iter().map(|(t, _)| t.into_route()).collect();
    routes.sort_by(|a, b| a.length.cmp(&b.length).then(a.edges.cmp(&b.edges)));
    routes.dedup_by(|a, b| a.signature() == b.signature());
    routes.truncate(m);
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_channel_graph, PlacedGeometry};
    use twmc_geom::{Point, Rect, TileSet};

    fn grid_graph() -> ChannelGraph {
        let mut cells = Vec::new();
        for gy in 0..3 {
            for gx in 0..3 {
                cells.push((
                    TileSet::rect(10, 10),
                    Point::new(gx * 20 - 25, gy * 20 - 25),
                ));
            }
        }
        build_channel_graph(
            &PlacedGeometry {
                cells,
                core: Rect::from_wh(-30, -30, 60, 60),
            },
            2.0,
        )
    }

    #[test]
    fn two_pin_routes_match_k_shortest() {
        let g = grid_graph();
        let (s, t) = (0, g.len() - 1);
        let trees = enumerate_route_trees(&g, &[vec![s], vec![t]], 6, 6);
        let paths = crate::k_shortest_paths(&g, s, t, 6);
        assert_eq!(trees[0].length, paths[0].length);
        // Trees are sorted and distinct.
        for pair in trees.windows(2) {
            assert!(pair[0].length <= pair[1].length);
            assert_ne!(pair[0].edges, pair[1].edges);
        }
    }

    #[test]
    fn multi_pin_tree_connects_all_points() {
        let g = grid_graph();
        let n = g.len();
        let points = vec![vec![0], vec![n / 2], vec![n - 1], vec![n / 3]];
        let trees = enumerate_route_trees(&g, &points, 8, 3);
        assert!(!trees.is_empty());
        for t in &trees {
            // Every point's chosen candidate is in the tree.
            for p in &points {
                assert!(p.iter().any(|c| t.nodes.binary_search(c).is_ok()));
            }
            // The tree's edge set is connected over its nodes.
            let mut reach = BTreeSet::new();
            reach.insert(t.nodes[0]);
            let mut changed = true;
            while changed {
                changed = false;
                for &(a, b) in &t.edges {
                    if reach.contains(&a) != reach.contains(&b) {
                        reach.insert(a);
                        reach.insert(b);
                        changed = true;
                    }
                }
            }
            for &node in &t.nodes {
                assert!(reach.contains(&node), "disconnected tree");
            }
            // Length equals the sum of its edges.
            let len: i64 = t
                .edges
                .iter()
                .map(|&(a, b)| {
                    let e = g.edge_between(a, b).expect("edges exist");
                    g.edges[e].length
                })
                .sum();
            assert_eq!(len, t.length);
        }
    }

    #[test]
    fn steiner_shares_trunk() {
        // Tree length must be at most the sum of independent 2-pin paths
        // (sharing can only help).
        let g = grid_graph();
        let n = g.len();
        let points = vec![vec![0], vec![n - 1], vec![n / 2]];
        let trees = enumerate_route_trees(&g, &points, 4, 4);
        let d0 = dijkstra(&g, &[0]);
        let bound = d0[n - 1] + d0[n / 2];
        assert!(trees[0].length <= bound);
    }

    #[test]
    fn equivalent_pins_reduce_length() {
        let g = grid_graph();
        let n = g.len();
        let d = dijkstra(&g, &[0]);
        let mut far = 0;
        for i in 0..n {
            if d[i] > d[far] && d[i] < i64::MAX {
                far = i;
            }
        }
        // Route 0 -> {far} vs 0 -> {far or 0-adjacent node}.
        let near = g.neighbors(0).first().map(|&(m, _)| m).expect("grid");
        let strict = enumerate_route_trees(&g, &[vec![0], vec![far]], 1, 2);
        let relaxed = enumerate_route_trees(&g, &[vec![0], vec![far, near]], 1, 2);
        assert!(relaxed[0].length <= strict[0].length);
        assert!(relaxed[0].length <= d[near]);
    }

    #[test]
    fn single_point_is_trivial() {
        let g = grid_graph();
        let trees = enumerate_route_trees(&g, &[vec![3]], 4, 4);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].length, 0);
        assert_eq!(trees[0].nodes, vec![3]);
    }

    #[test]
    fn alternatives_are_distinct_and_bounded() {
        let g = grid_graph();
        let n = g.len();
        let trees = enumerate_route_trees(&g, &[vec![0], vec![n - 1]], 20, 6);
        assert!(trees.len() <= 20);
        let set: std::collections::HashSet<&Vec<(usize, usize)>> =
            trees.iter().map(|t| &t.edges).collect();
        assert_eq!(set.len(), trees.len());
    }
}
