//! Channel definition: critical-region extraction (paper §4.1).
//!
//! Traditional routing channels (paper Fig. 7) may be bordered by many
//! cell edges, so no single parameter gives their width, which makes
//! congestion-driven spacing adjustments ripple. The paper's new channel
//! definition instead creates a *critical region* between **every** pair
//! of facing parallel cell edges such that (1) the edges' spans overlap,
//! bounding a rectangle of empty space whose extent is the common span,
//! and (2) no other cell edge intersects that rectangle. Unlike Chen's
//! bottlenecks, overlapping critical regions are kept, not discarded.

use twmc_geom::{boundary_edges, Point, Rect, Side, Span, TileSet};

/// A cell (or core-boundary) edge in absolute coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Owning cell index, or `None` for the core boundary.
    pub cell: Option<usize>,
    /// Which way the edge faces.
    pub side: Side,
    /// Fixed-axis position.
    pub coord: i64,
    /// Extent along the edge.
    pub span: Span,
}

/// Which way a channel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Bounded left/right by two vertical edges; the channel extends
    /// vertically, its width is the horizontal separation.
    Vertical,
    /// Bounded below/above by two horizontal edges.
    Horizontal,
}

/// One critical region: a rectangle of empty space bounded by exactly two
/// facing cell (or core-boundary) edges.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalRegion {
    /// The empty-space rectangle.
    pub rect: Rect,
    /// Channel direction.
    pub kind: ChannelKind,
    /// The low-side bounding edge (left or bottom).
    pub lo_edge: EdgeRef,
    /// The high-side bounding edge (right or top).
    pub hi_edge: EdgeRef,
}

impl CriticalRegion {
    /// The separation between the two defining edges — the channel
    /// thickness/capacity dimension.
    pub fn separation(&self) -> i64 {
        match self.kind {
            ChannelKind::Vertical => self.rect.width(),
            ChannelKind::Horizontal => self.rect.height(),
        }
    }

    /// The common span of the two edges — the channel length.
    pub fn extent(&self) -> i64 {
        match self.kind {
            ChannelKind::Vertical => self.rect.height(),
            ChannelKind::Horizontal => self.rect.width(),
        }
    }
}

/// A placed circuit, as the channel definer sees it.
#[derive(Debug, Clone)]
pub struct PlacedGeometry {
    /// Placed cell geometries: tile set plus absolute lower-left corner.
    pub cells: Vec<(TileSet, Point)>,
    /// The core boundary.
    pub core: Rect,
}

impl PlacedGeometry {
    /// All boundary edges in absolute coordinates: every placed cell's
    /// exposed edges plus the four inward-facing core-boundary edges.
    pub fn all_edges(&self) -> Vec<EdgeRef> {
        let mut out = Vec::new();
        for (i, (tiles, at)) in self.cells.iter().enumerate() {
            for e in boundary_edges(tiles) {
                let (coord, span) = if e.side.is_vertical() {
                    (e.coord + at.x, e.span.shift(at.y))
                } else {
                    (e.coord + at.y, e.span.shift(at.x))
                };
                out.push(EdgeRef {
                    cell: Some(i),
                    side: e.side,
                    coord,
                    span,
                });
            }
        }
        let core = self.core;
        // Core borders face inward.
        out.push(EdgeRef {
            cell: None,
            side: Side::Right,
            coord: core.lo().x,
            span: core.y_span(),
        });
        out.push(EdgeRef {
            cell: None,
            side: Side::Left,
            coord: core.hi().x,
            span: core.y_span(),
        });
        out.push(EdgeRef {
            cell: None,
            side: Side::Top,
            coord: core.lo().y,
            span: core.x_span(),
        });
        out.push(EdgeRef {
            cell: None,
            side: Side::Bottom,
            coord: core.hi().y,
            span: core.x_span(),
        });
        out
    }

    /// Whether the open interior of `rect` is free of cell area.
    pub fn is_empty_region(&self, rect: Rect) -> bool {
        for (tiles, at) in &self.cells {
            if tiles.bbox().translate(*at).overlap_area(rect) == 0 {
                continue;
            }
            for t in tiles.tiles() {
                if t.translate(*at).overlap_area(rect) > 0 {
                    return false;
                }
            }
        }
        true
    }

    /// The along-channel spans blocked by cell area inside the open strip
    /// between two facing edges. For a vertical strip the open range is in
    /// x and the returned spans are in y (and vice versa).
    fn blocking_spans(&self, open_lo: i64, open_hi: i64, vertical: bool) -> Vec<Span> {
        let mut out = Vec::new();
        for (tiles, at) in &self.cells {
            for t in tiles.tiles() {
                let t = t.translate(*at);
                let (across, along) = if vertical {
                    (t.x_span(), t.y_span())
                } else {
                    (t.y_span(), t.x_span())
                };
                // Open-interval overlap with the strip.
                if across.lo() < open_hi && across.hi() > open_lo {
                    out.push(along);
                }
            }
        }
        out
    }
}

/// Extracts every critical region of the placement.
///
/// For each pair of facing parallel edges whose spans overlap, the strip
/// between them is clipped by any intruding third cell, and one region is
/// emitted per maximal *empty* sub-span (a fully empty strip yields the
/// paper's single full-common-span region; a fully blocked pair yields
/// none). Regions of zero separation (abutting cells) or zero extent
/// (corner touching) are skipped.
pub fn critical_regions(geometry: &PlacedGeometry) -> Vec<CriticalRegion> {
    let edges = geometry.all_edges();
    let mut out = Vec::new();

    // Vertical channels: right-facing edge at x1 paired with left-facing
    // edge at x2 > x1.
    let right_facing: Vec<&EdgeRef> = edges.iter().filter(|e| e.side == Side::Right).collect();
    let left_facing: Vec<&EdgeRef> = edges.iter().filter(|e| e.side == Side::Left).collect();
    for &e1 in &right_facing {
        for &e2 in &left_facing {
            if e2.coord <= e1.coord {
                continue;
            }
            let Some(common) = e1.span.intersect(e2.span) else {
                continue;
            };
            if common.is_empty() {
                continue;
            }
            let blocked = geometry.blocking_spans(e1.coord, e2.coord, true);
            for free in twmc_geom::span_difference(common, &blocked) {
                if free.is_empty() {
                    continue;
                }
                out.push(CriticalRegion {
                    rect: Rect::from_spans(Span::new(e1.coord, e2.coord), free),
                    kind: ChannelKind::Vertical,
                    lo_edge: *e1,
                    hi_edge: *e2,
                });
            }
        }
    }

    // Horizontal channels: top-facing edge at y1 with bottom-facing at
    // y2 > y1.
    let top_facing: Vec<&EdgeRef> = edges.iter().filter(|e| e.side == Side::Top).collect();
    let bottom_facing: Vec<&EdgeRef> = edges.iter().filter(|e| e.side == Side::Bottom).collect();
    for &e1 in &top_facing {
        for &e2 in &bottom_facing {
            if e2.coord <= e1.coord {
                continue;
            }
            let Some(common) = e1.span.intersect(e2.span) else {
                continue;
            };
            if common.is_empty() {
                continue;
            }
            let blocked = geometry.blocking_spans(e1.coord, e2.coord, false);
            for free in twmc_geom::span_difference(common, &blocked) {
                if free.is_empty() {
                    continue;
                }
                out.push(CriticalRegion {
                    rect: Rect::from_spans(free, Span::new(e1.coord, e2.coord)),
                    kind: ChannelKind::Horizontal,
                    lo_edge: *e1,
                    hi_edge: *e2,
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(w: i64, h: i64, x: i64, y: i64) -> (TileSet, Point) {
        (TileSet::rect(w, h), Point::new(x, y))
    }

    /// Two cells side by side inside a core.
    fn two_cell_geometry() -> PlacedGeometry {
        PlacedGeometry {
            cells: vec![cell(10, 10, -20, -5), cell(10, 10, 10, -5)],
            core: Rect::from_wh(-30, -15, 60, 30),
        }
    }

    #[test]
    fn channel_between_facing_cells() {
        let g = two_cell_geometry();
        let regions = critical_regions(&g);
        // The region between the two cells: x in [-10, 10], y in [-5, 5].
        let between = regions
            .iter()
            .find(|r| r.kind == ChannelKind::Vertical && r.rect == Rect::from_wh(-10, -5, 20, 10))
            .expect("central channel exists");
        assert_eq!(between.separation(), 20);
        assert_eq!(between.extent(), 10);
        assert_eq!(between.lo_edge.cell, Some(0));
        assert_eq!(between.hi_edge.cell, Some(1));
    }

    #[test]
    fn channels_to_core_boundary() {
        let g = two_cell_geometry();
        let regions = critical_regions(&g);
        // Cell 0's left edge to the core's left border.
        assert!(regions.iter().any(|r| {
            r.kind == ChannelKind::Vertical
                && r.lo_edge.cell.is_none()
                && r.hi_edge.cell == Some(0)
                && r.rect == Rect::from_wh(-30, -5, 10, 10)
        }));
        // Horizontal channels from cell tops to the core top.
        assert!(regions.iter().any(|r| {
            r.kind == ChannelKind::Horizontal
                && r.lo_edge.cell == Some(0)
                && r.hi_edge.cell.is_none()
        }));
    }

    #[test]
    fn blocked_pairs_are_rejected() {
        // Three cells in a row: no channel between the outer two, because
        // the middle cell intersects the region.
        let g = PlacedGeometry {
            cells: vec![
                cell(10, 10, -25, -5),
                cell(10, 10, -5, -5),
                cell(10, 10, 15, -5),
            ],
            core: Rect::from_wh(-40, -20, 80, 40),
        };
        let regions = critical_regions(&g);
        assert!(
            !regions
                .iter()
                .any(|r| { r.lo_edge.cell == Some(0) && r.hi_edge.cell == Some(2) }),
            "outer pair must be blocked by the middle cell"
        );
        // But adjacent pairs have channels.
        assert!(regions
            .iter()
            .any(|r| r.lo_edge.cell == Some(0) && r.hi_edge.cell == Some(1)));
        assert!(regions
            .iter()
            .any(|r| r.lo_edge.cell == Some(1) && r.hi_edge.cell == Some(2)));
    }

    #[test]
    fn abutting_cells_produce_no_channel() {
        let g = PlacedGeometry {
            cells: vec![cell(10, 10, 0, 0), cell(10, 10, 10, 0)],
            core: Rect::from_wh(-5, -5, 30, 20),
        };
        let regions = critical_regions(&g);
        assert!(!regions
            .iter()
            .any(|r| r.lo_edge.cell == Some(0) && r.hi_edge.cell == Some(1)));
    }

    #[test]
    fn overlapping_critical_regions_are_kept() {
        // Paper §4.1: a region created by a vertical edge pair may
        // overlap one created by a horizontal pair (Fig. 9 upper-left
        // corner); Chen's method drops one, ours keeps both. An empty
        // core corner southwest of two cells produces exactly that: the
        // corner square is bounded both by (core-left, cell-A-left) and
        // by (core-bottom, cell-B-bottom).
        let g = PlacedGeometry {
            cells: vec![
                cell(10, 10, 10, 0), // A: east, against the bottom
                cell(10, 10, 0, 10), // B: north, against the left
            ],
            core: Rect::from_wh(0, 0, 20, 20),
        };
        let regions = critical_regions(&g);
        let corner = Rect::from_wh(0, 0, 10, 10);
        let vert: Vec<_> = regions
            .iter()
            .filter(|r| r.kind == ChannelKind::Vertical && r.rect == corner)
            .collect();
        let horiz: Vec<_> = regions
            .iter()
            .filter(|r| r.kind == ChannelKind::Horizontal && r.rect == corner)
            .collect();
        assert_eq!(vert.len(), 1, "{regions:?}");
        assert_eq!(horiz.len(), 1);
        // The vertical one is core-border to cell A; the horizontal one
        // core-border to cell B.
        assert_eq!(vert[0].lo_edge.cell, None);
        assert_eq!(vert[0].hi_edge.cell, Some(0));
        assert_eq!(horiz[0].lo_edge.cell, None);
        assert_eq!(horiz[0].hi_edge.cell, Some(1));
        // And they overlap: both are kept.
        assert!(vert[0].rect.overlap_area(horiz[0].rect) > 0);
    }

    #[test]
    fn rectilinear_cell_notch_channel() {
        // An L-shaped cell with a small cell tucked near the notch.
        let l = TileSet::new(vec![Rect::from_wh(0, 0, 12, 4), Rect::from_wh(0, 4, 4, 8)]).unwrap();
        let g = PlacedGeometry {
            cells: vec![(l, Point::new(0, 0)), cell(4, 4, 8, 8)],
            core: Rect::from_wh(-2, -2, 20, 20),
        };
        let regions = critical_regions(&g);
        // Channel between the L's notch right edge (x=4) and the small
        // cell's left edge (x=8), over the common y span [8, 12].
        assert!(regions
            .iter()
            .any(|r| { r.kind == ChannelKind::Vertical && r.rect == Rect::from_wh(4, 8, 4, 4) }));
        // Horizontal channel between the L's notch top (y=4) and the
        // small cell's bottom (y=8) over x in [8, 12].
        assert!(regions
            .iter()
            .any(|r| { r.kind == ChannelKind::Horizontal && r.rect == Rect::from_wh(8, 4, 4, 4) }));
    }

    #[test]
    fn empty_region_checker() {
        let g = two_cell_geometry();
        assert!(g.is_empty_region(Rect::from_wh(-10, -5, 20, 10)));
        assert!(!g.is_empty_region(Rect::from_wh(-21, -5, 5, 5)));
    }
}
