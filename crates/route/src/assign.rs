//! Phase two of the global router: route selection by random interchange
//! (paper §4.2.2).
//!
//! Phase one stored up to `M` alternative routes per net; phase two picks
//! one per net, minimizing total length `L` (eq. 23) subject to the
//! channel-edge capacity constraints, by driving the overflow
//! `X = Σ max(0, D_j − C_j)` (eq. 24) to zero. Starting from every net on
//! its shortest route, the interchange repeatedly picks a random
//! over-capacity edge, a random net through it, and a random alternative
//! with `ΔX ≤ 0`, accepting when `ΔX < 0`, or `ΔX = 0 ∧ ΔL ≤ 0`. This
//! avoids the classical net-routing-order dependence problem.

use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;

use crate::{ChannelGraph, RouteTree};

/// A route tree references a node pair with no edge in the channel graph:
/// the alternatives were enumerated against a different (since
/// regenerated) graph. Re-enumerate against the current graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleRouteError {
    /// The offending net (index into the alternatives).
    pub net: usize,
    /// The alternative whose tree is stale.
    pub alternative: usize,
    /// The node pair with no corresponding graph edge.
    pub nodes: (usize, usize),
}

impl fmt::Display for StaleRouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "net {} alternative {} crosses nodes {}–{} with no edge in the \
             channel graph (stale route from a regenerated graph?)",
            self.net, self.alternative, self.nodes.0, self.nodes.1
        )
    }
}

impl std::error::Error for StaleRouteError {}

/// The outcome of route selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Chosen alternative index per net (into the per-net alternatives).
    pub choice: Vec<usize>,
    /// Total routed length `L`.
    pub total_length: i64,
    /// Remaining overflow `X` (0 when all capacities are met).
    pub overflow: i64,
    /// Overflow `X` at the interchange's starting point (every net on
    /// its shortest route). The accept rule only ever takes `ΔX ≤ 0`
    /// moves, so `overflow ≤ overflow_start` always holds.
    pub overflow_start: i64,
    /// Per-graph-edge usage `D_j`.
    pub edge_usage: Vec<u32>,
    /// Interchange attempts performed.
    pub attempts: usize,
    /// Accepted interchanges (nets ripped up and moved to an
    /// alternative route).
    pub reassignments: usize,
}

/// Resolves one tree segment to its graph edge, or the typed error.
fn edge_of(
    graph: &ChannelGraph,
    net: usize,
    alternative: usize,
    a: usize,
    b: usize,
) -> Result<usize, StaleRouteError> {
    graph.edge_between(a, b).ok_or(StaleRouteError {
        net,
        alternative,
        nodes: (a.min(b), a.max(b)),
    })
}

fn usage_of(
    graph: &ChannelGraph,
    alternatives: &[Vec<RouteTree>],
    choice: &[usize],
) -> Result<Vec<u32>, StaleRouteError> {
    let mut usage = vec![0u32; graph.edges.len()];
    for (net, &k) in choice.iter().enumerate() {
        if alternatives[net].is_empty() {
            continue;
        }
        for &(a, b) in &alternatives[net][k].edges {
            usage[edge_of(graph, net, k, a, b)?] += 1;
        }
    }
    Ok(usage)
}

fn overflow_of(graph: &ChannelGraph, usage: &[u32]) -> i64 {
    usage
        .iter()
        .zip(&graph.edges)
        .map(|(&d, e)| (d as i64 - e.capacity as i64).max(0))
        .sum()
}

fn length_of(alternatives: &[Vec<RouteTree>], choice: &[usize]) -> i64 {
    choice
        .iter()
        .enumerate()
        .filter(|(net, _)| !alternatives[*net].is_empty())
        .map(|(net, &k)| alternatives[net][k].length)
        .sum()
}

/// Selects one route per net from the phase-one alternatives.
///
/// `alternatives[net]` must be sorted by length (index 0 = shortest), as
/// produced by [`crate::enumerate_route_trees`]; empty lists (unroutable
/// nets) are skipped. The stall bound is `M · N` new-state attempts
/// without change, per the paper's stopping criterion.
///
/// # Errors
///
/// Returns [`StaleRouteError`] when any alternative crosses a node pair
/// absent from `graph` — the trees were enumerated against a different
/// (regenerated) channel graph.
pub fn assign_routes(
    graph: &ChannelGraph,
    alternatives: &[Vec<RouteTree>],
    rng: &mut StdRng,
) -> Result<Assignment, StaleRouteError> {
    let n_nets = alternatives.len();
    let mut choice = vec![0usize; n_nets];
    let mut usage = usage_of(graph, alternatives, &choice)?;
    let mut x = overflow_of(graph, &usage);
    let overflow_start = x;
    let mut l = length_of(alternatives, &choice);
    let m_max = alternatives.iter().map(|a| a.len()).max().unwrap_or(1);
    let stall_limit = (m_max * n_nets).max(64);

    let mut attempts = 0usize;
    let mut reassignments = 0usize;
    let mut stall = 0usize;
    while x > 0 && stall < stall_limit {
        attempts += 1;
        stall += 1;
        // Random over-capacity edge.
        let overfull: Vec<usize> = usage
            .iter()
            .zip(&graph.edges)
            .enumerate()
            .filter(|(_, (&d, e))| d > e.capacity)
            .map(|(i, _)| i)
            .collect();
        let Some(&edge) = pick(&overfull, rng) else {
            break;
        };
        // Random net with a segment on that edge.
        let (ea, eb) = (graph.edges[edge].a, graph.edges[edge].b);
        let key = (ea.min(eb), ea.max(eb));
        let users: Vec<usize> = (0..n_nets)
            .filter(|&net| {
                !alternatives[net].is_empty()
                    && alternatives[net][choice[net]]
                        .edges
                        .binary_search(&key)
                        .is_ok()
            })
            .collect();
        let Some(&net) = pick(&users, rng) else {
            continue;
        };
        // Alternatives with ΔX <= 0.
        let cur = choice[net];
        let mut candidates: Vec<(usize, i64, i64)> = Vec::new();
        for k in 0..alternatives[net].len() {
            if k == cur {
                continue;
            }
            let (dx, dl) = delta(graph, alternatives, &usage, net, cur, k)?;
            if dx <= 0 {
                candidates.push((k, dx, dl));
            }
        }
        let Some(&(k, dx, dl)) = pick(&candidates, rng) else {
            continue;
        };
        let accept = dx < 0 || dl <= 0;
        if accept && (dx != 0 || dl != 0) {
            apply(graph, alternatives, &mut usage, net, cur, k)?;
            choice[net] = k;
            x += dx;
            l += dl;
            reassignments += 1;
            stall = 0;
        }
    }

    debug_assert_eq!(x, overflow_of(graph, &usage));
    debug_assert_eq!(l, length_of(alternatives, &choice));
    Ok(Assignment {
        choice,
        total_length: l,
        overflow: x,
        overflow_start,
        edge_usage: usage,
        attempts,
        reassignments,
    })
}

fn pick<'a, T>(items: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.random_range(0..items.len())])
    }
}

/// `(ΔX, ΔL)` of switching `net` from alternative `cur` to `k`.
fn delta(
    graph: &ChannelGraph,
    alternatives: &[Vec<RouteTree>],
    usage: &[u32],
    net: usize,
    cur: usize,
    k: usize,
) -> Result<(i64, i64), StaleRouteError> {
    let mut delta_x = 0i64;
    let over = |edge: usize, d: i64| -> i64 { (d - graph.edges[edge].capacity as i64).max(0) };
    // Removing the current tree then adding the new one; handle shared
    // edges by net change per edge.
    let mut per_edge: std::collections::HashMap<usize, i64> = std::collections::HashMap::new();
    for &(a, b) in &alternatives[net][cur].edges {
        *per_edge.entry(edge_of(graph, net, cur, a, b)?).or_insert(0) -= 1;
    }
    for &(a, b) in &alternatives[net][k].edges {
        *per_edge.entry(edge_of(graph, net, k, a, b)?).or_insert(0) += 1;
    }
    for (&e, &change) in &per_edge {
        if change == 0 {
            continue;
        }
        let before = usage[e] as i64;
        delta_x += over(e, before + change) - over(e, before);
    }
    let delta_l = alternatives[net][k].length - alternatives[net][cur].length;
    Ok((delta_x, delta_l))
}

fn apply(
    graph: &ChannelGraph,
    alternatives: &[Vec<RouteTree>],
    usage: &mut [u32],
    net: usize,
    cur: usize,
    k: usize,
) -> Result<(), StaleRouteError> {
    for &(a, b) in &alternatives[net][cur].edges {
        usage[edge_of(graph, net, cur, a, b)?] -= 1;
    }
    for &(a, b) in &alternatives[net][k].edges {
        usage[edge_of(graph, net, k, a, b)?] += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_channel_graph, enumerate_route_trees, PlacedGeometry};
    use rand::SeedableRng;
    use twmc_geom::{Point, Rect, TileSet};

    fn grid_graph() -> ChannelGraph {
        let mut cells = Vec::new();
        for gy in 0..3 {
            for gx in 0..3 {
                cells.push((
                    TileSet::rect(10, 10),
                    Point::new(gx * 20 - 25, gy * 20 - 25),
                ));
            }
        }
        build_channel_graph(
            &PlacedGeometry {
                cells,
                core: Rect::from_wh(-30, -30, 60, 60),
            },
            2.0,
        )
    }

    fn nets_for(g: &ChannelGraph, n: usize, seed: u64) -> Vec<Vec<RouteTree>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let s = rng.random_range(0..g.len());
                let mut t = rng.random_range(0..g.len());
                if t == s {
                    t = (t + 1) % g.len();
                }
                enumerate_route_trees(g, &[vec![s], vec![t]], 8, 4)
            })
            .collect()
    }

    #[test]
    fn no_congestion_keeps_shortest_routes() {
        let g = grid_graph();
        let alts = nets_for(&g, 3, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let a = assign_routes(&g, &alts, &mut rng).expect("fresh routes");
        // Few nets on a capacious grid: no overflow and every net keeps
        // its k=1 (index 0) shortest route; the algorithm terminates
        // immediately.
        assert_eq!(a.overflow, 0);
        assert!(a.choice.iter().all(|&k| k == 0));
        assert_eq!(a.attempts, 0);
    }

    #[test]
    fn congestion_is_traded_for_length() {
        let g = grid_graph();
        // Build a capacity-1 version of the same graph to force conflicts.
        let mut tight = g.clone();
        for e in &mut tight.edges {
            e.capacity = 1;
        }
        let alts = nets_for(&tight, 12, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let a = assign_routes(&tight, &alts, &mut rng).expect("fresh routes");
        let shortest_l: i64 = alts
            .iter()
            .filter(|a| !a.is_empty())
            .map(|a| a[0].length)
            .sum();
        // Either overflow is fully resolved (usually) or at least reduced
        // versus the all-shortest start.
        let start_usage = usage_of(&tight, &alts, &vec![0; alts.len()]).expect("fresh routes");
        let start_x = overflow_of(&tight, &start_usage);
        assert!(start_x > 0, "test premise: congestion exists");
        assert!(
            a.overflow < start_x,
            "overflow {} not reduced from {start_x}",
            a.overflow
        );
        // Length can only grow relative to all-shortest.
        assert!(a.total_length >= shortest_l);
        // Bookkeeping consistent.
        assert_eq!(
            a.edge_usage,
            usage_of(&tight, &alts, &a.choice).expect("fresh routes")
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid_graph();
        let mut tight = g.clone();
        for e in &mut tight.edges {
            e.capacity = 1;
        }
        let alts = nets_for(&tight, 10, 7);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            assign_routes(&tight, &alts, &mut rng)
                .expect("fresh routes")
                .choice
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn empty_alternatives_are_skipped() {
        let g = grid_graph();
        let alts = vec![Vec::new(), nets_for(&g, 1, 9).remove(0)];
        let mut rng = StdRng::seed_from_u64(1);
        let a = assign_routes(&g, &alts, &mut rng).expect("fresh routes");
        assert_eq!(a.overflow, 0);
        assert_eq!(a.choice.len(), 2);
    }

    #[test]
    fn stale_route_is_a_typed_error() {
        let g = grid_graph();
        // A tree crossing a node pair with no edge: last–first node of a
        // 3x3 grid's channel graph are far apart, so no edge joins them.
        let (a, b) = (0, g.len() - 1);
        assert!(g.edge_between(a, b).is_none(), "test premise: not adjacent");
        let stale = RouteTree {
            nodes: vec![a, b],
            edges: vec![(a.min(b), a.max(b))],
            length: 1,
        };
        let alts = vec![vec![stale]];
        let mut rng = StdRng::seed_from_u64(1);
        let err = assign_routes(&g, &alts, &mut rng).expect_err("stale route must error");
        assert_eq!(err.net, 0);
        assert_eq!(err.alternative, 0);
        assert_eq!(err.nodes, (a.min(b), a.max(b)));
        assert!(err.to_string().contains("stale route"));
    }
}
