//! The event schema: everything the pipeline can report, as plain
//! structs with a stable JSON shape.
//!
//! Every event serializes to a JSON object whose first key is `"kind"`
//! (the snake_case tag listed in [`EVENT_KINDS`]) followed by the
//! payload fields. The schema is append-only by convention: consumers
//! must tolerate unknown keys, producers must not rename existing ones.

use serde::{Serialize, Value};

/// Identification of which annealing run a [`PlaceTemp`] stream belongs
/// to — stage 1, a stage-2 refinement iteration, a tempering rung, …
///
/// Threaded (by value) through the placement annealing entry points so
/// one shared loop can label its stream correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScope {
    /// Pipeline phase: `"stage1"`, `"stage2"`, `"tempering"`, `"quench"`.
    pub phase: &'static str,
    /// Refinement iteration (stage 2) or round base (tempering); 0 otherwise.
    pub iteration: u64,
    /// Replica or rung index; -1 for single-replica runs.
    pub replica: i64,
}

impl RunScope {
    /// The plain stage-1 scope.
    pub const STAGE1: RunScope = RunScope {
        phase: "stage1",
        iteration: 0,
        replica: -1,
    };

    /// Scope of stage-2 refinement iteration `k`.
    pub fn stage2(k: usize) -> RunScope {
        RunScope {
            phase: "stage2",
            iteration: k as u64,
            replica: -1,
        }
    }

    /// Same scope tagged with a replica index.
    pub fn with_replica(self, replica: usize) -> RunScope {
        RunScope {
            replica: replica as i64,
            ..self
        }
    }

    /// The trace lane this scope's spans belong on: `replica<k>` for
    /// replica/rung runs, `main` otherwise (one lane per writer
    /// thread; single-replica stages all run on the caller's thread).
    pub fn lane_name(&self) -> String {
        if self.replica >= 0 {
            format!("replica{}", self.replica)
        } else {
            "main".to_owned()
        }
    }
}

impl Default for RunScope {
    fn default() -> Self {
        RunScope::STAGE1
    }
}

/// Start of a pipeline run: the circuit and orchestration shape.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunStart {
    /// Master RNG seed.
    pub seed: u64,
    /// Cell count.
    pub cells: usize,
    /// Net count.
    pub nets: usize,
    /// Pin count.
    pub pins: usize,
    /// Stage-1 replica count (1 = classic single run).
    pub replicas: usize,
    /// Orchestration strategy (`"multistart"`, `"tempering"`, `"single"`).
    pub strategy: &'static str,
}

/// One temperature step of the *generic* annealing engine
/// ([`twmc_anneal::anneal_with`]) — problems other than placement.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AnnealTemp {
    /// Temperature step index (0-based).
    pub step: usize,
    /// Temperature of the inner loop.
    pub temperature: f64,
    /// Temperature scale factor `S_T`.
    pub s_t: f64,
    /// Range-limiter window span `W_x(T)`.
    pub window_x: f64,
    /// Range-limiter window span `W_y(T)`.
    pub window_y: f64,
    /// Inner-loop length `A = A_c · N_c` (eq. 17).
    pub inner: usize,
    /// New-state attempts made this step.
    pub attempts: usize,
    /// Attempts accepted.
    pub accepts: usize,
    /// Cost after the inner loop.
    pub cost: f64,
}

/// The placement cost decomposition (paper eqs. 6–11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CostBreakdown {
    /// Total cost `C = C₁ + p₂·C₂ + C₃`.
    pub total: f64,
    /// `C₁`, the TEIC (eq. 6).
    pub c1: f64,
    /// Raw overlap area (the eq. 7 sum before `p₂`).
    pub overlap: i64,
    /// Weighted overlap penalty `p₂·C₂`.
    pub overlap_penalty: f64,
    /// `C₃`, the pin-site penalty (eq. 11).
    pub c3: f64,
}

/// Attempt/accept counters of one move class over one inner loop.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClassCount {
    /// Move class name (`"displacements"`, `"interchanges"`, …).
    pub class: &'static str,
    /// Attempts this step.
    pub attempts: usize,
    /// Acceptances this step.
    pub accepts: usize,
}

/// One temperature step of a placement annealing run: the full
/// controller state the paper's §3.3 feedback mechanisms act on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlaceTemp {
    /// Pipeline phase (see [`RunScope::phase`]).
    pub phase: &'static str,
    /// Refinement iteration / round base from the scope.
    pub iteration: u64,
    /// Replica or rung index; -1 for single-replica runs.
    pub replica: i64,
    /// Temperature step index within this run (0-based).
    pub step: usize,
    /// Temperature of the inner loop.
    pub temperature: f64,
    /// Temperature scale factor `S_T` (eq. 20).
    pub s_t: f64,
    /// Range-limiter window span `W_x(T)` (eq. 12).
    pub window_x: f64,
    /// Range-limiter window span `W_y(T)` (eq. 13).
    pub window_y: f64,
    /// Inner-loop length `A = A_c · N_c` (eq. 17).
    pub inner: usize,
    /// Move attempts this step (cascade retries included).
    pub attempts: usize,
    /// Moves accepted this step.
    pub accepts: usize,
    /// Cost decomposition after the inner loop.
    pub cost: CostBreakdown,
    /// TEIL after the inner loop.
    pub teil: f64,
    /// Cumulative full spatial-index rebuilds on this state.
    pub index_rebuilds: u64,
    /// Cumulative incremental spatial-index updates on this state.
    pub index_updates: u64,
    /// Per-move-class attempt/accept counts for this step.
    pub classes: Vec<ClassCount>,
}

/// Wall-clock span of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageSpan {
    /// Stage name: `"stage1"`, `"channel_definition"`, `"global_routing"`,
    /// `"refine_anneal"`, `"final_routing"`, `"finalize"`.
    pub stage: &'static str,
    /// Refinement iteration the stage belongs to (0 outside stage 2).
    pub iteration: u64,
    /// Wall-clock duration in microseconds.
    pub wall_us: u64,
}

/// Final statistics of one finished replica (multi-start) or rung
/// (tempering).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplicaSummary {
    /// Orchestration phase (`"multistart"` or `"tempering"`).
    pub phase: &'static str,
    /// Replica / rung index.
    pub replica: usize,
    /// Derived RNG seed the replica's stream started from.
    pub seed: u64,
    /// Pinned rung temperature (tempering only).
    pub rung_temperature: Option<f64>,
    /// Final TEIL (before any shared quench).
    pub teil: f64,
    /// Final total cost.
    pub cost: f64,
    /// Move attempts made.
    pub attempts: usize,
    /// Moves accepted.
    pub accepts: usize,
}

/// One replica-exchange attempt between adjacent tempering rungs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Swap {
    /// Round the sweep ran after (0-based).
    pub round: u64,
    /// Hotter rung index.
    pub lower: usize,
    /// Colder rung index (`lower + 1`).
    pub upper: usize,
    /// Temperature of the hotter rung.
    pub t_lower: f64,
    /// Temperature of the colder rung.
    pub t_upper: f64,
    /// Temperature scale factor `S_T`, so analyzers can place the pair
    /// on the paper's scaled-temperature axis (`T / S_T`) and separate
    /// hot-regime free swaps from the controlled middle regime.
    pub s_t: f64,
    /// Whether the Metropolis exchange rule accepted the swap.
    pub accepted: bool,
}

/// One global-routing execution (stage-2 refinement iteration, the
/// closing route of stage 2, or a finalize pass): the phase-2 route
/// selection's health signals (paper §4.2.2).
///
/// `overflow` is the residual capacity overflow `X = Σ max(0, D_j − C_j)`
/// (eq. 24) after the random-interchange selection; `overflow_start` is
/// the same sum with every net on its shortest route, so
/// `overflow ≤ overflow_start` always (the interchange never accepts a
/// `ΔX > 0` move). `util_hist` buckets every channel edge by its
/// utilization `D_j / C_j`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RouteIter {
    /// Routing phase: `"stage2"`, `"final"`, `"finalize"`.
    pub phase: &'static str,
    /// Refinement iteration the route belongs to (0 outside stage 2).
    pub iteration: u64,
    /// Nets presented to the router.
    pub nets: usize,
    /// Nets the router could not route.
    pub unrouted: usize,
    /// Total phase-1 alternatives enumerated (Σ per-net `M`).
    pub alts_total: usize,
    /// Largest per-net alternative count (≤ the configured `M`).
    pub alts_max: usize,
    /// Overflow `X` with every net on its shortest route (interchange
    /// starting point).
    pub overflow_start: i64,
    /// Residual overflow `X` after route selection (eq. 24).
    pub overflow: i64,
    /// Total routed length `L` (eq. 23).
    pub total_length: i64,
    /// Interchange (rip-up) attempts performed by phase 2.
    pub attempts: usize,
    /// Accepted reassignments (nets actually ripped up and re-routed).
    pub reassignments: usize,
    /// Σ of per-edge usages `D_j` — equals the summed edge counts of the
    /// chosen route trees.
    pub usage_total: u64,
    /// Channel-edge utilization histogram: edges with `D_j = 0`,
    /// `0 < D/C ≤ ½`, `½ < D/C ≤ 9/10`, `9/10 < D/C ≤ 1`, `D/C > 1`.
    pub util_hist: [u64; 5],
}

/// A replica whose worker panicked; the orchestrator degraded instead
/// of aborting (the replica is dropped from best-of selection and, in
/// tempering, from swap pairing).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplicaFailed {
    /// Orchestration phase (`"multistart"` or `"tempering"`).
    pub phase: &'static str,
    /// Replica / rung index that failed.
    pub replica: usize,
    /// Temperature round the failure surfaced in.
    pub round: u64,
    /// Panic payload (or a placeholder when it was not a string).
    pub error: String,
}

/// A run cut short by a signal or a budget: best-so-far results at the
/// interruption point. Unlike [`RunEnd`], the stream may legally stop
/// right after this event (the continuation lives in a checkpoint).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunInterrupted {
    /// Why the run stopped: `"signal"`, `"wall_clock"`, `"move_budget"`.
    pub reason: &'static str,
    /// Pipeline stage the interrupt landed in (`"stage1"`, `"stage2"`).
    pub stage: &'static str,
    /// Best-so-far TEIL at the interruption point.
    pub teil: f64,
    /// Best-so-far total cost at the interruption point.
    pub cost: f64,
    /// Wall-clock microseconds spent before stopping.
    pub wall_us: u64,
}

/// End of a pipeline run: the headline results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunEnd {
    /// Final total estimated interconnect length.
    pub teil: f64,
    /// Final chip width.
    pub chip_width: i64,
    /// Final chip height.
    pub chip_height: i64,
    /// Final globally-routed total length.
    pub routed_length: i64,
    /// Wall-clock duration of the whole run in microseconds.
    pub wall_us: u64,
}

/// A telemetry event: the tagged union of everything the pipeline emits.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Run header.
    RunStart(RunStart),
    /// Generic-engine temperature step.
    AnnealTemp(AnnealTemp),
    /// Placement temperature step.
    PlaceTemp(PlaceTemp),
    /// Pipeline stage wall-clock span.
    StageSpan(StageSpan),
    /// Global-routing execution record.
    RouteIter(RouteIter),
    /// Finished replica statistics.
    ReplicaSummary(ReplicaSummary),
    /// Replica-exchange attempt.
    Swap(Swap),
    /// Panicked replica, degraded around.
    ReplicaFailed(ReplicaFailed),
    /// Interrupted-run footer (checkpointed continuation).
    RunInterrupted(RunInterrupted),
    /// Run footer.
    RunEnd(RunEnd),
}

/// Every `kind` tag an event stream may contain, in schema order.
pub const EVENT_KINDS: [&str; 10] = [
    "run_start",
    "anneal_temp",
    "place_temp",
    "stage_span",
    "route_iter",
    "replica_summary",
    "swap",
    "replica_failed",
    "run_interrupted",
    "run_end",
];

impl Event {
    /// The event's `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart(_) => "run_start",
            Event::AnnealTemp(_) => "anneal_temp",
            Event::PlaceTemp(_) => "place_temp",
            Event::StageSpan(_) => "stage_span",
            Event::RouteIter(_) => "route_iter",
            Event::ReplicaSummary(_) => "replica_summary",
            Event::Swap(_) => "swap",
            Event::ReplicaFailed(_) => "replica_failed",
            Event::RunInterrupted(_) => "run_interrupted",
            Event::RunEnd(_) => "run_end",
        }
    }
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let payload = match self {
            Event::RunStart(p) => p.to_value(),
            Event::AnnealTemp(p) => p.to_value(),
            Event::PlaceTemp(p) => p.to_value(),
            Event::StageSpan(p) => p.to_value(),
            Event::RouteIter(p) => p.to_value(),
            Event::ReplicaSummary(p) => p.to_value(),
            Event::Swap(p) => p.to_value(),
            Event::ReplicaFailed(p) => p.to_value(),
            Event::RunInterrupted(p) => p.to_value(),
            Event::RunEnd(p) => p.to_value(),
        };
        match payload {
            Value::Object(mut entries) => {
                entries.insert(0, ("kind".to_owned(), Value::Str(self.kind().to_owned())));
                Value::Object(entries)
            }
            other => Value::Object(vec![
                ("kind".to_owned(), Value::Str(self.kind().to_owned())),
                ("payload".to_owned(), other),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tag_leads_the_object() {
        let ev = Event::StageSpan(StageSpan {
            stage: "stage1",
            iteration: 0,
            wall_us: 10,
        });
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.starts_with("{\"kind\":\"stage_span\""), "{json}");
        assert!(json.contains("\"wall_us\":10"), "{json}");
    }

    #[test]
    fn kinds_cover_every_variant() {
        let events = [
            Event::RunStart(RunStart {
                seed: 1,
                cells: 2,
                nets: 3,
                pins: 4,
                replicas: 1,
                strategy: "single",
            }),
            Event::AnnealTemp(AnnealTemp {
                step: 0,
                temperature: 1.0,
                s_t: 1.0,
                window_x: 1.0,
                window_y: 1.0,
                inner: 10,
                attempts: 10,
                accepts: 5,
                cost: 2.0,
            }),
            Event::PlaceTemp(PlaceTemp {
                phase: "stage1",
                iteration: 0,
                replica: -1,
                step: 0,
                temperature: 1.0,
                s_t: 1.0,
                window_x: 1.0,
                window_y: 1.0,
                inner: 10,
                attempts: 10,
                accepts: 5,
                cost: CostBreakdown {
                    total: 3.0,
                    c1: 1.0,
                    overlap: 1,
                    overlap_penalty: 1.0,
                    c3: 1.0,
                },
                teil: 1.0,
                index_rebuilds: 0,
                index_updates: 0,
                classes: vec![],
            }),
            Event::StageSpan(StageSpan {
                stage: "stage1",
                iteration: 0,
                wall_us: 1,
            }),
            Event::RouteIter(RouteIter {
                phase: "stage2",
                iteration: 0,
                nets: 4,
                unrouted: 0,
                alts_total: 16,
                alts_max: 6,
                overflow_start: 2,
                overflow: 0,
                total_length: 100,
                attempts: 5,
                reassignments: 2,
                usage_total: 12,
                util_hist: [3, 2, 1, 0, 0],
            }),
            Event::ReplicaSummary(ReplicaSummary {
                phase: "multistart",
                replica: 0,
                seed: 1,
                rung_temperature: None,
                teil: 1.0,
                cost: 1.0,
                attempts: 1,
                accepts: 1,
            }),
            Event::Swap(Swap {
                round: 0,
                lower: 0,
                upper: 1,
                t_lower: 2.0,
                t_upper: 1.0,
                s_t: 1.0,
                accepted: true,
            }),
            Event::ReplicaFailed(ReplicaFailed {
                phase: "multistart",
                replica: 1,
                round: 3,
                error: "boom".to_owned(),
            }),
            Event::RunInterrupted(RunInterrupted {
                reason: "signal",
                stage: "stage1",
                teil: 1.0,
                cost: 2.0,
                wall_us: 5,
            }),
            Event::RunEnd(RunEnd {
                teil: 1.0,
                chip_width: 1,
                chip_height: 1,
                routed_length: 1,
                wall_us: 1,
            }),
        ];
        let mut seen: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        seen.sort_unstable();
        let mut expect = EVENT_KINDS.to_vec();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn scope_constructors() {
        assert_eq!(RunScope::STAGE1.phase, "stage1");
        assert_eq!(RunScope::STAGE1.replica, -1);
        let s = RunScope::stage2(2).with_replica(3);
        assert_eq!(s.phase, "stage2");
        assert_eq!(s.iteration, 2);
        assert_eq!(s.replica, 3);
    }
}
