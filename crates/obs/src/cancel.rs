//! Cooperative cancellation: graceful interruption of long runs.
//!
//! A [`CancelToken`] bundles every way a run can be asked to stop early
//! — an explicit [`CancelToken::cancel`] call, a process signal flag
//! (SIGINT/SIGTERM, registered by the binary), a wall-clock deadline,
//! and a move-attempt budget. Producers check it at *temperature-step /
//! round boundaries only*, on the orchestrator thread, so a stop always
//! lands at a checkpointable state boundary and never perturbs results:
//! a run that is not stopped is bit-identical to one executed without a
//! token.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a run was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Explicit cancellation — a signal flag or [`CancelToken::cancel`].
    Interrupted,
    /// The `--max-wall-secs` deadline passed.
    WallClock,
    /// The `--max-moves` attempt budget is exhausted.
    MoveBudget,
}

impl StopReason {
    /// The stable string used in `run_interrupted` telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Interrupted => "signal",
            StopReason::WallClock => "wall_clock",
            StopReason::MoveBudget => "move_budget",
        }
    }
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    external: Option<&'static AtomicBool>,
    deadline: Option<Instant>,
    max_moves: Option<u64>,
    moves: AtomicU64,
}

/// A cloneable handle producers poll at loop boundaries.
///
/// The default token never fires; budgets and flags are opt-in.
///
/// # Examples
///
/// ```
/// use twmc_obs::{CancelToken, StopReason};
///
/// let token = CancelToken::new().with_max_moves(100);
/// token.add_moves(60);
/// assert_eq!(token.check(), None);
/// token.add_moves(40);
/// assert_eq!(token.check(), Some(StopReason::MoveBudget));
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token with no stop conditions armed.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                external: None,
                deadline: None,
                max_moves: None,
                moves: AtomicU64::new(0),
            }),
        }
    }

    fn rebuild(self, f: impl FnOnce(&mut Inner)) -> Self {
        let mut inner = Inner {
            flag: AtomicBool::new(self.inner.flag.load(Ordering::Relaxed)),
            external: self.inner.external,
            deadline: self.inner.deadline,
            max_moves: self.inner.max_moves,
            moves: AtomicU64::new(self.inner.moves.load(Ordering::Relaxed)),
        };
        f(&mut inner);
        CancelToken {
            inner: Arc::new(inner),
        }
    }

    /// Also stops when `flag` becomes `true` — the bridge from a signal
    /// handler, which can only flip a `static` atomic.
    pub fn with_signal_flag(self, flag: &'static AtomicBool) -> Self {
        self.rebuild(|i| i.external = Some(flag))
    }

    /// Also stops once `deadline` has passed.
    pub fn with_deadline(self, deadline: Instant) -> Self {
        self.rebuild(|i| i.deadline = Some(deadline))
    }

    /// Also stops once [`CancelToken::add_moves`] has accumulated
    /// `max_moves` attempts. Deterministic — the budget counts work, not
    /// time, so tests and CI can pin the exact stop point.
    pub fn with_max_moves(self, max_moves: u64) -> Self {
        self.rebuild(|i| i.max_moves = Some(max_moves))
    }

    /// Requests a stop at the next boundary check.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Accumulates move attempts toward the move budget.
    pub fn add_moves(&self, n: u64) {
        self.inner.moves.fetch_add(n, Ordering::Relaxed);
    }

    /// Move attempts accumulated so far.
    pub fn moves(&self) -> u64 {
        self.inner.moves.load(Ordering::Relaxed)
    }

    /// Polls every stop condition; `None` means keep running. Signals
    /// outrank the wall clock, which outranks the move budget.
    pub fn check(&self) -> Option<StopReason> {
        let i = &*self.inner;
        if i.flag.load(Ordering::Relaxed) || i.external.is_some_and(|f| f.load(Ordering::Relaxed)) {
            return Some(StopReason::Interrupted);
        }
        if i.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopReason::WallClock);
        }
        if i.max_moves
            .is_some_and(|cap| i.moves.load(Ordering::Relaxed) >= cap)
        {
            return Some(StopReason::MoveBudget);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_token_never_fires() {
        let t = CancelToken::new();
        t.add_moves(1_000_000);
        assert_eq!(t.check(), None);
    }

    #[test]
    fn cancel_fires_and_outranks_budgets() {
        let t = CancelToken::new().with_max_moves(1);
        t.add_moves(5);
        assert_eq!(t.check(), Some(StopReason::MoveBudget));
        t.cancel();
        assert_eq!(t.check(), Some(StopReason::Interrupted));
    }

    #[test]
    fn external_flag_is_observed() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let t = CancelToken::new().with_signal_flag(&FLAG);
        assert_eq!(t.check(), None);
        FLAG.store(true, Ordering::Relaxed);
        assert_eq!(t.check(), Some(StopReason::Interrupted));
        FLAG.store(false, Ordering::Relaxed);
    }

    #[test]
    fn past_deadline_fires() {
        let t = CancelToken::new().with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(t.check(), Some(StopReason::WallClock));
        let t = CancelToken::new().with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(t.check(), None);
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new().with_max_moves(10);
        let u = t.clone();
        t.add_moves(10);
        assert_eq!(u.check(), Some(StopReason::MoveBudget));
        assert_eq!(u.moves(), 10);
    }

    #[test]
    fn reason_strings_are_stable() {
        assert_eq!(StopReason::Interrupted.as_str(), "signal");
        assert_eq!(StopReason::WallClock.as_str(), "wall_clock");
        assert_eq!(StopReason::MoveBudget.as_str(), "move_budget");
    }
}
