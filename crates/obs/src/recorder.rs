//! Event sinks: the [`Recorder`] trait and its implementations.

use std::io::{self, BufWriter, Write};
use std::sync::Arc;

use twmc_metrics::MetricsHub;
use twmc_trace::Tracer;

use crate::Event;

/// A telemetry sink.
///
/// Producers in the hot layers hold a `&mut dyn Recorder` and guard all
/// event-construction work behind [`Recorder::enabled`]:
///
/// ```ignore
/// if rec.enabled() {
///     rec.record(&Event::PlaceTemp(expensive_to_build()));
/// }
/// ```
///
/// With the [`NullRecorder`] the guard is a single always-false branch
/// per temperature step — the inner per-move loop is never instrumented,
/// which is what bounds the disabled-path overhead (DESIGN.md §8).
/// Recording must never influence results: implementations do not touch
/// any RNG and producers call them outside the Metropolis loop.
pub trait Recorder {
    /// Whether events will be kept. Producers skip event construction
    /// when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&mut self, event: &Event);

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}

    /// The live metrics hub riding this recorder, if any.
    ///
    /// Metrics are orthogonal to events: producers update hub counters
    /// and histograms whenever a hub is present, even when `enabled()`
    /// is `false` (a [`NullRecorder`] wrapped in [`Instrumented`]
    /// yields metrics without any event stream). Like event recording,
    /// metric updates must never touch an RNG.
    fn hub(&self) -> Option<&Arc<MetricsHub>> {
        None
    }

    /// The span tracer riding this recorder, if any.
    ///
    /// Mirrors [`Recorder::hub`]: tracing is orthogonal to events, and
    /// instrumented layers check out a [`twmc_trace::Lane`] per scope
    /// whenever a tracer is present, even with `enabled()` false. Like
    /// events and metrics, span recording must never touch an RNG —
    /// the traced path stays bit-identical to the untraced one.
    fn tracer(&self) -> Option<&Arc<Tracer>> {
        None
    }
}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&mut self, event: &Event) {
        (**self).record(event)
    }

    fn flush(&mut self) {
        (**self).flush()
    }

    fn hub(&self) -> Option<&Arc<MetricsHub>> {
        (**self).hub()
    }

    fn tracer(&self) -> Option<&Arc<Tracer>> {
        (**self).tracer()
    }
}

/// The disabled sink: `enabled()` is `false`, `record` is a no-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &Event) {}
}

/// A buffered JSON-lines sink: one compact JSON object per event per
/// line, written through a [`BufWriter`].
///
/// I/O errors are latched rather than panicking mid-anneal: the first
/// error stops further writes and surfaces from [`JsonlRecorder::finish`]
/// (or [`JsonlRecorder::io_error`]).
#[derive(Debug)]
pub struct JsonlRecorder<W: Write> {
    out: BufWriter<W>,
    events: usize,
    error: Option<io::Error>,
    autoflush: bool,
}

impl JsonlRecorder<std::fs::File> {
    /// Creates (truncates) `path` and records events into it.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(JsonlRecorder::new(std::fs::File::create(path)?))
    }

    /// Opens `path` for appending (creating it if absent) — the resume
    /// path, where the suffix of an interrupted stream continues the
    /// prefix already on disk.
    pub fn append(path: &str) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlRecorder::new(file))
    }
}

/// A file sink with an fsync cadence: every `every`-th flush also
/// pushes the data to stable storage with `sync_data`, bounding how
/// many telemetry events power loss can cost a long daemon job.
/// `every = 0` disables the fsyncs (plain buffered file).
#[derive(Debug)]
pub struct DurableFile {
    file: std::fs::File,
    every: u64,
    flushes: u64,
}

impl Write for DurableFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()?;
        if self.every > 0 {
            self.flushes += 1;
            if self.flushes.is_multiple_of(self.every) {
                self.file.sync_data()?;
            }
        }
        Ok(())
    }
}

impl JsonlRecorder<DurableFile> {
    /// [`JsonlRecorder::create`] with an fsync every `every` flushes
    /// (0 = never fsync).
    pub fn create_durable(path: &str, every: u64) -> io::Result<Self> {
        Ok(JsonlRecorder::new(DurableFile {
            file: std::fs::File::create(path)?,
            every,
            flushes: 0,
        }))
    }

    /// [`JsonlRecorder::append`] with an fsync every `every` flushes
    /// (0 = never fsync).
    pub fn append_durable(path: &str, every: u64) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlRecorder::new(DurableFile {
            file,
            every,
            flushes: 0,
        }))
    }
}

impl<W: Write> JsonlRecorder<W> {
    /// Wraps any writer.
    pub fn new(writer: W) -> Self {
        JsonlRecorder {
            out: BufWriter::new(writer),
            events: 0,
            error: None,
            autoflush: false,
        }
    }

    /// Flush after every event so tailing readers see each line as soon
    /// as it is recorded. Required for live streaming (`GET
    /// /jobs/<id>/events?follow=1`), where a buffered suffix would be
    /// invisible to followers until the run ended.
    pub fn with_autoflush(mut self) -> Self {
        self.autoflush = true;
        self
    }

    /// Events recorded so far (counted even if a later write failed).
    pub fn events(&self) -> usize {
        self.events
    }

    /// The first I/O error hit, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the inner writer, surfacing any latched or
    /// final I/O error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, event: &Event) {
        self.events += 1;
        if self.error.is_some() {
            return;
        }
        let line = serde_json::to_string(event).expect("events always serialize");
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .and_then(|()| {
                if self.autoflush {
                    self.out.flush()
                } else {
                    Ok(())
                }
            })
        {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// An in-memory sink keeping every event — the test fixture and the
/// source of the CLI's `--telemetry-summary` table.
#[derive(Debug, Clone, Default)]
pub struct SummaryRecorder {
    events: Vec<Event>,
}

impl SummaryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        SummaryRecorder::default()
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the recorder, returning the events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Number of events with the given `kind` tag.
    pub fn count(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }

    /// The recorded [`crate::PlaceTemp`] steps of one phase, in order.
    pub fn place_temps(&self, phase: &str) -> Vec<&crate::PlaceTemp> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::PlaceTemp(p) if p.phase == phase => Some(p),
                _ => None,
            })
            .collect()
    }
}

impl Recorder for SummaryRecorder {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Fans one stream out to two sinks (e.g. a JSONL file plus the
/// in-memory summary behind `--telemetry-summary`).
pub struct Tee<'a> {
    /// First sink.
    pub a: &'a mut dyn Recorder,
    /// Second sink.
    pub b: &'a mut dyn Recorder,
}

impl Recorder for Tee<'_> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn record(&mut self, event: &Event) {
        self.a.record(event);
        self.b.record(event);
    }

    fn flush(&mut self) {
        self.a.flush();
        self.b.flush();
    }

    fn hub(&self) -> Option<&Arc<MetricsHub>> {
        self.a.hub().or_else(|| self.b.hub())
    }

    fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.a.tracer().or_else(|| self.b.tracer())
    }
}

/// Pairs any event sink with a [`MetricsHub`] and/or a span
/// [`Tracer`] so instrumentation-producing layers see them through
/// [`Recorder::hub`] / [`Recorder::tracer`] without new plumbing.
///
/// The inner recorder keeps full control of the event stream —
/// `Instrumented<NullRecorder>` yields live metrics (or a trace) with
/// zero events.
pub struct Instrumented<R: Recorder> {
    inner: R,
    hub: Option<Arc<MetricsHub>>,
    tracer: Option<Arc<Tracer>>,
}

impl<R: Recorder> Instrumented<R> {
    /// Attaches `hub` to `inner`.
    pub fn new(inner: R, hub: Arc<MetricsHub>) -> Self {
        Instrumented {
            inner,
            hub: Some(hub),
            tracer: None,
        }
    }

    /// Attaches an optional hub — the forwarding adapter for worker
    /// threads, where the orchestrator may or may not carry one.
    pub fn maybe(inner: R, hub: Option<Arc<MetricsHub>>) -> Self {
        Instrumented {
            inner,
            hub,
            tracer: None,
        }
    }

    /// Attaches an optional span tracer as well.
    pub fn with_tracer(mut self, tracer: Option<Arc<Tracer>>) -> Self {
        self.tracer = tracer;
        self
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Unwraps back into the inner sink.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Recorder> Recorder for Instrumented<R> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&mut self, event: &Event) {
        self.inner.record(event);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }

    fn hub(&self) -> Option<&Arc<MetricsHub>> {
        self.hub.as_ref().or_else(|| self.inner.hub())
    }

    fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref().or_else(|| self.inner.tracer())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StageSpan;

    fn span(us: u64) -> Event {
        Event::StageSpan(StageSpan {
            stage: "stage1",
            iteration: 0,
            wall_us: us,
        })
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(&span(1)); // no-op, no panic
        r.flush();
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut r = JsonlRecorder::new(Vec::new());
        assert!(r.enabled());
        r.record(&span(1));
        r.record(&span(2));
        assert_eq!(r.events(), 2);
        let bytes = r.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn jsonl_latches_io_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Capacity 0 forces the BufWriter to hit the sink immediately.
        let mut r = JsonlRecorder {
            out: BufWriter::with_capacity(0, Failing),
            events: 0,
            error: None,
            autoflush: false,
        };
        r.record(&span(1));
        r.record(&span(2)); // must not panic after the first failure
        assert_eq!(r.events(), 2);
        assert!(r.io_error().is_some());
        assert!(r.finish().is_err());
    }

    #[test]
    fn summary_counts_kinds() {
        let mut r = SummaryRecorder::new();
        r.record(&span(1));
        r.record(&span(2));
        assert_eq!(r.count("stage_span"), 2);
        assert_eq!(r.count("run_start"), 0);
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.into_events().len(), 2);
    }

    #[test]
    fn tee_reaches_both_sinks() {
        let mut a = SummaryRecorder::new();
        let mut b = SummaryRecorder::new();
        {
            let mut t = Tee {
                a: &mut a,
                b: &mut b,
            };
            assert!(t.enabled());
            t.record(&span(1));
            t.flush();
        }
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }

    #[test]
    fn tee_disabled_only_when_both_are() {
        let mut a = NullRecorder;
        let mut b = NullRecorder;
        let t = Tee {
            a: &mut a,
            b: &mut b,
        };
        assert!(!t.enabled());
    }
}
