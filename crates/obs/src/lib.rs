//! Telemetry for the TimberWolfMC reproduction.
//!
//! The paper's annealing machinery is a stack of feedback controllers —
//! the Table-1/2 cooling schedules, the eq. 12–14 range limiter, the
//! move-ratio controller — whose runtime signals (acceptance ratios,
//! cost decomposition, `S_T` scaling, window spans) are otherwise
//! invisible. This crate is the dependency-light observation layer the
//! rest of the workspace threads through its hot paths:
//!
//! * [`Recorder`] — the sink trait; producers call
//!   [`Recorder::record`] with structured [`Event`]s and gate any
//!   event-construction work on [`Recorder::enabled`];
//! * [`NullRecorder`] — the disabled sink; `enabled()` is `false`, so
//!   instrumented code compiles to a per-temperature branch and nothing
//!   else (the annealing inner loop itself is never instrumented
//!   per-move — see DESIGN.md §8 for the overhead argument);
//! * [`JsonlRecorder`] — a buffered JSON-lines sink over any
//!   `io::Write` (one event per line, `{"kind": …}` tagged);
//! * [`SummaryRecorder`] — an in-memory sink for tests and the CLI's
//!   human-readable summary table;
//! * [`Tee`] — fans one event stream out to two sinks;
//! * [`validate`] — a minimal JSON parser plus JSONL stream validation
//!   (used by tests and CI; the vendored `serde_json` stand-in only
//!   serializes).
//!
//! # Examples
//!
//! ```
//! use twmc_obs::{Event, JsonlRecorder, Recorder, StageSpan};
//!
//! let mut rec = JsonlRecorder::new(Vec::new());
//! if rec.enabled() {
//!     rec.record(&Event::StageSpan(StageSpan {
//!         stage: "stage1",
//!         iteration: 0,
//!         wall_us: 1250,
//!     }));
//! }
//! let bytes = rec.finish().unwrap();
//! let line = String::from_utf8(bytes).unwrap();
//! assert!(line.starts_with("{\"kind\":\"stage_span\""));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cancel;
mod event;
mod recorder;
pub mod validate;

pub use cancel::{CancelToken, StopReason};
pub use event::{
    AnnealTemp, ClassCount, CostBreakdown, Event, PlaceTemp, ReplicaFailed, ReplicaSummary,
    RouteIter, RunEnd, RunInterrupted, RunScope, RunStart, StageSpan, Swap, EVENT_KINDS,
};
pub use recorder::{
    DurableFile, Instrumented, JsonlRecorder, NullRecorder, Recorder, SummaryRecorder, Tee,
};
pub use twmc_metrics::{MetricsHub, MOVE_EVAL_SAMPLE};
pub use twmc_trace as trace;
pub use twmc_trace::{Lane, TraceSnapshot, Tracer};
