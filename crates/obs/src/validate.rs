//! JSONL stream validation: a minimal JSON parser plus schema checks.
//!
//! The vendored `serde_json` stand-in only serializes, so tests and CI
//! need an independent reader to prove the emitted stream actually
//! parses. This module provides one: [`parse_json`] lifts a line back
//! into a [`serde::Value`] tree, [`validate_jsonl`] walks a whole
//! stream checking every line is an object with a known `kind` tag and
//! that kind's required fields, and [`expect_kinds`] asserts coverage.

use std::collections::BTreeMap;

use serde::Value;

use crate::EVENT_KINDS;

/// Fields every event of a given kind must carry (a subset — the schema
/// is append-only, so validation pins only the load-bearing keys).
fn required_fields(kind: &str) -> &'static [&'static str] {
    match kind {
        "run_start" => &["seed", "cells", "nets", "pins", "replicas", "strategy"],
        "anneal_temp" => &["step", "temperature", "s_t", "attempts", "accepts", "cost"],
        "place_temp" => &[
            "phase",
            "replica",
            "step",
            "temperature",
            "s_t",
            "window_x",
            "window_y",
            "inner",
            "attempts",
            "accepts",
            "cost",
            "teil",
            "index_rebuilds",
            "classes",
        ],
        "stage_span" => &["stage", "iteration", "wall_us"],
        "route_iter" => &[
            "phase",
            "iteration",
            "nets",
            "unrouted",
            "overflow_start",
            "overflow",
            "total_length",
            "attempts",
            "reassignments",
            "usage_total",
            "util_hist",
        ],
        "replica_summary" => &["phase", "replica", "seed", "teil", "cost"],
        "swap" => &["round", "lower", "upper", "s_t", "accepted"],
        "replica_failed" => &["phase", "replica", "round", "error"],
        "run_interrupted" => &["reason", "stage", "teil", "cost", "wall_us"],
        "run_end" => &[
            "teil",
            "chip_width",
            "chip_height",
            "routed_length",
            "wall_us",
        ],
        _ => &[],
    }
}

/// Aggregate statistics of a validated stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Non-empty lines seen.
    pub lines: usize,
    /// Events per `kind` tag.
    pub kind_counts: BTreeMap<String, usize>,
}

/// Parses one JSON document (object, array, scalar).
pub fn parse_json(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

/// Looks up a field in a parsed object and coerces it to `f64`.
fn numeric_field(entries: &[(String, Value)], field: &str) -> Option<f64> {
    entries
        .iter()
        .find(|(k, _)| k == field)
        .and_then(|(_, v)| match *v {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        })
}

fn string_field(entries: &[(String, Value)], field: &str) -> Option<String> {
    entries.iter().find(|(k, _)| k == field).and_then(|(_, v)| {
        if let Value::Str(s) = v {
            Some(s.clone())
        } else {
            None
        }
    })
}

/// Validates a JSONL telemetry stream: every non-empty line must parse
/// as a JSON object carrying a known `kind` tag and that kind's
/// required fields; additionally the stream must contain exactly one
/// `run_start`/`run_end` pair when either appears (in that order), and
/// temperatures within one annealing stream (an `anneal_temp` stream or
/// the `place_temp`s sharing a phase/iteration/replica scope) must be
/// non-increasing. A `run_interrupted` event resets the temperature
/// tracking (the continuation of an interrupted stage re-runs its
/// cooling), and a stream whose last event is `run_interrupted` may
/// legally omit `run_end` — the continuation lives in a checkpoint.
/// Every error names the offending line. Returns per-kind counts.
pub fn validate_jsonl(text: &str) -> Result<StreamStats, String> {
    let mut stats = StreamStats::default();
    // Line numbers of the run envelope events (1-based, 0 = unseen).
    let mut run_start_line = 0usize;
    let mut run_end_line = 0usize;
    let mut last_kind = String::new();
    // Last temperature per annealing stream: keyed by
    // (phase, iteration, replica) for place_temp, a fixed key for the
    // generic anneal_temp stream.
    let mut last_temp: BTreeMap<(String, i64, i64), (f64, usize)> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let Value::Object(entries) = v else {
            return Err(format!("line {lineno}: not a JSON object"));
        };
        let kind = string_field(&entries, "kind")
            .ok_or_else(|| format!("line {lineno}: missing string `kind`"))?;
        if !EVENT_KINDS.contains(&kind.as_str()) {
            return Err(format!("line {lineno}: unknown kind `{kind}`"));
        }
        for field in required_fields(&kind) {
            if !entries.iter().any(|(k, _)| k == field) {
                return Err(format!(
                    "line {lineno}: `{kind}` event missing field `{field}`"
                ));
            }
        }
        match kind.as_str() {
            "run_start" => {
                if run_start_line != 0 {
                    return Err(format!(
                        "line {lineno}: duplicate `run_start` (first at line {run_start_line})"
                    ));
                }
                run_start_line = lineno;
            }
            "run_end" => {
                if run_end_line != 0 {
                    return Err(format!(
                        "line {lineno}: duplicate `run_end` (first at line {run_end_line})"
                    ));
                }
                if run_start_line == 0 {
                    return Err(format!(
                        "line {lineno}: `run_end` without a preceding `run_start`"
                    ));
                }
                run_end_line = lineno;
            }
            "anneal_temp" | "place_temp" => {
                let key = if kind == "anneal_temp" {
                    ("anneal".to_owned(), 0, 0)
                } else {
                    (
                        string_field(&entries, "phase").unwrap_or_default(),
                        numeric_field(&entries, "iteration").unwrap_or(0.0) as i64,
                        numeric_field(&entries, "replica").unwrap_or(-1.0) as i64,
                    )
                };
                let t = numeric_field(&entries, "temperature")
                    .ok_or_else(|| format!("line {lineno}: non-numeric `temperature`"))?;
                if let Some(&(prev, prev_line)) = last_temp.get(&key) {
                    if t > prev {
                        return Err(format!(
                            "line {lineno}: temperature {t} rose above {prev} (line \
                             {prev_line}) within the {}[{}/{}] anneal stream",
                            key.0, key.1, key.2
                        ));
                    }
                }
                last_temp.insert(key, (t, lineno));
            }
            "run_interrupted" => {
                if run_start_line == 0 {
                    return Err(format!(
                        "line {lineno}: `run_interrupted` without a preceding `run_start`"
                    ));
                }
                // A resumed stage-2 re-runs its cooling from the top, so
                // the per-scope monotonicity restarts here.
                last_temp.clear();
            }
            _ => {}
        }
        stats.lines += 1;
        *stats.kind_counts.entry(kind.clone()).or_insert(0) += 1;
        last_kind = kind;
    }
    if run_start_line != 0 && run_end_line == 0 && last_kind != "run_interrupted" {
        return Err(format!(
            "line {run_start_line}: `run_start` has no matching `run_end` (truncated stream?)"
        ));
    }
    Ok(stats)
}

/// Checks that every kind in `required` appears at least once.
pub fn expect_kinds(stats: &StreamStats, required: &[&str]) -> Result<(), String> {
    let missing: Vec<&str> = required
        .iter()
        .copied()
        .filter(|k| !stats.kind_counts.contains_key(*k))
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("stream missing event kinds: {missing:?}"))
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_owned())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_owned())?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let s = &text_from(b)[*pos..];
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn text_from(b: &[u8]) -> &str {
    std::str::from_utf8(b).expect("input was a &str")
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(
            b[*pos],
            b'0'..=b'9'
                | b'-'
                | b'+'
                | b'.'
                | b'e'
                | b'E'
                | b'i'
                | b'n'
                | b'a'
                | b'f'
                | b't'
                | b'y'
                | b'N'
        )
    {
        // The extra letters admit non-finite spellings (inf, NaN) so a
        // malformed stream fails with a clear message below rather than
        // a confusing `expected , or }`.
        *pos += 1;
    }
    let text = &text_from(b)[start..*pos];
    if text.is_empty() {
        return Err(format!("unexpected character at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E', 'i', 'n', 'N']) {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
    }
    let f: f64 = text
        .parse()
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
    if !f.is_finite() {
        return Err(format!("non-finite number `{text}` at byte {start}"));
    }
    Ok(Value::Float(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, StageSpan};

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse_json("null").unwrap(), Value::Null);
        assert_eq!(parse_json("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_json("-5").unwrap(), Value::Int(-5));
        assert_eq!(
            parse_json("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse_json("1.5e3").unwrap(), Value::Float(1500.0));
        let v = parse_json(r#"{"a": [1, {"b": "x\ny"}], "c": null}"#).unwrap();
        let Value::Object(entries) = v else {
            panic!("object")
        };
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json(r#"{"a" 1}"#).is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("NaN").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn roundtrips_serialized_events() {
        let ev = Event::StageSpan(StageSpan {
            stage: "global_routing",
            iteration: 2,
            wall_us: 987,
        });
        let json = serde_json::to_string(&ev).unwrap();
        let v = parse_json(&json).unwrap();
        // Int(2) and UInt(2) are both valid parses of `2`, so compare
        // the re-serialized text rather than the value trees.
        assert_eq!(serde_json::to_string(&v).unwrap(), json);
    }

    const RUN_START: &str = "{\"kind\":\"run_start\",\"seed\":1,\"cells\":2,\"nets\":3,\
                             \"pins\":4,\"replicas\":1,\"strategy\":\"single\"}";
    const RUN_END: &str = "{\"kind\":\"run_end\",\"teil\":1.0,\"chip_width\":1,\
                           \"chip_height\":1,\"routed_length\":1,\"wall_us\":9}";

    fn place_temp(t: f64) -> String {
        format!(
            "{{\"kind\":\"place_temp\",\"phase\":\"stage1\",\"iteration\":0,\"replica\":-1,\
             \"step\":0,\"temperature\":{t},\"s_t\":1.0,\"window_x\":6.0,\"window_y\":6.0,\
             \"inner\":1,\"attempts\":1,\"accepts\":1,\"cost\":{{\"total\":1.0}},\"teil\":1.0,\
             \"index_rebuilds\":0,\"classes\":[]}}"
        )
    }

    #[test]
    fn validates_streams() {
        let good = concat!(
            "{\"kind\":\"stage_span\",\"stage\":\"stage1\",\"iteration\":0,\"wall_us\":5}\n",
            "\n",
        );
        let stats = validate_jsonl(good).unwrap();
        assert_eq!(stats.lines, 1);
        assert_eq!(stats.kind_counts["stage_span"], 1);
        expect_kinds(&stats, &["stage_span"]).unwrap();
        assert!(expect_kinds(&stats, &["swap"]).is_err());

        assert!(validate_jsonl("{\"kind\":\"bogus\"}").is_err());
        assert!(
            validate_jsonl("{\"kind\":\"stage_span\"}").is_err(),
            "missing fields"
        );
        assert!(validate_jsonl("[1]").is_err(), "not an object");
        assert!(validate_jsonl("{oops").is_err());
    }

    #[test]
    fn enforces_run_envelope_pairing() {
        // A complete pair validates.
        let good = format!("{RUN_START}\n{RUN_END}\n");
        assert_eq!(validate_jsonl(&good).unwrap().lines, 2);

        // run_end without run_start, duplicate starts/ends, and a
        // truncated stream all fail with the offending line number.
        let orphan_end = format!("{RUN_END}\n");
        let err = validate_jsonl(&orphan_end).unwrap_err();
        assert!(err.contains("line 1") && err.contains("run_end"), "{err}");

        let dup_start = format!("{RUN_START}\n{RUN_START}\n{RUN_END}\n");
        let err = validate_jsonl(&dup_start).unwrap_err();
        assert!(err.contains("line 2") && err.contains("duplicate"), "{err}");

        let dup_end = format!("{RUN_START}\n{RUN_END}\n{RUN_END}\n");
        let err = validate_jsonl(&dup_end).unwrap_err();
        assert!(err.contains("line 3") && err.contains("duplicate"), "{err}");

        let truncated = format!("{RUN_START}\n");
        let err = validate_jsonl(&truncated).unwrap_err();
        assert!(err.contains("no matching `run_end`"), "{err}");
    }

    const INTERRUPTED: &str = "{\"kind\":\"run_interrupted\",\"reason\":\"signal\",\
                               \"stage\":\"stage1\",\"teil\":1.0,\"cost\":2.0,\"wall_us\":7}";

    #[test]
    fn interrupted_streams_may_end_without_run_end() {
        // run_start … run_interrupted as the final event validates.
        let cut = format!("{RUN_START}\n{}\n{INTERRUPTED}\n", place_temp(10.0));
        assert_eq!(validate_jsonl(&cut).unwrap().lines, 3);

        // A resumed stream may carry several interrupts and close with
        // run_end; the temperature tracking restarts at each interrupt,
        // so a stage that re-runs its cooling does not trip monotonicity.
        let resumed = format!(
            "{RUN_START}\n{}\n{INTERRUPTED}\n{}\n{INTERRUPTED}\n{}\n{RUN_END}\n",
            place_temp(8.0),
            place_temp(10.0),
            place_temp(9.0),
        );
        assert_eq!(validate_jsonl(&resumed).unwrap().lines, 7);

        // An interrupt before any run_start is malformed.
        let orphan = format!("{INTERRUPTED}\n");
        let err = validate_jsonl(&orphan).unwrap_err();
        assert!(err.contains("run_interrupted"), "{err}");

        // Events after the interrupt re-arm the truncation check.
        let trailing = format!("{RUN_START}\n{INTERRUPTED}\n{}\n", place_temp(5.0));
        let err = validate_jsonl(&trailing).unwrap_err();
        assert!(err.contains("no matching `run_end`"), "{err}");
    }

    #[test]
    fn enforces_monotone_temperatures_per_stream() {
        // Cooling (and plateaus) validate; reheating fails with the line.
        let cooling = format!(
            "{}\n{}\n{}\n",
            place_temp(10.0),
            place_temp(8.0),
            place_temp(8.0)
        );
        assert_eq!(validate_jsonl(&cooling).unwrap().lines, 3);

        let reheat = format!("{}\n{}\n", place_temp(8.0), place_temp(10.0));
        let err = validate_jsonl(&reheat).unwrap_err();
        assert!(
            err.contains("line 2") && err.contains("rose above"),
            "{err}"
        );

        // Different scopes are independent streams.
        let other_scope = place_temp(10.0).replace("\"replica\":-1", "\"replica\":1");
        let two_streams = format!("{}\n{}\n", place_temp(8.0), other_scope);
        assert_eq!(validate_jsonl(&two_streams).unwrap().lines, 2);
    }
}
