//! JSONL stream validation: a minimal JSON parser plus schema checks.
//!
//! The vendored `serde_json` stand-in only serializes, so tests and CI
//! need an independent reader to prove the emitted stream actually
//! parses. This module provides one: [`parse_json`] lifts a line back
//! into a [`serde::Value`] tree, [`validate_jsonl`] walks a whole
//! stream checking every line is an object with a known `kind` tag and
//! that kind's required fields, and [`expect_kinds`] asserts coverage.

use std::collections::BTreeMap;

use serde::Value;

use crate::EVENT_KINDS;

/// Fields every event of a given kind must carry (a subset — the schema
/// is append-only, so validation pins only the load-bearing keys).
fn required_fields(kind: &str) -> &'static [&'static str] {
    match kind {
        "run_start" => &["seed", "cells", "nets", "pins", "replicas", "strategy"],
        "anneal_temp" => &["step", "temperature", "s_t", "attempts", "accepts", "cost"],
        "place_temp" => &[
            "phase",
            "replica",
            "step",
            "temperature",
            "s_t",
            "window_x",
            "window_y",
            "inner",
            "attempts",
            "accepts",
            "cost",
            "teil",
            "index_rebuilds",
            "classes",
        ],
        "stage_span" => &["stage", "iteration", "wall_us"],
        "replica_summary" => &["phase", "replica", "seed", "teil", "cost"],
        "swap" => &["round", "lower", "upper", "accepted"],
        "run_end" => &[
            "teil",
            "chip_width",
            "chip_height",
            "routed_length",
            "wall_us",
        ],
        _ => &[],
    }
}

/// Aggregate statistics of a validated stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Non-empty lines seen.
    pub lines: usize,
    /// Events per `kind` tag.
    pub kind_counts: BTreeMap<String, usize>,
}

/// Parses one JSON document (object, array, scalar).
pub fn parse_json(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

/// Validates a JSONL telemetry stream: every non-empty line must parse
/// as a JSON object carrying a known `kind` tag and that kind's
/// required fields. Returns per-kind counts.
pub fn validate_jsonl(text: &str) -> Result<StreamStats, String> {
    let mut stats = StreamStats::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let Value::Object(entries) = v else {
            return Err(format!("line {}: not a JSON object", lineno + 1));
        };
        let kind = entries
            .iter()
            .find(|(k, _)| k == "kind")
            .and_then(|(_, v)| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .ok_or_else(|| format!("line {}: missing string `kind`", lineno + 1))?;
        if !EVENT_KINDS.contains(&kind.as_str()) {
            return Err(format!("line {}: unknown kind `{kind}`", lineno + 1));
        }
        for field in required_fields(&kind) {
            if !entries.iter().any(|(k, _)| k == field) {
                return Err(format!(
                    "line {}: `{kind}` event missing field `{field}`",
                    lineno + 1
                ));
            }
        }
        stats.lines += 1;
        *stats.kind_counts.entry(kind).or_insert(0) += 1;
    }
    Ok(stats)
}

/// Checks that every kind in `required` appears at least once.
pub fn expect_kinds(stats: &StreamStats, required: &[&str]) -> Result<(), String> {
    let missing: Vec<&str> = required
        .iter()
        .copied()
        .filter(|k| !stats.kind_counts.contains_key(*k))
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("stream missing event kinds: {missing:?}"))
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_owned())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_owned())?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let s = &text_from(b)[*pos..];
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn text_from(b: &[u8]) -> &str {
    std::str::from_utf8(b).expect("input was a &str")
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(
            b[*pos],
            b'0'..=b'9'
                | b'-'
                | b'+'
                | b'.'
                | b'e'
                | b'E'
                | b'i'
                | b'n'
                | b'a'
                | b'f'
                | b't'
                | b'y'
                | b'N'
        )
    {
        // The extra letters admit non-finite spellings (inf, NaN) so a
        // malformed stream fails with a clear message below rather than
        // a confusing `expected , or }`.
        *pos += 1;
    }
    let text = &text_from(b)[start..*pos];
    if text.is_empty() {
        return Err(format!("unexpected character at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E', 'i', 'n', 'N']) {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
    }
    let f: f64 = text
        .parse()
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
    if !f.is_finite() {
        return Err(format!("non-finite number `{text}` at byte {start}"));
    }
    Ok(Value::Float(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, StageSpan};

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse_json("null").unwrap(), Value::Null);
        assert_eq!(parse_json("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_json("-5").unwrap(), Value::Int(-5));
        assert_eq!(
            parse_json("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse_json("1.5e3").unwrap(), Value::Float(1500.0));
        let v = parse_json(r#"{"a": [1, {"b": "x\ny"}], "c": null}"#).unwrap();
        let Value::Object(entries) = v else {
            panic!("object")
        };
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json(r#"{"a" 1}"#).is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("NaN").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn roundtrips_serialized_events() {
        let ev = Event::StageSpan(StageSpan {
            stage: "global_routing",
            iteration: 2,
            wall_us: 987,
        });
        let json = serde_json::to_string(&ev).unwrap();
        let v = parse_json(&json).unwrap();
        // Int(2) and UInt(2) are both valid parses of `2`, so compare
        // the re-serialized text rather than the value trees.
        assert_eq!(serde_json::to_string(&v).unwrap(), json);
    }

    #[test]
    fn validates_streams() {
        let good = concat!(
            "{\"kind\":\"stage_span\",\"stage\":\"stage1\",\"iteration\":0,\"wall_us\":5}\n",
            "\n",
            "{\"kind\":\"run_end\",\"teil\":1.0,\"chip_width\":1,\"chip_height\":1,",
            "\"routed_length\":1,\"wall_us\":9}\n",
        );
        let stats = validate_jsonl(good).unwrap();
        assert_eq!(stats.lines, 2);
        assert_eq!(stats.kind_counts["stage_span"], 1);
        expect_kinds(&stats, &["stage_span", "run_end"]).unwrap();
        assert!(expect_kinds(&stats, &["swap"]).is_err());

        assert!(validate_jsonl("{\"kind\":\"bogus\"}").is_err());
        assert!(
            validate_jsonl("{\"kind\":\"stage_span\"}").is_err(),
            "missing fields"
        );
        assert!(validate_jsonl("[1]").is_err(), "not an object");
        assert!(validate_jsonl("{oops").is_err());
    }
}
