//! Property-based tests for the netlist model, synthesis, and text I/O.

use proptest::prelude::*;

use twmc_netlist::{parse_netlist, synthesize, write_netlist, PinPlacement, SideSet, SynthParams};

fn arb_params() -> impl Strategy<Value = SynthParams> {
    (
        2usize..15,   // cells
        2usize..40,   // nets
        0usize..150,  // extra pins beyond the minimum
        0.0f64..0.6,  // custom fraction
        0.0f64..0.5,  // rectilinear fraction
        any::<u64>(), // seed
    )
        .prop_map(
            |(cells, nets, extra, custom, rectilinear, seed)| SynthParams {
                cells,
                nets,
                pins: 2 * nets + extra,
                custom_fraction: custom,
                rectilinear_fraction: rectilinear,
                avg_cell_dim: 24,
                equiv_pin_fraction: 0.0,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn synthesis_meets_contract(params in arb_params()) {
        let nl = synthesize(&params);
        let st = nl.stats();
        prop_assert_eq!(st.cells, params.cells);
        prop_assert_eq!(st.nets, params.nets);
        prop_assert_eq!(st.pins, params.pins);
        // Every net has at least two connection points.
        for net in nl.nets() {
            prop_assert!(net.degree() >= 2);
        }
        // Every pin belongs to exactly the net that lists it.
        for net in nl.nets() {
            for pid in net.all_pins() {
                prop_assert_eq!(nl.pin(pid).net, Some(net.id()));
            }
        }
        // Macro pins lie on their cell geometry.
        for cell in nl.cells() {
            for inst in cell.instances() {
                for &pos in &inst.pin_positions {
                    prop_assert!(inst.tiles.contains(pos));
                }
            }
        }
        // Custom pins carry side constraints.
        for pin in nl.pins() {
            if nl.cell(pin.cell).is_custom() {
                prop_assert!(matches!(
                    pin.placement,
                    PinPlacement::Sites(_) | PinPlacement::Grouped(_) | PinPlacement::Fixed(_)
                ));
            } else {
                prop_assert!(matches!(pin.placement, PinPlacement::Fixed(_)));
            }
        }
    }

    #[test]
    fn text_format_roundtrips(params in arb_params()) {
        let nl = synthesize(&params);
        let text = write_netlist(&nl);
        let back = parse_netlist(&text).expect("generated netlists reparse");
        prop_assert_eq!(back.stats(), nl.stats());
        // Cell-by-cell structure.
        for (a, b) in nl.cells().iter().zip(back.cells()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.is_custom(), b.is_custom());
            prop_assert_eq!(a.pins.len(), b.pins.len());
            prop_assert_eq!(a.area(), b.area());
            prop_assert_eq!(a.perimeter(), b.perimeter());
        }
        // Net-by-net structure.
        for (a, b) in nl.nets().iter().zip(back.nets()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.degree(), b.degree());
        }
        // Idempotence: writing again gives the identical text.
        prop_assert_eq!(write_netlist(&back), text);
    }

    #[test]
    fn sideset_roundtrips(bits in 0u8..16) {
        use twmc_geom::Side;
        let mut s = SideSet::EMPTY;
        for (k, side) in Side::ALL.into_iter().enumerate() {
            if bits & (1 << k) != 0 {
                s = s.with(side);
            }
        }
        let text = format!("{s}");
        prop_assert_eq!(SideSet::parse(&text), Some(s));
        prop_assert_eq!(s.count() as usize, s.iter().count());
    }

    #[test]
    fn parser_never_panics_on_mutations(params in arb_params(), cut in 0usize..400) {
        // Truncating a valid netlist at an arbitrary line must produce
        // either a valid netlist or a clean error — never a panic.
        let nl = synthesize(&params);
        let text = write_netlist(&nl);
        let lines: Vec<&str> = text.lines().collect();
        let cut = cut % (lines.len() + 1);
        let truncated = lines[..cut].join("\n");
        let _ = parse_netlist(&truncated);
    }

    #[test]
    fn parser_never_panics_on_byte_corruption(
        params in arb_params(),
        pos in 0usize..1_000_000,
        flip in 1u8..=127,
    ) {
        // A single corrupted byte anywhere in a valid netlist must
        // yield a netlist or a typed error — never a panic.
        let nl = synthesize(&params);
        let mut bytes = write_netlist(&nl).into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        if let Ok(mutated) = String::from_utf8(bytes) {
            let _ = parse_netlist(&mutated);
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(junk in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_netlist(&String::from_utf8_lossy(&junk));
    }

    #[test]
    fn yal_parser_never_panics_on_mutations(cut in 0usize..64, pos in 0usize..1_000_000, flip in 1u8..=127) {
        // The same resilience contract for the external YAL format:
        // truncate a valid document at any line, then corrupt a byte.
        let valid = "MODULE a;\nTYPE GENERAL;\nDIMENSIONS 0 0 0 40 40 40 40 0;\n\
                     IOLIST;\np B 0 20 4 m2;\nq B 40 20 4 m2;\nENDIOLIST;\nENDMODULE;\n\
                     MODULE top;\nTYPE PARENT;\nNETWORK;\nu1 a n1 n2;\nu2 a n2 n1;\n\
                     ENDNETWORK;\nENDMODULE;\n";
        let lines: Vec<&str> = valid.lines().collect();
        let cut = cut % (lines.len() + 1);
        let _ = twmc_netlist::parse_yal(&lines[..cut].join("\n"));

        let mut bytes = valid.as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        if let Ok(mutated) = String::from_utf8(bytes) {
            let _ = twmc_netlist::parse_yal(&mutated);
        }
    }

    #[test]
    fn yal_parser_never_panics_on_arbitrary_text(junk in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = twmc_netlist::parse_yal(&String::from_utf8_lossy(&junk));
    }

    #[test]
    fn stats_are_consistent(params in arb_params()) {
        let nl = synthesize(&params);
        let st = nl.stats();
        let area: i64 = nl.cells().iter().map(|c| c.area()).sum();
        prop_assert_eq!(st.total_area, area);
        let perim: i64 = nl.cells().iter().map(|c| c.perimeter()).sum();
        prop_assert_eq!(st.total_perimeter, perim);
        if perim > 0 {
            prop_assert!((st.avg_pin_density - st.pins as f64 / perim as f64).abs() < 1e-12);
        }
        // nets_of_cell inverse relation.
        for cell in nl.cells() {
            for net_id in nl.nets_of_cell(cell.id()) {
                let net = nl.net(net_id);
                prop_assert!(net
                    .all_pins()
                    .any(|p| nl.pin(p).cell == cell.id()));
            }
        }
    }
}
