//! Writer for the TWMC netlist text format (inverse of [`crate::parse_netlist`]).

use std::fmt::Write as _;

use crate::{CellGeometry, Netlist, PinPlacement};

/// Serializes a netlist into the TWMC text format.
///
/// The output round-trips through [`crate::parse_netlist`].
///
/// # Examples
///
/// ```
/// let src = "macro a\n tile 0 0 4 4\n pin o 4 2\nend\n\
///            macro b\n tile 0 0 4 4\n pin i 0 2\nend\n\
///            net w : a.o b.i\n";
/// let nl = twmc_netlist::parse_netlist(src)?;
/// let text = twmc_netlist::write_netlist(&nl);
/// let again = twmc_netlist::parse_netlist(&text)?;
/// assert_eq!(again.stats(), nl.stats());
/// # Ok::<(), twmc_netlist::ParseError>(())
/// ```
pub fn write_netlist(nl: &Netlist) -> String {
    let mut out = String::new();
    for cell in nl.cells() {
        match &cell.geometry {
            CellGeometry::Fixed { instances } => {
                let _ = writeln!(out, "macro {}", cell.name);
                let primary = &instances[0];
                for t in primary.tiles.tiles() {
                    let _ = writeln!(
                        out,
                        "  tile {} {} {} {}",
                        t.lo().x,
                        t.lo().y,
                        t.width(),
                        t.height()
                    );
                }
                for (&pid, &pos) in cell.pins.iter().zip(&primary.pin_positions) {
                    let _ = writeln!(out, "  pin {} {} {}", nl.pin(pid).name, pos.x, pos.y);
                }
                for inst in &instances[1..] {
                    let _ = writeln!(out, "  instance {}", inst.name);
                    for t in inst.tiles.tiles() {
                        let _ = writeln!(
                            out,
                            "    tile {} {} {} {}",
                            t.lo().x,
                            t.lo().y,
                            t.width(),
                            t.height()
                        );
                    }
                    for (&pid, &pos) in cell.pins.iter().zip(&inst.pin_positions) {
                        let _ =
                            writeln!(out, "    pinpos {} {} {}", nl.pin(pid).name, pos.x, pos.y);
                    }
                }
                let _ = writeln!(out, "end");
            }
            CellGeometry::Flexible { area, aspect } => {
                let _ = write!(out, "custom {} area {}", cell.name, area);
                match aspect {
                    crate::AspectRange::Continuous { min, max } => {
                        let _ = write!(out, " aspect {min} {max}");
                    }
                    crate::AspectRange::Discrete(rs) => {
                        let list = rs
                            .iter()
                            .map(|r| r.to_string())
                            .collect::<Vec<_>>()
                            .join(",");
                        let _ = write!(out, " aspectlist {list}");
                    }
                }
                let _ = writeln!(out, " sites {}", cell.sites_per_edge);
                for &pid in &cell.pins {
                    let pin = nl.pin(pid);
                    match &pin.placement {
                        PinPlacement::Fixed(p) => {
                            let _ = writeln!(out, "  pin {} fixed {} {}", pin.name, p.x, p.y);
                        }
                        PinPlacement::Sites(sides) => {
                            let _ = writeln!(out, "  pin {} sides {}", pin.name, sides);
                        }
                        PinPlacement::Grouped(_) => {
                            // Members are emitted with unrestricted sides;
                            // the group line re-binds them below.
                            let _ = writeln!(out, "  pin {} sides LRBT", pin.name);
                        }
                    }
                }
                for g in nl.groups().iter().filter(|g| g.cell == cell.id()) {
                    let members = g
                        .pins
                        .iter()
                        .map(|&p| nl.pin(p).name.clone())
                        .collect::<Vec<_>>()
                        .join(" ");
                    let _ = writeln!(
                        out,
                        "  group {} sides {} {} : {}",
                        g.name,
                        g.sides,
                        if g.sequenced { "seq" } else { "set" },
                        members
                    );
                }
                let _ = writeln!(out, "end");
            }
        }
    }
    for net in nl.nets() {
        let _ = write!(out, "net {}", net.name);
        if net.weight_h != 1.0 {
            let _ = write!(out, " hw {}", net.weight_h);
        }
        if net.weight_v != 1.0 {
            let _ = write!(out, " vw {}", net.weight_v);
        }
        let _ = write!(out, " :");
        for np in &net.pins {
            let qualify = |p: crate::PinId| {
                let pin = nl.pin(p);
                format!("{}.{}", nl.cell(pin.cell).name, pin.name)
            };
            let mut tok = qualify(np.primary);
            for &e in &np.equivalents {
                tok.push('=');
                tok.push_str(&qualify(e));
            }
            let _ = write!(out, " {tok}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_netlist;

    #[test]
    fn roundtrip_macro_circuit() {
        let src = "
macro l
  tile 0 0 4 2
  tile 0 2 2 2
  pin p 4 1
  instance tall
    tile 0 0 2 4
    tile 2 0 2 2
    pinpos p 2 3
end
macro m
  tile 0 0 3 3
  pin q 0 0
end
net n hw 2 vw 0.5 : l.p m.q
";
        let nl = parse_netlist(src).unwrap();
        let text = write_netlist(&nl);
        let again = parse_netlist(&text).unwrap();
        assert_eq!(again.stats(), nl.stats());
        assert_eq!(again.cell_by_name("l").unwrap().instance_count(), 2);
        let n = again.net_by_name("n").unwrap();
        assert_eq!((n.weight_h, n.weight_v), (2.0, 0.5));
    }

    #[test]
    fn roundtrip_custom_circuit() {
        let src = "
custom cc area 400 aspect 0.5 2.0 sites 6
  pin d0 sides LR
  pin d1 sides LR
  pin fx fixed 0 0
  group bus sides LR seq : d0 d1
end
macro m
  tile 0 0 5 5
  pin xA 5 1
  pin xB 5 4
  pin y 0 2
end
net n0 : cc.d0 m.xA=m.xB
net n1 : cc.d1 m.y cc.fx
";
        let nl = parse_netlist(src).unwrap();
        let text = write_netlist(&nl);
        let again = parse_netlist(&text).unwrap();
        assert_eq!(again.stats(), nl.stats());
        assert_eq!(again.groups().len(), 1);
        assert!(again.groups()[0].sequenced);
        let n0 = again.net_by_name("n0").unwrap();
        assert_eq!(n0.pins[1].equivalents.len(), 1);
    }
}
