//! Pins and pin-placement constraints.
//!
//! Pins on custom cells may be specified in four ways (paper §2.4):
//! (1) a fixed location, (2) assignment to particular edge(s), (3) member
//! of a group assignable to particular edge(s), or (4) member of a group
//! with a fixed sequence ordering on particular edge(s).

use twmc_geom::Point;

use crate::{CellId, GroupId, NetId, PinId, SideSet};

/// How a pin's location is determined.
#[derive(Debug, Clone, PartialEq)]
pub enum PinPlacement {
    /// Fixed cell-local location. The canonical case for macro cells
    /// (whose instances may override the position per instance), also
    /// allowed on custom cells.
    Fixed(Point),
    /// Uncommitted pin restricted to pin sites on the given sides of a
    /// custom cell (paper case 2).
    Sites(SideSet),
    /// Member of a pin group; the group carries the side restriction and
    /// optional sequencing (paper cases 3 and 4).
    Grouped(GroupId),
}

/// A pin of the circuit.
#[derive(Debug, Clone)]
pub struct Pin {
    pub(crate) id: PinId,
    /// Pin name (unique within its cell).
    pub name: String,
    /// Owning cell.
    pub cell: CellId,
    /// The net this pin belongs to, if connected.
    pub net: Option<NetId>,
    /// Placement constraint.
    pub placement: PinPlacement,
}

impl Pin {
    /// The pin's id.
    #[inline]
    pub fn id(&self) -> PinId {
        self.id
    }

    /// Whether this pin's position is decided during annealing.
    pub fn is_uncommitted(&self) -> bool {
        !matches!(self.placement, PinPlacement::Fixed(_))
    }
}

/// A group of pins placed together on a custom cell.
#[derive(Debug, Clone)]
pub struct PinGroup {
    pub(crate) id: GroupId,
    /// Group name (unique within its cell).
    pub name: String,
    /// Owning cell.
    pub cell: CellId,
    /// Member pins, in sequence order when `sequenced`.
    pub pins: Vec<PinId>,
    /// Sides of the cell the group may occupy.
    pub sides: SideSet,
    /// Whether the members must keep their listed order along the edge
    /// (paper case 4).
    pub sequenced: bool,
}

impl PinGroup {
    /// The group's id.
    #[inline]
    pub fn id(&self) -> GroupId {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twmc_geom::Side;

    #[test]
    fn uncommitted_detection() {
        let fixed = Pin {
            id: PinId::from_index(0),
            name: "a".into(),
            cell: CellId::from_index(0),
            net: None,
            placement: PinPlacement::Fixed(Point::new(0, 0)),
        };
        assert!(!fixed.is_uncommitted());

        let sited = Pin {
            placement: PinPlacement::Sites(SideSet::single(Side::Left)),
            ..fixed.clone()
        };
        assert!(sited.is_uncommitted());

        let grouped = Pin {
            placement: PinPlacement::Grouped(GroupId::from_index(0)),
            ..fixed
        };
        assert!(grouped.is_uncommitted());
    }
}
