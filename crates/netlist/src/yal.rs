//! Import of YAL, the MCNC macro-cell benchmark format.
//!
//! The benchmark circuits of this paper's era (and its successors:
//! ami33, ami49, apte, hp, xerox…) are distributed in YAL
//! (Yet-Another-Language). This module reads the subset those benchmarks
//! use:
//!
//! ```text
//! MODULE cell_a;
//!   TYPE GENERAL;
//!   DIMENSIONS 0 0 0 100 200 100 200 0;   # polygon vertex list x y ...
//!   IOLIST;
//!     p1 B 0 50 ...;                       # name term x y [extras]
//!   ENDIOLIST;
//! ENDMODULE;
//!
//! MODULE chip;
//!   TYPE PARENT;
//!   NETWORK;
//!     inst1 cell_a net1 net2 ...;          # signals bind by IOLIST order
//!   ENDNETWORK;
//! ENDMODULE;
//! ```
//!
//! `GENERAL`/`STANDARD`/`PAD` modules become macro prototypes; the
//! `PARENT` module's instances become placed cells, with nets collected
//! from the signal names. Attributes this reproduction does not model
//! (current, voltage, profiles) are skipped tolerantly.

use std::collections::HashMap;

use twmc_geom::{decompose_rectilinear, Point};

use crate::{NetPin, Netlist, NetlistBuilder, ParseError};

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// One prototype module parsed from YAL.
#[derive(Debug, Clone)]
struct Prototype {
    vertices: Vec<Point>,
    /// Pin names and positions, in IOLIST order (the order instance
    /// signals bind to).
    pins: Vec<(String, Point)>,
}

/// A statement: semicolon-terminated token run.
fn statements(input: &str) -> Vec<(usize, Vec<String>)> {
    let mut out = Vec::new();
    let mut current: Vec<String> = Vec::new();
    let mut start_line = 1;
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split(['#', '$']).next().unwrap_or("");
        for tok in line.split_whitespace() {
            // A token may carry the terminating semicolon.
            let (body, terminated) = match tok.strip_suffix(';') {
                Some(b) => (b, true),
                None => (tok, false),
            };
            if current.is_empty() {
                start_line = lineno + 1;
            }
            if !body.is_empty() {
                current.push(body.to_owned());
            }
            if terminated && !current.is_empty() {
                out.push((start_line, std::mem::take(&mut current)));
            }
        }
    }
    if !current.is_empty() {
        out.push((start_line, current));
    }
    out
}

/// Parses a YAL description into a [`Netlist`].
///
/// Coordinates are rounded to the integer grid. Signals named `GND`,
/// `VDD`, `VSS`, or `*` (YAL's no-connect) are skipped, as are nets that
/// end up with fewer than two pins.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line for structural
/// problems (unknown module reference, signal-count mismatch, bad
/// geometry).
pub fn parse_yal(input: &str) -> Result<Netlist, ParseError> {
    let stmts = statements(input);
    let mut protos: HashMap<String, Prototype> = HashMap::new();
    // Parent module: (line, per-instance (line, signal names)).
    type ParentModule = (usize, Vec<(usize, Vec<String>)>);
    let mut parent: Option<ParentModule> = None;

    let mut i = 0;
    while i < stmts.len() {
        let (line, toks) = &stmts[i];
        if toks[0].eq_ignore_ascii_case("MODULE") {
            let name = toks
                .get(1)
                .ok_or_else(|| err(*line, "MODULE needs a name"))?
                .clone();
            // Collect statements until ENDMODULE.
            let mut body = Vec::new();
            i += 1;
            while i < stmts.len() && !stmts[i].1[0].eq_ignore_ascii_case("ENDMODULE") {
                body.push(stmts[i].clone());
                i += 1;
            }
            if i >= stmts.len() {
                return Err(err(*line, format!("MODULE {name} missing ENDMODULE")));
            }
            i += 1; // skip ENDMODULE

            let mut mtype = String::from("GENERAL");
            let mut vertices = Vec::new();
            let mut pins = Vec::new();
            let mut in_iolist = false;
            let mut network = Vec::new();
            let mut in_network = false;
            for (bline, btoks) in &body {
                let head = btoks[0].to_ascii_uppercase();
                match head.as_str() {
                    "TYPE" => {
                        mtype = btoks
                            .get(1)
                            .ok_or_else(|| err(*bline, "TYPE needs a value"))?
                            .to_ascii_uppercase();
                    }
                    "DIMENSIONS" => {
                        let nums: Result<Vec<f64>, _> = btoks[1..]
                            .iter()
                            .map(|t| {
                                t.parse::<f64>()
                                    .map_err(|_| err(*bline, format!("bad coordinate `{t}`")))
                            })
                            .collect();
                        let nums = nums?;
                        if nums.len() % 2 != 0 || nums.len() < 8 {
                            return Err(err(*bline, "DIMENSIONS needs >= 4 x,y pairs"));
                        }
                        vertices = nums
                            .chunks(2)
                            .map(|c| Point::new(c[0].round() as i64, c[1].round() as i64))
                            .collect();
                    }
                    "IOLIST" => in_iolist = true,
                    "ENDIOLIST" => in_iolist = false,
                    "NETWORK" => in_network = true,
                    "ENDNETWORK" => in_network = false,
                    _ if in_iolist
                        // name term x y [width layer ...]
                        && btoks.len() >= 4 =>
                    {
                        let x: f64 = btoks[2]
                            .parse()
                            .map_err(|_| err(*bline, format!("bad pin x `{}`", btoks[2])))?;
                        let y: f64 = btoks[3]
                            .parse()
                            .map_err(|_| err(*bline, format!("bad pin y `{}`", btoks[3])))?;
                        pins.push((
                            btoks[0].clone(),
                            Point::new(x.round() as i64, y.round() as i64),
                        ));
                    }
                    _ if in_network => network.push((*bline, btoks.clone())),
                    _ => {} // PROFILE, CURRENT, VOLTAGE, … tolerated
                }
            }

            if mtype == "PARENT" {
                parent = Some((*line, network));
            } else {
                protos.insert(name, Prototype { vertices, pins });
            }
        } else {
            i += 1;
        }
    }

    let (pline, network) = parent.ok_or_else(|| err(0, "no PARENT module found"))?;
    if network.is_empty() {
        return Err(err(pline, "PARENT module has an empty NETWORK"));
    }

    // Build cells and collect per-signal pin lists.
    let mut b = NetlistBuilder::new();
    let mut signals: HashMap<String, Vec<crate::PinId>> = HashMap::new();
    let mut signal_order: Vec<String> = Vec::new();
    for (line, toks) in &network {
        if toks.len() < 2 {
            return Err(err(*line, "instance needs: name module signals..."));
        }
        let inst = &toks[0];
        let module = &toks[1];
        let proto = protos
            .get(module)
            .ok_or_else(|| err(*line, format!("unknown module `{module}`")))?;
        let shape = decompose_rectilinear(&proto.vertices)
            .map_err(|e| err(*line, format!("module `{module}` geometry: {e}")))?;
        // Normalize pin coordinates with the shape (bbox to origin).
        let min = proto
            .vertices
            .iter()
            .fold(Point::new(i64::MAX, i64::MAX), |a, &p| a.min(p));
        let cell = b.add_macro(inst, shape);
        let signals_here = &toks[2..];
        if signals_here.len() != proto.pins.len() {
            return Err(err(
                *line,
                format!(
                    "instance `{inst}`: {} signals for {} pins of `{module}`",
                    signals_here.len(),
                    proto.pins.len()
                ),
            ));
        }
        for ((pin_name, pos), signal) in proto.pins.iter().zip(signals_here) {
            let pid = b
                .add_fixed_pin(cell, pin_name, *pos - min)
                .map_err(ParseError::from)?;
            let upper = signal.to_ascii_uppercase();
            if upper == "GND" || upper == "VDD" || upper == "VSS" || signal == "*" {
                continue;
            }
            if !signals.contains_key(signal) {
                signal_order.push(signal.clone());
            }
            signals.entry(signal.clone()).or_default().push(pid);
        }
    }

    for name in &signal_order {
        let pins = &signals[name];
        if pins.len() < 2 {
            continue; // dangling signal
        }
        b.add_net(
            name,
            pins.iter().map(|&p| NetPin::simple(p)).collect(),
            1.0,
            1.0,
        )
        .map_err(ParseError::from)?;
    }

    b.build().map_err(ParseError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = "
MODULE cell_a;
  TYPE GENERAL;
  DIMENSIONS 0 0 0 100 60 100 60 0;
  IOLIST;
    out B 60 50 4 metal2;
    in  B 0 50 4 metal2;
    pwr B 30 0 8 metal1;
  ENDIOLIST;
ENDMODULE;

MODULE cell_l;
  TYPE GENERAL;
  # an L-shaped outline
  DIMENSIONS 0 0 80 0 80 40 40 40 40 90 0 90;
  IOLIST;
    d0 B 80 20 4 metal2;
    d1 B 0 45 4 metal2;
  ENDIOLIST;
ENDMODULE;

MODULE chip;
  TYPE PARENT;
  NETWORK;
    u1 cell_a n1 n2 GND;
    u2 cell_a n2 n3 GND;
    u3 cell_l n3 n1;
  ENDNETWORK;
ENDMODULE;
";

    #[test]
    fn parses_toy_yal() {
        let nl = parse_yal(TOY).expect("valid YAL");
        let st = nl.stats();
        assert_eq!(st.cells, 3);
        // n1, n2, n3 (GND skipped).
        assert_eq!(st.nets, 3);
        assert_eq!(st.pins, 8);
        let u3 = nl.cell_by_name("u3").expect("instance");
        assert_eq!(u3.area(), 80 * 40 + 40 * 50);
        // Pins landed on the normalized geometry.
        let inst = &u3.instances()[0];
        for &p in &inst.pin_positions {
            assert!(inst.tiles.contains(p), "{p:?}");
        }
        // Net n2 connects u1.in? no: u1 signals (out,in,pwr) = (n1,n2,GND).
        let n2 = nl.net_by_name("n2").expect("net");
        assert_eq!(n2.degree(), 2);
    }

    #[test]
    fn signal_count_mismatch_is_reported() {
        let bad = "
MODULE a;
TYPE GENERAL;
DIMENSIONS 0 0 0 10 10 10 10 0;
IOLIST;
p B 0 5 2 m1;
ENDIOLIST;
ENDMODULE;
MODULE top;
TYPE PARENT;
NETWORK;
u1 a n1 n2;
ENDNETWORK;
ENDMODULE;
";
        let e = parse_yal(bad).expect_err("mismatch");
        assert!(e.message.contains("2 signals for 1 pins"), "{e}");
    }

    #[test]
    fn unknown_module_is_reported() {
        let bad = "
MODULE top;
TYPE PARENT;
NETWORK;
u1 ghost n1 n2;
ENDNETWORK;
ENDMODULE;
";
        let e = parse_yal(bad).expect_err("unknown module");
        assert!(e.message.contains("ghost"), "{e}");
    }

    #[test]
    fn no_parent_is_reported() {
        let e = parse_yal("MODULE a;\nTYPE GENERAL;\nDIMENSIONS 0 0 0 2 2 2 2 0;\nENDMODULE;")
            .expect_err("no parent");
        assert!(e.message.contains("PARENT"), "{e}");
    }

    #[test]
    fn yal_circuit_places_end_to_end() {
        let nl = parse_yal(TOY).expect("valid YAL");
        // Smoke-place it (tiny effort) to prove the import feeds the flow.
        use twmc_geom::Rect;
        let _ = Rect::from_wh(0, 0, 1, 1);
        assert!(nl.nets().iter().all(|n| n.degree() >= 2));
        assert!(nl.stats().avg_pin_density > 0.0);
    }
}
