//! Seeded synthetic circuit generation.
//!
//! The paper evaluates on nine proprietary industrial circuits that are
//! not available. This module generates synthetic circuits with the
//! **exact published cell/net/pin counts** of each (see [`PAPER_CIRCUITS`]),
//! with realistic cell-size spread, pins on all four sides, and net
//! connectivity locality, so every experiment keyed on those counts can be
//! rerun. See DESIGN.md §2 for the substitution rationale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use twmc_geom::{BoundaryEdge, Point, Rect, TileSet};

use crate::{AspectRange, NetPin, Netlist, NetlistBuilder, PinId, SideSet};

/// Parameters for synthetic circuit generation.
#[derive(Debug, Clone)]
pub struct SynthParams {
    /// Number of cells.
    pub cells: usize,
    /// Number of nets.
    pub nets: usize,
    /// Total number of pins (including equivalent pins).
    pub pins: usize,
    /// Fraction of cells generated as custom (resizable) cells.
    pub custom_fraction: f64,
    /// Fraction of macro cells given a rectilinear (L-shaped) outline.
    pub rectilinear_fraction: f64,
    /// Mean cell dimension in grid units.
    pub avg_cell_dim: i64,
    /// Fraction of net connection points that receive an electrically
    /// equivalent alternative pin. Equivalents are *extra* pins on top of
    /// the `pins` budget.
    pub equiv_pin_fraction: f64,
    /// RNG seed; equal seeds give bit-identical circuits.
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            cells: 25,
            nets: 100,
            pins: 400,
            custom_fraction: 0.0,
            rectilinear_fraction: 0.2,
            avg_cell_dim: 40,
            equiv_pin_fraction: 0.0,
            seed: 1,
        }
    }
}

/// Published size of one of the paper's nine industrial circuits
/// (Tables 3 and 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitProfile {
    /// Circuit name as printed in the paper.
    pub name: &'static str,
    /// Number of cells.
    pub cells: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of pins.
    pub pins: usize,
}

/// The nine industrial circuits of the paper's Tables 3 and 4.
pub const PAPER_CIRCUITS: [CircuitProfile; 9] = [
    CircuitProfile {
        name: "i1",
        cells: 33,
        nets: 121,
        pins: 452,
    },
    CircuitProfile {
        name: "p1",
        cells: 11,
        nets: 83,
        pins: 309,
    },
    CircuitProfile {
        name: "x1",
        cells: 10,
        nets: 267,
        pins: 762,
    },
    CircuitProfile {
        name: "i2",
        cells: 23,
        nets: 127,
        pins: 577,
    },
    CircuitProfile {
        name: "i3",
        cells: 18,
        nets: 38,
        pins: 102,
    },
    CircuitProfile {
        name: "l1",
        cells: 62,
        nets: 570,
        pins: 4309,
    },
    CircuitProfile {
        name: "d2",
        cells: 20,
        nets: 656,
        pins: 1776,
    },
    CircuitProfile {
        name: "d1",
        cells: 17,
        nets: 288,
        pins: 837,
    },
    CircuitProfile {
        name: "d3",
        cells: 17,
        nets: 136,
        pins: 665,
    },
];

/// Looks up a paper circuit profile by name.
pub fn paper_circuit(name: &str) -> Option<CircuitProfile> {
    PAPER_CIRCUITS.iter().copied().find(|c| c.name == name)
}

/// Synthesizes a circuit matching a paper profile, with a mixed
/// macro/custom population (the chip-planning case the paper emphasizes).
pub fn synthesize_profile(profile: CircuitProfile, seed: u64) -> Netlist {
    synthesize(&SynthParams {
        cells: profile.cells,
        nets: profile.nets,
        pins: profile.pins,
        custom_fraction: 0.25,
        rectilinear_fraction: 0.2,
        avg_cell_dim: 40,
        equiv_pin_fraction: 0.0,
        seed,
    })
}

/// Approximately normal sample via the Irwin–Hall sum of 6 uniforms,
/// rescaled to mean 0 / std 1.
fn approx_normal(rng: &mut StdRng) -> f64 {
    let s: f64 = (0..6).map(|_| rng.random::<f64>()).sum();
    (s - 3.0) * (12.0f64 / 6.0).sqrt()
}

/// Generates a synthetic circuit.
///
/// The generated circuit has exactly `params.cells` cells,
/// `params.nets` nets, and `params.pins` pins, provided
/// `pins >= 2 * nets` (otherwise the pin count is raised to `2 * nets`,
/// the minimum for valid two-point nets) and `equiv_pin_fraction` is zero
/// (equivalent pins are generated on top of the budget).
///
/// # Panics
///
/// Panics if `cells` or `nets` is zero.
pub fn synthesize(params: &SynthParams) -> Netlist {
    assert!(params.cells > 0, "need at least one cell");
    assert!(params.nets > 0, "need at least one net");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = NetlistBuilder::new();

    let n_custom = ((params.cells as f64) * params.custom_fraction).round() as usize;
    let pins_budget = params.pins.max(2 * params.nets);

    // --- Cells ---------------------------------------------------------
    // Log-normal-ish dimension spread: a few large blocks, many smaller.
    let mut cell_ids = Vec::with_capacity(params.cells);
    let mut is_custom = Vec::with_capacity(params.cells);
    for i in 0..params.cells {
        let scale = (approx_normal(&mut rng) * 0.45).exp();
        let base = ((params.avg_cell_dim as f64) * scale).max(6.0);
        let ar = (approx_normal(&mut rng) * 0.3).exp().clamp(0.4, 2.5);
        let w = ((base * ar.sqrt()).round() as i64).max(4);
        let h = ((base / ar.sqrt()).round() as i64).max(4);
        let custom = i < n_custom;
        let name = format!("{}{}", if custom { "cc" } else { "m" }, i);
        let id = if custom {
            b.add_custom(
                &name,
                w * h,
                AspectRange::Continuous { min: 0.5, max: 2.0 },
                8,
            )
        } else if rng.random::<f64>() < params.rectilinear_fraction && w >= 8 && h >= 8 {
            // L-shaped macro: full lower slab plus a partial upper slab.
            let notch_w = w / 2;
            let notch_h = h / 2;
            let tiles = TileSet::new(vec![
                Rect::from_wh(0, 0, w, h - notch_h),
                Rect::from_wh(0, h - notch_h, w - notch_w, notch_h),
            ])
            .expect("L tiles are disjoint");
            b.add_macro(&name, tiles)
        } else {
            b.add_macro(&name, TileSet::rect(w, h))
        };
        cell_ids.push(id);
        is_custom.push(custom);
    }

    // --- Net degrees ----------------------------------------------------
    // Every net needs >= 2 connection points; distribute the remaining
    // budget with a heavy-ish tail (most nets small, a few large buses).
    let mut degrees = vec![2usize; params.nets];
    let mut remaining = pins_budget - 2 * params.nets;
    let max_degree = (params.cells * 4).max(8);
    while remaining > 0 {
        if degrees.iter().all(|&d| d >= max_degree) {
            // Every net is at the cap; dump the remainder to keep the pin
            // count exact (only reachable for extreme pin/net ratios).
            degrees[0] += remaining;
            break;
        }
        let n = rng.random_range(0..params.nets);
        if degrees[n] < max_degree {
            // Preferential attachment: bigger nets grow further, giving a
            // tail like real bus/clock nets.
            let grow = 1 + (degrees[n] as f64).sqrt() as usize;
            let grow = grow.min(remaining).min(max_degree - degrees[n]);
            degrees[n] += grow;
            remaining -= grow;
        }
    }

    // --- Pins and nets ---------------------------------------------------
    // Locality: each net picks a center cell, then nearby cell indices.
    let sigma = (params.cells as f64 / 6.0).max(1.0);
    let mut pin_counter = 0usize;
    for (ni, &deg) in degrees.iter().enumerate() {
        let center = rng.random_range(0..params.cells) as f64;
        let mut net_pins: Vec<NetPin> = Vec::with_capacity(deg);
        for _ in 0..deg {
            let off = approx_normal(&mut rng) * sigma;
            let ci = ((center + off).round() as i64).rem_euclid(params.cells as i64) as usize;
            let pid = make_pin(
                &mut b,
                &mut rng,
                cell_ids[ci],
                is_custom[ci],
                &mut pin_counter,
            );
            net_pins.push(NetPin::simple(pid));
        }
        // Optional equivalent pins (consume budget where available).
        if params.equiv_pin_fraction > 0.0 {
            for np in net_pins.iter_mut() {
                if rng.random::<f64>() < params.equiv_pin_fraction {
                    let ci = rng.random_range(0..params.cells);
                    let pid = make_pin(
                        &mut b,
                        &mut rng,
                        cell_ids[ci],
                        is_custom[ci],
                        &mut pin_counter,
                    );
                    np.equivalents.push(pid);
                }
            }
        }
        b.add_net(&format!("n{ni}"), net_pins, 1.0, 1.0)
            .expect("fresh pins cannot be on another net");
    }

    b.build().expect("synthesized circuit is valid")
}

/// Creates one pin on the given cell: a random boundary point for macro
/// cells, a sites-constrained pin for custom cells.
fn make_pin(
    b: &mut NetlistBuilder,
    rng: &mut StdRng,
    cell: crate::CellId,
    custom: bool,
    counter: &mut usize,
) -> PinId {
    let name = format!("p{}", *counter);
    *counter += 1;
    if custom {
        b.add_site_pin(cell, &name, SideSet::ALL)
            .expect("cell exists")
    } else {
        let pos = random_boundary_point(b.peek_primary_boundary(cell), rng);
        b.add_fixed_pin(cell, &name, pos).expect("cell exists")
    }
}

/// Picks a uniformly random point on the boundary (weighted by edge
/// length).
fn random_boundary_point(edges: Vec<BoundaryEdge>, rng: &mut StdRng) -> Point {
    let total: i64 = edges.iter().map(|e| e.len().max(1)).sum();
    let mut pick = rng.random_range(0..total);
    for e in &edges {
        let l = e.len().max(1);
        if pick < l {
            let along = e.span.lo() + pick;
            return if e.side.is_vertical() {
                Point::new(e.coord, along)
            } else {
                Point::new(along, e.coord)
            };
        }
        pick -= l;
    }
    // Fallback (cannot happen: pick < total).
    let e = edges.last().expect("cells have boundaries");
    if e.side.is_vertical() {
        Point::new(e.coord, e.span.lo())
    } else {
        Point::new(e.span.lo(), e.coord)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts() {
        let nl = synthesize(&SynthParams {
            cells: 12,
            nets: 30,
            pins: 100,
            ..Default::default()
        });
        let st = nl.stats();
        assert_eq!(st.cells, 12);
        assert_eq!(st.nets, 30);
        assert_eq!(st.pins, 100);
    }

    #[test]
    fn paper_profiles_match_published_counts() {
        for profile in PAPER_CIRCUITS {
            let nl = synthesize_profile(profile, 42);
            let st = nl.stats();
            assert_eq!(st.cells, profile.cells, "{}", profile.name);
            assert_eq!(st.nets, profile.nets, "{}", profile.name);
            assert_eq!(st.pins, profile.pins, "{}", profile.name);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = SynthParams {
            cells: 8,
            nets: 20,
            pins: 60,
            custom_fraction: 0.25,
            ..Default::default()
        };
        let a = synthesize(&p);
        let c = synthesize(&p);
        assert_eq!(crate::write_netlist(&a), crate::write_netlist(&c));
        let d = synthesize(&SynthParams { seed: 2, ..p });
        assert_ne!(crate::write_netlist(&a), crate::write_netlist(&d));
    }

    #[test]
    fn all_nets_at_least_two_points() {
        let nl = synthesize(&SynthParams {
            cells: 5,
            nets: 40,
            pins: 60, // below 2*nets: generator raises the budget
            ..Default::default()
        });
        assert!(nl.nets().iter().all(|n| n.degree() >= 2));
        assert_eq!(nl.stats().pins, 80);
    }

    #[test]
    fn custom_fraction_respected() {
        let nl = synthesize(&SynthParams {
            cells: 20,
            nets: 30,
            pins: 80,
            custom_fraction: 0.5,
            ..Default::default()
        });
        let customs = nl.cells().iter().filter(|c| c.is_custom()).count();
        assert_eq!(customs, 10);
    }

    #[test]
    fn equivalent_pins_generated() {
        let nl = synthesize(&SynthParams {
            cells: 10,
            nets: 30,
            pins: 120,
            equiv_pin_fraction: 0.3,
            seed: 7,
            ..Default::default()
        });
        let equivs: usize = nl
            .nets()
            .iter()
            .flat_map(|n| n.pins.iter())
            .map(|np| np.equivalents.len())
            .sum();
        assert!(equivs > 0);
        // Budget accounting: total pins still exact.
        assert_eq!(nl.stats().pins, 120 + equivs);
    }

    #[test]
    fn macro_pins_on_boundary() {
        let nl = synthesize(&SynthParams {
            cells: 10,
            nets: 25,
            pins: 90,
            custom_fraction: 0.0,
            seed: 3,
            ..Default::default()
        });
        for cell in nl.cells() {
            let inst = &cell.instances()[0];
            for &pos in &inst.pin_positions {
                assert!(inst.tiles.contains(pos), "{} pin {pos} off-cell", cell.name);
            }
        }
    }
}
