//! Cells: fixed-geometry macro cells and resizable custom cells.
//!
//! TimberWolfMC is applicable to circuits containing cells of any
//! rectilinear shape; cells may have fixed geometry including pin
//! locations (*macro* cells) or an estimated area with a specified
//! aspect-ratio range and pins that need to be placed (*custom* cells).
//! Cells may also have several possible instances, of which the most
//! suitable is selected during annealing (paper §1).

use twmc_geom::{Point, TileSet};

use crate::{CellId, PinId};

/// Permitted aspect ratios (width / height) for a custom cell.
///
/// The paper permits custom cells to have aspect ratios in a continuous
/// *or* discrete range (§1).
#[derive(Debug, Clone, PartialEq)]
pub enum AspectRange {
    /// Any ratio within `[min, max]`.
    Continuous {
        /// Smallest permitted width/height ratio.
        min: f64,
        /// Largest permitted width/height ratio.
        max: f64,
    },
    /// One of an explicit list of ratios.
    Discrete(Vec<f64>),
}

impl AspectRange {
    /// A range containing exactly one ratio.
    pub fn fixed(ratio: f64) -> AspectRange {
        AspectRange::Discrete(vec![ratio])
    }

    /// Whether `ratio` is permitted (within 1e-9 for discrete ranges).
    pub fn contains(&self, ratio: f64) -> bool {
        match self {
            AspectRange::Continuous { min, max } => *min <= ratio && ratio <= *max,
            AspectRange::Discrete(rs) => rs.iter().any(|r| (r - ratio).abs() < 1e-9),
        }
    }

    /// The permitted ratio closest to `ratio`.
    pub fn clamp(&self, ratio: f64) -> f64 {
        match self {
            AspectRange::Continuous { min, max } => ratio.clamp(*min, *max),
            AspectRange::Discrete(rs) => rs
                .iter()
                .copied()
                .min_by(|a, b| {
                    (a - ratio)
                        .abs()
                        .partial_cmp(&(b - ratio).abs())
                        .expect("aspect ratios are finite")
                })
                .unwrap_or(1.0),
        }
    }

    /// A representative default ratio (geometric mean of the bounds, or the
    /// first discrete option).
    pub fn default_ratio(&self) -> f64 {
        match self {
            AspectRange::Continuous { min, max } => (min * max).sqrt(),
            AspectRange::Discrete(rs) => rs.first().copied().unwrap_or(1.0),
        }
    }

    /// Maps a uniform sample `u ∈ [0, 1)` to a permitted ratio; used by the
    /// aspect-ratio move of the `generate` function.
    pub fn sample(&self, u: f64) -> f64 {
        match self {
            AspectRange::Continuous { min, max } => {
                // Sample uniformly in log space so 0.5 and 2.0 are
                // symmetric choices around 1.0.
                (min.ln() + u * (max.ln() - min.ln())).exp()
            }
            AspectRange::Discrete(rs) => {
                if rs.is_empty() {
                    1.0
                } else {
                    rs[((u * rs.len() as f64) as usize).min(rs.len() - 1)]
                }
            }
        }
    }
}

/// One selectable fixed geometry of a macro cell.
#[derive(Debug, Clone)]
pub struct CellInstance {
    /// Instance name (unique within the cell).
    pub name: String,
    /// Cell-local geometry (bounding box anchored at the origin).
    pub tiles: TileSet,
    /// Fixed cell-local pin positions, one entry per pin of the owning
    /// cell, in the cell's pin order.
    pub pin_positions: Vec<Point>,
}

/// The geometric description of a cell.
#[derive(Debug, Clone)]
pub enum CellGeometry {
    /// Macro cell: one or more fixed-geometry instances.
    Fixed {
        /// The selectable instances (at least one).
        instances: Vec<CellInstance>,
    },
    /// Custom cell: estimated area, realized as a rectangle whose aspect
    /// ratio the annealer chooses within `aspect`.
    Flexible {
        /// Estimated cell area in grid units².
        area: i64,
        /// Permitted aspect ratios.
        aspect: AspectRange,
    },
}

/// Computes the rectangle dimensions `(w, h)` realizing `area` at
/// width/height ratio `aspect`, with both dimensions at least 1.
///
/// The realized area can differ slightly from `area` due to grid rounding;
/// `h` is chosen so `w × h` is as close to `area` as the grid permits.
///
/// # Examples
///
/// ```
/// use twmc_netlist::flexible_dims;
///
/// assert_eq!(flexible_dims(400, 1.0), (20, 20));
/// assert_eq!(flexible_dims(400, 4.0), (40, 10));
/// ```
pub fn flexible_dims(area: i64, aspect: f64) -> (i64, i64) {
    let a = (area.max(1)) as f64;
    let w = (a * aspect).sqrt().round().max(1.0) as i64;
    let h = ((a / w as f64).round().max(1.0)) as i64;
    (w, h)
}

/// A cell of the circuit.
#[derive(Debug, Clone)]
pub struct Cell {
    pub(crate) id: CellId,
    /// Cell name (unique within the netlist).
    pub name: String,
    /// Geometry: fixed instances (macro) or resizable rectangle (custom).
    pub geometry: CellGeometry,
    /// Pins belonging to this cell, in declaration order.
    pub pins: Vec<PinId>,
    /// Number of pin sites defined along each edge of a custom cell
    /// (paper §2.4); unused for macro cells.
    pub sites_per_edge: u32,
}

impl Cell {
    /// The cell's id.
    #[inline]
    pub fn id(&self) -> CellId {
        self.id
    }

    /// Whether this is a custom (resizable, pin-placeable) cell.
    #[inline]
    pub fn is_custom(&self) -> bool {
        matches!(self.geometry, CellGeometry::Flexible { .. })
    }

    /// Number of selectable instances (1 for custom cells).
    pub fn instance_count(&self) -> usize {
        match &self.geometry {
            CellGeometry::Fixed { instances } => instances.len(),
            CellGeometry::Flexible { .. } => 1,
        }
    }

    /// The instances of a macro cell (empty slice for custom cells).
    pub fn instances(&self) -> &[CellInstance] {
        match &self.geometry {
            CellGeometry::Fixed { instances } => instances,
            CellGeometry::Flexible { .. } => &[],
        }
    }

    /// The default shape: instance 0 for macro cells, or the rectangle at
    /// the default aspect ratio for custom cells.
    pub fn default_shape(&self) -> TileSet {
        match &self.geometry {
            CellGeometry::Fixed { instances } => instances[0].tiles.clone(),
            CellGeometry::Flexible { area, aspect } => {
                let (w, h) = flexible_dims(*area, aspect.default_ratio());
                TileSet::rect(w, h)
            }
        }
    }

    /// The cell area of the default shape.
    pub fn area(&self) -> i64 {
        match &self.geometry {
            CellGeometry::Fixed { instances } => instances[0].tiles.area(),
            CellGeometry::Flexible { area, .. } => *area,
        }
    }

    /// Perimeter of the default shape, for the circuit-average pin density.
    pub fn perimeter(&self) -> i64 {
        self.default_shape().perimeter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aspect_range_continuous() {
        let r = AspectRange::Continuous { min: 0.5, max: 2.0 };
        assert!(r.contains(1.0) && r.contains(0.5) && r.contains(2.0));
        assert!(!r.contains(0.4) && !r.contains(2.5));
        assert_eq!(r.clamp(3.0), 2.0);
        assert_eq!(r.clamp(0.1), 0.5);
        assert!((r.default_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aspect_range_discrete() {
        let r = AspectRange::Discrete(vec![0.5, 1.0, 2.0]);
        assert!(r.contains(1.0));
        assert!(!r.contains(0.75));
        assert_eq!(r.clamp(0.8), 1.0);
        assert_eq!(r.clamp(0.6), 0.5);
        assert_eq!(r.default_ratio(), 0.5);
    }

    #[test]
    fn aspect_sampling_stays_in_range() {
        let r = AspectRange::Continuous { min: 0.5, max: 2.0 };
        for i in 0..10 {
            let u = i as f64 / 10.0;
            assert!(r.contains(r.sample(u)), "u={u}");
        }
        let d = AspectRange::Discrete(vec![0.25, 4.0]);
        assert_eq!(d.sample(0.0), 0.25);
        assert_eq!(d.sample(0.99), 4.0);
    }

    #[test]
    fn flexible_dims_respects_area_and_ratio() {
        let (w, h) = flexible_dims(400, 1.0);
        assert_eq!((w, h), (20, 20));
        let (w, h) = flexible_dims(400, 0.25);
        assert_eq!((w, h), (10, 40));
        // Degenerate inputs still give positive dims.
        let (w, h) = flexible_dims(1, 100.0);
        assert!(w >= 1 && h >= 1);
        // Realized area close to requested.
        let (w, h) = flexible_dims(1000, 1.7);
        let realized = w * h;
        assert!((realized - 1000).abs() <= (w.max(h)), "{w}x{h}");
    }
}
