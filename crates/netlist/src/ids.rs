//! Typed indices for cells, pins, nets, and pin groups.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn from_index(i: usize) -> Self {
                $name(i as u32)
            }

            /// The raw index (usable into the owning [`crate::Netlist`] slices).
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a cell within a [`crate::Netlist`].
    CellId,
    "c"
);
id_type!(
    /// Identifier of a pin within a [`crate::Netlist`].
    PinId,
    "p"
);
id_type!(
    /// Identifier of a net within a [`crate::Netlist`].
    NetId,
    "n"
);
id_type!(
    /// Identifier of a pin group within a [`crate::Netlist`].
    GroupId,
    "g"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let c = CellId::from_index(7);
        assert_eq!(c.index(), 7);
        assert_eq!(format!("{c}"), "c7");
        assert_eq!(format!("{}", NetId::from_index(3)), "n3");
        assert_eq!(format!("{}", PinId::from_index(0)), "p0");
        assert_eq!(format!("{}", GroupId::from_index(1)), "g1");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CellId::from_index(1) < CellId::from_index(2));
    }
}
