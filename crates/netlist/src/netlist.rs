//! The netlist container and its validating builder.

use std::collections::HashMap;

use twmc_geom::{Point, TileSet};

use crate::{
    AspectRange, Cell, CellGeometry, CellId, CellInstance, GroupId, Net, NetId, NetPin, Pin,
    PinGroup, PinId, PinPlacement, SideSet,
};

/// Errors detected while building or validating a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A cell name was used twice.
    DuplicateCellName(String),
    /// A pin name was used twice on the same cell.
    DuplicatePinName(String, String),
    /// A net name was used twice.
    DuplicateNetName(String),
    /// A group name was used twice on the same cell.
    DuplicateGroupName(String, String),
    /// Referenced id does not exist.
    UnknownId(String),
    /// A fixed pin position lies outside its instance geometry.
    PinOutsideCell {
        /// Offending cell name.
        cell: String,
        /// Offending pin name.
        pin: String,
        /// Instance index.
        instance: usize,
    },
    /// A pin was connected to more than one net.
    PinOnMultipleNets(String),
    /// A site/group placement was used on a macro cell.
    UncommittedPinOnMacro(String, String),
    /// A group member belongs to a different cell than the group.
    GroupMemberWrongCell(String, String),
    /// An instance is missing a position for some pin.
    InstanceMissingPinPosition(String, usize),
    /// A numeric parameter was out of range (message describes it).
    BadParameter(String),
}

impl core::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        use NetlistError::*;
        match self {
            DuplicateCellName(n) => write!(f, "duplicate cell name `{n}`"),
            DuplicatePinName(c, p) => write!(f, "duplicate pin name `{p}` on cell `{c}`"),
            DuplicateNetName(n) => write!(f, "duplicate net name `{n}`"),
            DuplicateGroupName(c, g) => write!(f, "duplicate group name `{g}` on cell `{c}`"),
            UnknownId(what) => write!(f, "unknown id: {what}"),
            PinOutsideCell {
                cell,
                pin,
                instance,
            } => write!(
                f,
                "pin `{pin}` of cell `{cell}` lies outside instance {instance} geometry"
            ),
            PinOnMultipleNets(p) => write!(f, "pin `{p}` is connected to more than one net"),
            UncommittedPinOnMacro(c, p) => write!(
                f,
                "pin `{p}` on macro cell `{c}` must have a fixed position"
            ),
            GroupMemberWrongCell(g, p) => {
                write!(f, "pin `{p}` belongs to a different cell than group `{g}`")
            }
            InstanceMissingPinPosition(c, i) => {
                write!(f, "instance {i} of cell `{c}` is missing pin positions")
            }
            BadParameter(msg) => write!(f, "bad parameter: {msg}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Aggregate statistics of a circuit, as reported in the paper's tables.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Number of cells `N_c`.
    pub cells: usize,
    /// Number of nets `N_n`.
    pub nets: usize,
    /// Total number of pins.
    pub pins: usize,
    /// Sum of default-shape cell areas.
    pub total_area: i64,
    /// Average cell area (the paper's `c̄_a`, before interconnect
    /// allowance).
    pub avg_area: f64,
    /// Sum of default-shape cell perimeters.
    pub total_perimeter: i64,
    /// Circuit-average pin density `D̄_p` = pins / total perimeter
    /// (paper §2.2 factor 3).
    pub avg_pin_density: f64,
}

/// A complete, validated circuit: cells, pins, nets, and pin groups.
///
/// Construct via [`NetlistBuilder`] or parse from text via
/// [`crate::parse_netlist`].
#[derive(Debug, Clone)]
pub struct Netlist {
    cells: Vec<Cell>,
    pins: Vec<Pin>,
    nets: Vec<Net>,
    groups: Vec<PinGroup>,
}

impl Netlist {
    /// All cells.
    #[inline]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All pins.
    #[inline]
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// All nets.
    #[inline]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All pin groups.
    #[inline]
    pub fn groups(&self) -> &[PinGroup] {
        &self.groups
    }

    /// Looks up a cell.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Looks up a pin.
    #[inline]
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// Looks up a net.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks up a pin group.
    #[inline]
    pub fn group(&self, id: GroupId) -> &PinGroup {
        &self.groups[id.index()]
    }

    /// Finds a cell by name.
    pub fn cell_by_name(&self, name: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// Finds a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<&Net> {
        self.nets.iter().find(|n| n.name == name)
    }

    /// Finds a pin by `cell.pin` qualified name.
    pub fn pin_by_name(&self, cell: &str, pin: &str) -> Option<&Pin> {
        let c = self.cell_by_name(cell)?;
        c.pins.iter().map(|&p| self.pin(p)).find(|p| p.name == pin)
    }

    /// Nets attached to the given cell (deduplicated, in id order).
    pub fn nets_of_cell(&self, cell: CellId) -> Vec<NetId> {
        let mut out: Vec<NetId> = self.cells[cell.index()]
            .pins
            .iter()
            .filter_map(|&p| self.pin(p).net)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Computes the aggregate circuit statistics.
    pub fn stats(&self) -> CircuitStats {
        let total_area: i64 = self.cells.iter().map(|c| c.area()).sum();
        let total_perimeter: i64 = self.cells.iter().map(|c| c.perimeter()).sum();
        let pins = self.pins.len();
        CircuitStats {
            cells: self.cells.len(),
            nets: self.nets.len(),
            pins,
            total_area,
            avg_area: if self.cells.is_empty() {
                0.0
            } else {
                total_area as f64 / self.cells.len() as f64
            },
            total_perimeter,
            avg_pin_density: if total_perimeter == 0 {
                0.0
            } else {
                pins as f64 / total_perimeter as f64
            },
        }
    }
}

/// Incrementally builds and validates a [`Netlist`].
///
/// # Examples
///
/// ```
/// use twmc_geom::TileSet;
/// use twmc_netlist::{NetlistBuilder, NetPin};
/// use twmc_geom::Point;
///
/// let mut b = NetlistBuilder::new();
/// let a = b.add_macro("a", TileSet::rect(10, 10));
/// let c = b.add_macro("b", TileSet::rect(8, 6));
/// let p1 = b.add_fixed_pin(a, "o", Point::new(10, 5))?;
/// let p2 = b.add_fixed_pin(c, "i", Point::new(0, 3))?;
/// b.add_net("w", vec![NetPin::simple(p1), NetPin::simple(p2)], 1.0, 1.0)?;
/// let netlist = b.build()?;
/// assert_eq!(netlist.stats().cells, 2);
/// # Ok::<(), twmc_netlist::NetlistError>(())
/// ```
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    cells: Vec<Cell>,
    pins: Vec<Pin>,
    nets: Vec<Net>,
    groups: Vec<PinGroup>,
    cell_names: HashMap<String, CellId>,
    net_names: HashMap<String, NetId>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a macro cell with a single instance of the given geometry.
    pub fn add_macro(&mut self, name: &str, tiles: TileSet) -> CellId {
        let id = CellId::from_index(self.cells.len());
        self.cell_names.insert(name.to_owned(), id);
        self.cells.push(Cell {
            id,
            name: name.to_owned(),
            geometry: CellGeometry::Fixed {
                instances: vec![CellInstance {
                    name: "default".to_owned(),
                    tiles,
                    pin_positions: Vec::new(),
                }],
            },
            pins: Vec::new(),
            sites_per_edge: 0,
        });
        id
    }

    /// Adds an alternative instance to a macro cell. Pin positions for the
    /// cell's existing pins must be supplied in pin order.
    ///
    /// # Errors
    ///
    /// Fails if the cell is custom or `pin_positions` has the wrong length.
    pub fn add_instance(
        &mut self,
        cell: CellId,
        name: &str,
        tiles: TileSet,
        pin_positions: Vec<Point>,
    ) -> Result<usize, NetlistError> {
        let c = self
            .cells
            .get_mut(cell.index())
            .ok_or_else(|| NetlistError::UnknownId(format!("cell {cell}")))?;
        let npins = c.pins.len();
        match &mut c.geometry {
            CellGeometry::Fixed { instances } => {
                if pin_positions.len() != npins {
                    return Err(NetlistError::InstanceMissingPinPosition(
                        c.name.clone(),
                        instances.len(),
                    ));
                }
                instances.push(CellInstance {
                    name: name.to_owned(),
                    tiles,
                    pin_positions,
                });
                Ok(instances.len() - 1)
            }
            CellGeometry::Flexible { .. } => Err(NetlistError::BadParameter(format!(
                "cell `{}` is custom and cannot have instances",
                c.name
            ))),
        }
    }

    /// Replaces the geometry of a macro cell's primary instance (used by
    /// the parser, which learns the tiles after creating the cell).
    ///
    /// # Errors
    ///
    /// Fails if the cell is unknown or custom.
    pub fn replace_primary_geometry(
        &mut self,
        cell: CellId,
        tiles: TileSet,
    ) -> Result<(), NetlistError> {
        let c = self
            .cells
            .get_mut(cell.index())
            .ok_or_else(|| NetlistError::UnknownId(format!("cell {cell}")))?;
        match &mut c.geometry {
            CellGeometry::Fixed { instances } => {
                instances[0].tiles = tiles;
                Ok(())
            }
            CellGeometry::Flexible { .. } => Err(NetlistError::BadParameter(format!(
                "cell `{}` is custom and has no fixed geometry",
                c.name
            ))),
        }
    }

    /// Adds a custom cell with estimated `area`, permitted aspect-ratio
    /// range, and `sites_per_edge` pin sites along each edge (paper §2.4).
    pub fn add_custom(
        &mut self,
        name: &str,
        area: i64,
        aspect: AspectRange,
        sites_per_edge: u32,
    ) -> CellId {
        let id = CellId::from_index(self.cells.len());
        self.cell_names.insert(name.to_owned(), id);
        self.cells.push(Cell {
            id,
            name: name.to_owned(),
            geometry: CellGeometry::Flexible { area, aspect },
            pins: Vec::new(),
            sites_per_edge: sites_per_edge.max(1),
        });
        id
    }

    /// The boundary edges of a macro cell's primary-instance geometry, for
    /// callers (e.g. the synthetic generator) that place pins on the
    /// boundary before the netlist is built.
    ///
    /// Returns an empty vector for custom cells or unknown ids.
    pub fn peek_primary_boundary(&self, cell: CellId) -> Vec<twmc_geom::BoundaryEdge> {
        match self.cells.get(cell.index()).map(|c| &c.geometry) {
            Some(CellGeometry::Fixed { instances }) => {
                twmc_geom::boundary_edges(&instances[0].tiles)
            }
            _ => Vec::new(),
        }
    }

    /// Adds a pin with a fixed cell-local position. For macro cells the
    /// position is recorded on every existing instance (override
    /// per-instance positions via [`NetlistBuilder::add_instance`]).
    ///
    /// # Errors
    ///
    /// Fails if the cell id is unknown.
    pub fn add_fixed_pin(
        &mut self,
        cell: CellId,
        name: &str,
        pos: Point,
    ) -> Result<PinId, NetlistError> {
        self.add_pin_internal(cell, name, PinPlacement::Fixed(pos))
    }

    /// Adds an uncommitted pin restricted to sites on the given sides of a
    /// custom cell.
    ///
    /// # Errors
    ///
    /// Fails if the cell id is unknown (macro-cell misuse is caught at
    /// [`NetlistBuilder::build`] time).
    pub fn add_site_pin(
        &mut self,
        cell: CellId,
        name: &str,
        sides: SideSet,
    ) -> Result<PinId, NetlistError> {
        self.add_pin_internal(cell, name, PinPlacement::Sites(sides))
    }

    fn add_pin_internal(
        &mut self,
        cell: CellId,
        name: &str,
        placement: PinPlacement,
    ) -> Result<PinId, NetlistError> {
        let c = self
            .cells
            .get_mut(cell.index())
            .ok_or_else(|| NetlistError::UnknownId(format!("cell {cell}")))?;
        let id = PinId::from_index(self.pins.len());
        c.pins.push(id);
        if let (PinPlacement::Fixed(p), CellGeometry::Fixed { instances }) =
            (&placement, &mut c.geometry)
        {
            for inst in instances.iter_mut() {
                inst.pin_positions.push(*p);
            }
        }
        self.pins.push(Pin {
            id,
            name: name.to_owned(),
            cell,
            net: None,
            placement,
        });
        Ok(id)
    }

    /// Groups existing uncommitted pins of one custom cell; sets each
    /// member's placement to refer to the group.
    ///
    /// # Errors
    ///
    /// Fails if a member pin is unknown or on a different cell.
    pub fn add_group(
        &mut self,
        cell: CellId,
        name: &str,
        sides: SideSet,
        sequenced: bool,
        pins: Vec<PinId>,
    ) -> Result<GroupId, NetlistError> {
        let id = GroupId::from_index(self.groups.len());
        for &p in &pins {
            let pin = self
                .pins
                .get_mut(p.index())
                .ok_or_else(|| NetlistError::UnknownId(format!("pin {p}")))?;
            if pin.cell != cell {
                return Err(NetlistError::GroupMemberWrongCell(
                    name.to_owned(),
                    pin.name.clone(),
                ));
            }
            pin.placement = PinPlacement::Grouped(id);
        }
        self.groups.push(PinGroup {
            id,
            name: name.to_owned(),
            cell,
            pins,
            sides,
            sequenced,
        });
        Ok(id)
    }

    /// Adds a net over the given connection points with per-direction
    /// weights (`h(n)`, `v(n)` of eq. 6).
    ///
    /// # Errors
    ///
    /// Fails if a pin is unknown or already on another net.
    pub fn add_net(
        &mut self,
        name: &str,
        pins: Vec<NetPin>,
        weight_h: f64,
        weight_v: f64,
    ) -> Result<NetId, NetlistError> {
        let id = NetId::from_index(self.nets.len());
        for np in &pins {
            for p in np.candidates() {
                let pin = self
                    .pins
                    .get_mut(p.index())
                    .ok_or_else(|| NetlistError::UnknownId(format!("pin {p}")))?;
                if let Some(existing) = pin.net {
                    if existing != id {
                        return Err(NetlistError::PinOnMultipleNets(pin.name.clone()));
                    }
                }
                pin.net = Some(id);
            }
        }
        self.net_names.insert(name.to_owned(), id);
        self.nets.push(Net {
            id,
            name: name.to_owned(),
            pins,
            weight_h,
            weight_v,
        });
        Ok(id)
    }

    /// Convenience: adds a net connecting simple (non-equivalent) pins with
    /// unit weights.
    ///
    /// # Errors
    ///
    /// Same as [`NetlistBuilder::add_net`].
    pub fn add_simple_net(&mut self, name: &str, pins: &[PinId]) -> Result<NetId, NetlistError> {
        self.add_net(
            name,
            pins.iter().map(|&p| NetPin::simple(p)).collect(),
            1.0,
            1.0,
        )
    }

    /// Validates everything and produces the immutable [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn build(self) -> Result<Netlist, NetlistError> {
        // Unique cell names.
        let mut seen = HashMap::new();
        for c in &self.cells {
            if seen.insert(c.name.clone(), ()).is_some() {
                return Err(NetlistError::DuplicateCellName(c.name.clone()));
            }
        }
        // Unique net names.
        let mut seen = HashMap::new();
        for n in &self.nets {
            if seen.insert(n.name.clone(), ()).is_some() {
                return Err(NetlistError::DuplicateNetName(n.name.clone()));
            }
        }
        for c in &self.cells {
            // Unique pin names per cell.
            let mut seen = HashMap::new();
            for &p in &c.pins {
                let pin = &self.pins[p.index()];
                if seen.insert(pin.name.clone(), ()).is_some() {
                    return Err(NetlistError::DuplicatePinName(
                        c.name.clone(),
                        pin.name.clone(),
                    ));
                }
                // Macro cells may not carry uncommitted pins.
                if !c.is_custom() && pin.is_uncommitted() {
                    return Err(NetlistError::UncommittedPinOnMacro(
                        c.name.clone(),
                        pin.name.clone(),
                    ));
                }
            }
            // Instances carry a position for every pin, inside geometry.
            for (k, inst) in c.instances().iter().enumerate() {
                if inst.pin_positions.len() != c.pins.len() {
                    return Err(NetlistError::InstanceMissingPinPosition(c.name.clone(), k));
                }
                for (&p, &pos) in c.pins.iter().zip(&inst.pin_positions) {
                    if !inst.tiles.contains(pos) {
                        return Err(NetlistError::PinOutsideCell {
                            cell: c.name.clone(),
                            pin: self.pins[p.index()].name.clone(),
                            instance: k,
                        });
                    }
                }
            }
        }
        // Degenerate nets (fewer than two connection points) are
        // permitted: they span nothing, contribute zero cost, and appear
        // in real imports (the text format allows `net NAME :`; YAL
        // filters supply signals down to nothing). The placement and
        // routing layers skip them.
        Ok(Netlist {
            cells: self.cells,
            pins: self.pins,
            nets: self.nets,
            groups: self.groups,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twmc_geom::Side;

    #[test]
    fn build_simple_circuit() {
        let mut b = NetlistBuilder::new();
        let a = b.add_macro("a", TileSet::rect(10, 10));
        let c = b.add_macro("b", TileSet::rect(8, 6));
        let p1 = b.add_fixed_pin(a, "o", Point::new(10, 5)).unwrap();
        let p2 = b.add_fixed_pin(c, "i", Point::new(0, 3)).unwrap();
        b.add_simple_net("w", &[p1, p2]).unwrap();
        let nl = b.build().unwrap();
        let st = nl.stats();
        assert_eq!((st.cells, st.nets, st.pins), (2, 1, 2));
        assert_eq!(st.total_area, 148);
        assert_eq!(st.total_perimeter, 40 + 28);
        assert!((st.avg_pin_density - 2.0 / 68.0).abs() < 1e-12);
        assert_eq!(nl.pin_by_name("a", "o").unwrap().id(), p1);
        assert_eq!(nl.nets_of_cell(a), vec![NetId::from_index(0)]);
    }

    #[test]
    fn rejects_duplicate_cell_names() {
        let mut b = NetlistBuilder::new();
        b.add_macro("a", TileSet::rect(2, 2));
        b.add_macro("a", TileSet::rect(2, 2));
        assert_eq!(
            b.build().unwrap_err(),
            NetlistError::DuplicateCellName("a".into())
        );
    }

    #[test]
    fn rejects_pin_outside_cell() {
        let mut b = NetlistBuilder::new();
        let a = b.add_macro("a", TileSet::rect(4, 4));
        b.add_fixed_pin(a, "p", Point::new(9, 9)).unwrap();
        let q = b.add_macro("q", TileSet::rect(4, 4));
        let p2 = b.add_fixed_pin(q, "p", Point::new(0, 0)).unwrap();
        let p1 = PinId::from_index(0);
        b.add_simple_net("n", &[p1, p2]).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            NetlistError::PinOutsideCell { .. }
        ));
    }

    #[test]
    fn rejects_uncommitted_pin_on_macro() {
        let mut b = NetlistBuilder::new();
        let a = b.add_macro("a", TileSet::rect(4, 4));
        b.add_site_pin(a, "p", SideSet::single(Side::Left)).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            NetlistError::UncommittedPinOnMacro(..)
        ));
    }

    #[test]
    fn degenerate_nets_are_permitted() {
        // Single-pin and zero-pin nets import and span nothing; the cost
        // layers skip them (they appear in real netlists after supply
        // filtering).
        let mut b = NetlistBuilder::new();
        let a = b.add_macro("a", TileSet::rect(4, 4));
        let p = b.add_fixed_pin(a, "p", Point::new(0, 0)).unwrap();
        b.add_simple_net("n", &[p]).unwrap();
        b.add_net("empty", Vec::new(), 1.0, 1.0).unwrap();
        let nl = b.build().unwrap();
        assert_eq!(nl.net_by_name("n").unwrap().degree(), 1);
        assert_eq!(nl.net_by_name("empty").unwrap().degree(), 0);
    }

    #[test]
    fn rejects_pin_on_two_nets() {
        let mut b = NetlistBuilder::new();
        let a = b.add_macro("a", TileSet::rect(4, 4));
        let c = b.add_macro("b", TileSet::rect(4, 4));
        let p1 = b.add_fixed_pin(a, "p", Point::new(0, 0)).unwrap();
        let p2 = b.add_fixed_pin(c, "p", Point::new(0, 0)).unwrap();
        b.add_simple_net("n1", &[p1, p2]).unwrap();
        assert_eq!(
            b.add_simple_net("n2", &[p1, p2]).unwrap_err(),
            NetlistError::PinOnMultipleNets("p".into())
        );
    }

    #[test]
    fn custom_cell_with_groups() {
        let mut b = NetlistBuilder::new();
        let cc = b.add_custom("cc", 400, AspectRange::Continuous { min: 0.5, max: 2.0 }, 8);
        let p1 = b.add_site_pin(cc, "d0", SideSet::ALL).unwrap();
        let p2 = b.add_site_pin(cc, "d1", SideSet::ALL).unwrap();
        let g = b
            .add_group(
                cc,
                "bus",
                SideSet::of(&[Side::Left, Side::Right]),
                true,
                vec![p1, p2],
            )
            .unwrap();
        let other = b.add_macro("m", TileSet::rect(5, 5));
        let p3 = b.add_fixed_pin(other, "x", Point::new(5, 2)).unwrap();
        let p4 = b.add_fixed_pin(other, "y", Point::new(0, 2)).unwrap();
        b.add_simple_net("n0", &[p1, p3]).unwrap();
        b.add_simple_net("n1", &[p2, p4]).unwrap();
        let nl = b.build().unwrap();
        assert_eq!(nl.groups().len(), 1);
        assert_eq!(nl.group(g).pins, vec![p1, p2]);
        assert!(nl.group(g).sequenced);
        assert!(matches!(
            nl.pin(p1).placement,
            PinPlacement::Grouped(gg) if gg == g
        ));
        assert!(nl.cell(cc).is_custom());
        assert_eq!(nl.cell(cc).sites_per_edge, 8);
    }

    #[test]
    fn instances_with_positions() {
        let mut b = NetlistBuilder::new();
        let a = b.add_macro("a", TileSet::rect(10, 4));
        let p1 = b.add_fixed_pin(a, "p", Point::new(0, 2)).unwrap();
        // A taller alternative instance; pin moves accordingly.
        b.add_instance(a, "tall", TileSet::rect(4, 10), vec![Point::new(0, 5)])
            .unwrap();
        let q = b.add_macro("q", TileSet::rect(4, 4));
        let p2 = b.add_fixed_pin(q, "p", Point::new(2, 0)).unwrap();
        b.add_simple_net("n", &[p1, p2]).unwrap();
        let nl = b.build().unwrap();
        assert_eq!(nl.cell(a).instance_count(), 2);
        assert_eq!(
            nl.cell(a).instances()[1].pin_positions,
            vec![Point::new(0, 5)]
        );
    }

    #[test]
    fn instance_wrong_pin_count_rejected() {
        let mut b = NetlistBuilder::new();
        let a = b.add_macro("a", TileSet::rect(10, 4));
        b.add_fixed_pin(a, "p", Point::new(0, 2)).unwrap();
        assert!(b
            .add_instance(a, "bad", TileSet::rect(4, 10), vec![])
            .is_err());
    }

    #[test]
    fn net_with_equivalent_pins() {
        let mut b = NetlistBuilder::new();
        let a = b.add_macro("a", TileSet::rect(6, 6));
        let p1 = b.add_fixed_pin(a, "o", Point::new(6, 3)).unwrap();
        let q = b.add_macro("q", TileSet::rect(6, 6));
        let ia = b.add_fixed_pin(q, "iA", Point::new(0, 1)).unwrap();
        let ib = b.add_fixed_pin(q, "iB", Point::new(0, 5)).unwrap();
        b.add_net(
            "n",
            vec![
                NetPin::simple(p1),
                NetPin {
                    primary: ia,
                    equivalents: vec![ib],
                },
            ],
            1.0,
            2.0,
        )
        .unwrap();
        let nl = b.build().unwrap();
        let n = nl.net_by_name("n").unwrap();
        assert_eq!(n.degree(), 2);
        assert_eq!(n.all_pins().count(), 3);
        assert_eq!(n.weight_v, 2.0);
    }
}
