//! Parser for the TWMC netlist text format.
//!
//! The format is line-based and whitespace-separated. `#` starts a
//! comment. Blocks:
//!
//! ```text
//! macro NAME
//!   tile X Y W H            # one or more geometry tiles
//!   pin NAME X Y            # fixed pin position (cell-local)
//!   instance NAME           # optional alternative geometry
//!     tile X Y W H
//!     pinpos PIN X Y        # position of each pin in this instance
//! end
//!
//! custom NAME area A aspect MIN MAX sites N
//!   pin NAME sides LRBT     # uncommitted pin on the given sides
//!   pin NAME fixed X Y      # fixed pin on a custom cell
//!   group NAME sides LRBT seq|set : PIN PIN ...
//! end
//!
//! net NAME [hw F] [vw F] : CELL.PIN[=CELL.PIN...] CELL.PIN ...
//! ```
//!
//! `=` joins electrically-equivalent pins into one connection point.

use std::collections::HashMap;

use twmc_geom::{Point, Rect, TileSet};

use crate::{AspectRange, CellId, NetPin, Netlist, NetlistBuilder, NetlistError, PinId, SideSet};

/// Error produced while parsing a netlist file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<NetlistError> for ParseError {
    fn from(e: NetlistError) -> Self {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

struct Parser<'a> {
    lines: Vec<(usize, Vec<&'a str>)>,
    pos: usize,
    builder: NetlistBuilder,
    /// name → (cell, pin) for net resolution.
    pin_index: HashMap<(String, String), PinId>,
    cell_index: HashMap<String, CellId>,
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_num<T: std::str::FromStr>(line: usize, tok: &str, what: &str) -> Result<T, ParseError> {
    tok.parse()
        .map_err(|_| err(line, format!("invalid {what}: `{tok}`")))
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        let lines = input
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = l.split('#').next().unwrap_or("");
                (i + 1, l.split_whitespace().collect::<Vec<_>>())
            })
            .filter(|(_, toks)| !toks.is_empty())
            .collect();
        Parser {
            lines,
            pos: 0,
            builder: NetlistBuilder::new(),
            pin_index: HashMap::new(),
            cell_index: HashMap::new(),
        }
    }

    fn peek(&self) -> Option<&(usize, Vec<&'a str>)> {
        self.lines.get(self.pos)
    }

    fn next(&mut self) -> Option<(usize, Vec<&'a str>)> {
        let l = self.lines.get(self.pos).cloned();
        self.pos += 1;
        l
    }

    fn run(mut self) -> Result<Netlist, ParseError> {
        while let Some((line, toks)) = self.next() {
            match toks[0] {
                "macro" => self.parse_macro(line, &toks)?,
                "custom" => self.parse_custom(line, &toks)?,
                "net" => self.parse_net(line, &toks)?,
                other => return Err(err(line, format!("unknown directive `{other}`"))),
            }
        }
        self.builder.build().map_err(ParseError::from)
    }

    fn parse_tiles_and_pins_for_macro(
        &mut self,
        cell: CellId,
        cell_name: &str,
    ) -> Result<(), ParseError> {
        // First pass: collect primary tiles and pins until `instance` or `end`.
        // Parsed instance block: (line, name, tiles, pin positions).
        type InstanceBlock = (usize, String, Vec<Rect>, Vec<(String, Point)>);
        let mut tiles: Vec<Rect> = Vec::new();
        let mut pins: Vec<(String, Point)> = Vec::new();
        let mut instances: Vec<InstanceBlock> = Vec::new();
        loop {
            let (line, toks) = self
                .next()
                .ok_or_else(|| err(0, "unexpected end of file inside macro block"))?;
            match toks[0] {
                "end" => break,
                "tile" if toks.len() == 5 => {
                    let x = parse_num(line, toks[1], "x")?;
                    let y = parse_num(line, toks[2], "y")?;
                    let w = parse_num(line, toks[3], "width")?;
                    let h = parse_num(line, toks[4], "height")?;
                    tiles.push(Rect::from_wh(x, y, w, h));
                }
                "pin" if toks.len() == 4 => {
                    let x = parse_num(line, toks[2], "x")?;
                    let y = parse_num(line, toks[3], "y")?;
                    pins.push((toks[1].to_owned(), Point::new(x, y)));
                }
                "instance" if toks.len() == 2 => {
                    let mut itiles = Vec::new();
                    let mut ipins = Vec::new();
                    while let Some((iline, itoks)) = self.peek().cloned() {
                        match itoks[0] {
                            "tile" if itoks.len() == 5 => {
                                self.next();
                                let x = parse_num(iline, itoks[1], "x")?;
                                let y = parse_num(iline, itoks[2], "y")?;
                                let w = parse_num(iline, itoks[3], "width")?;
                                let h = parse_num(iline, itoks[4], "height")?;
                                itiles.push(Rect::from_wh(x, y, w, h));
                            }
                            "pinpos" if itoks.len() == 4 => {
                                self.next();
                                let x = parse_num(iline, itoks[2], "x")?;
                                let y = parse_num(iline, itoks[3], "y")?;
                                ipins.push((itoks[1].to_owned(), Point::new(x, y)));
                            }
                            _ => break,
                        }
                    }
                    instances.push((line, toks[1].to_owned(), itiles, ipins));
                }
                _ => {
                    return Err(err(
                        line,
                        format!("unexpected `{}` in macro block", toks[0]),
                    ))
                }
            }
        }
        if tiles.is_empty() {
            return Err(err(0, format!("macro `{cell_name}` has no tiles")));
        }
        // Rebuild the cell geometry now that tiles are known: the builder
        // created it with a placeholder, so replace via a fresh TileSet.
        let ts = TileSet::new(tiles).map_err(|e| err(0, e.to_string()))?;
        self.builder
            .replace_primary_geometry(cell, ts)
            .map_err(ParseError::from)?;
        let mut order = Vec::new();
        for (name, pos) in &pins {
            let pid = self
                .builder
                .add_fixed_pin(cell, name, *pos)
                .map_err(ParseError::from)?;
            self.pin_index
                .insert((cell_name.to_owned(), name.clone()), pid);
            order.push(name.clone());
        }
        for (line, iname, itiles, ipins) in instances {
            let ts = TileSet::new(itiles).map_err(|e| err(line, e.to_string()))?;
            let map: HashMap<&str, Point> = ipins.iter().map(|(n, p)| (n.as_str(), *p)).collect();
            let mut positions = Vec::with_capacity(order.len());
            for n in &order {
                match map.get(n.as_str()) {
                    Some(p) => positions.push(*p),
                    None => {
                        return Err(err(
                            line,
                            format!("instance `{iname}` missing pinpos for `{n}`"),
                        ))
                    }
                }
            }
            self.builder
                .add_instance(cell, &iname, ts, positions)
                .map_err(ParseError::from)?;
        }
        Ok(())
    }

    fn parse_macro(&mut self, line: usize, toks: &[&str]) -> Result<(), ParseError> {
        if toks.len() != 2 {
            return Err(err(line, "usage: macro NAME"));
        }
        let name = toks[1];
        // Placeholder geometry; replaced once tiles are read.
        let cell = self.builder.add_macro(name, TileSet::rect(1, 1));
        self.cell_index.insert(name.to_owned(), cell);
        self.parse_tiles_and_pins_for_macro(cell, name)
    }

    fn parse_custom(&mut self, line: usize, toks: &[&str]) -> Result<(), ParseError> {
        // custom NAME area A aspect MIN MAX [sites N] | aspectlist r1,r2,..
        if toks.len() < 4 {
            return Err(err(
                line,
                "usage: custom NAME area A aspect MIN MAX [sites N]",
            ));
        }
        let name = toks[1];
        let mut area: Option<i64> = None;
        let mut aspect: Option<AspectRange> = None;
        let mut sites = 8u32;
        let mut i = 2;
        while i < toks.len() {
            match toks[i] {
                "area" => {
                    area = Some(parse_num(line, toks[i + 1], "area")?);
                    i += 2;
                }
                "aspect" => {
                    let min = parse_num(line, toks[i + 1], "aspect min")?;
                    let max = parse_num(line, toks[i + 2], "aspect max")?;
                    aspect = Some(AspectRange::Continuous { min, max });
                    i += 3;
                }
                "aspectlist" => {
                    let rs: Result<Vec<f64>, _> = toks[i + 1]
                        .split(',')
                        .map(|t| parse_num(line, t, "aspect ratio"))
                        .collect();
                    aspect = Some(AspectRange::Discrete(rs?));
                    i += 2;
                }
                "sites" => {
                    sites = parse_num(line, toks[i + 1], "sites")?;
                    i += 2;
                }
                other => return Err(err(line, format!("unexpected `{other}` in custom header"))),
            }
        }
        let area = area.ok_or_else(|| err(line, "custom cell needs `area`"))?;
        let aspect = aspect.ok_or_else(|| err(line, "custom cell needs `aspect`"))?;
        let cell = self.builder.add_custom(name, area, aspect, sites);
        self.cell_index.insert(name.to_owned(), cell);

        loop {
            let (bline, toks) = self
                .next()
                .ok_or_else(|| err(line, "unexpected end of file inside custom block"))?;
            match toks[0] {
                "end" => break,
                "pin" if toks.len() == 4 && toks[2] == "sides" => {
                    let sides = SideSet::parse(toks[3])
                        .ok_or_else(|| err(bline, format!("bad side set `{}`", toks[3])))?;
                    let pid = self
                        .builder
                        .add_site_pin(cell, toks[1], sides)
                        .map_err(ParseError::from)?;
                    self.pin_index
                        .insert((name.to_owned(), toks[1].to_owned()), pid);
                }
                "pin" if toks.len() == 5 && toks[2] == "fixed" => {
                    let x = parse_num(bline, toks[3], "x")?;
                    let y = parse_num(bline, toks[4], "y")?;
                    let pid = self
                        .builder
                        .add_fixed_pin(cell, toks[1], Point::new(x, y))
                        .map_err(ParseError::from)?;
                    self.pin_index
                        .insert((name.to_owned(), toks[1].to_owned()), pid);
                }
                "group" => {
                    // group NAME sides LRBT seq|set : PIN...
                    let colon = toks
                        .iter()
                        .position(|&t| t == ":")
                        .ok_or_else(|| err(bline, "group needs `:` before member pins"))?;
                    if colon != 5 || toks[2] != "sides" {
                        return Err(err(bline, "usage: group NAME sides LRBT seq|set : PINS"));
                    }
                    let sides = SideSet::parse(toks[3])
                        .ok_or_else(|| err(bline, format!("bad side set `{}`", toks[3])))?;
                    let sequenced = match toks[4] {
                        "seq" => true,
                        "set" => false,
                        other => {
                            return Err(err(bline, format!("expected seq|set, got `{other}`")))
                        }
                    };
                    let mut members = Vec::new();
                    for &pname in &toks[colon + 1..] {
                        let pid = self
                            .pin_index
                            .get(&(name.to_owned(), pname.to_owned()))
                            .copied()
                            .ok_or_else(|| err(bline, format!("unknown pin `{pname}`")))?;
                        members.push(pid);
                    }
                    self.builder
                        .add_group(cell, toks[1], sides, sequenced, members)
                        .map_err(ParseError::from)?;
                }
                _ => {
                    return Err(err(
                        bline,
                        format!("unexpected `{}` in custom block", toks[0]),
                    ))
                }
            }
        }
        Ok(())
    }

    fn resolve_pin(&self, line: usize, token: &str) -> Result<PinId, ParseError> {
        let (cell, pin) = token
            .split_once('.')
            .ok_or_else(|| err(line, format!("expected CELL.PIN, got `{token}`")))?;
        self.pin_index
            .get(&(cell.to_owned(), pin.to_owned()))
            .copied()
            .ok_or_else(|| err(line, format!("unknown pin `{token}`")))
    }

    fn parse_net(&mut self, line: usize, toks: &[&str]) -> Result<(), ParseError> {
        if toks.len() < 2 {
            return Err(err(line, "usage: net NAME [hw F] [vw F] : PINS"));
        }
        let name = toks[1];
        let mut hw = 1.0;
        let mut vw = 1.0;
        let mut i = 2;
        while i < toks.len() && toks[i] != ":" {
            match toks[i] {
                "hw" => {
                    hw = parse_num(line, toks[i + 1], "hw")?;
                    i += 2;
                }
                "vw" => {
                    vw = parse_num(line, toks[i + 1], "vw")?;
                    i += 2;
                }
                other => return Err(err(line, format!("unexpected `{other}` in net header"))),
            }
        }
        if i >= toks.len() {
            return Err(err(line, "net needs `:` before pins"));
        }
        let mut pins = Vec::new();
        for &tok in &toks[i + 1..] {
            let mut parts = tok.split('=');
            let primary = self.resolve_pin(line, parts.next().expect("split yields one"))?;
            let equivalents: Result<Vec<PinId>, _> =
                parts.map(|p| self.resolve_pin(line, p)).collect();
            pins.push(NetPin {
                primary,
                equivalents: equivalents?,
            });
        }
        self.builder
            .add_net(name, pins, hw, vw)
            .map_err(ParseError::from)?;
        Ok(())
    }
}

/// Parses a netlist from the TWMC text format.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number for syntax problems, or a
/// wrapped [`NetlistError`] (line 0) for semantic problems.
///
/// # Examples
///
/// ```
/// let nl = twmc_netlist::parse_netlist(
///     "macro a\n tile 0 0 4 4\n pin o 4 2\nend\n\
///      macro b\n tile 0 0 4 4\n pin i 0 2\nend\n\
///      net w : a.o b.i\n",
/// )?;
/// assert_eq!(nl.stats().cells, 2);
/// # Ok::<(), twmc_netlist::ParseError>(())
/// ```
pub fn parse_netlist(input: &str) -> Result<Netlist, ParseError> {
    Parser::new(input).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PinPlacement;

    const SIMPLE: &str = "
# two macros and a net
macro a
  tile 0 0 10 10
  pin o 10 5
end
macro b
  tile 0 0 8 6
  pin i 0 3
end
net w hw 2 : a.o b.i
";

    #[test]
    fn parses_simple() {
        let nl = parse_netlist(SIMPLE).unwrap();
        assert_eq!(nl.stats().cells, 2);
        assert_eq!(nl.stats().nets, 1);
        assert_eq!(nl.net_by_name("w").unwrap().weight_h, 2.0);
        let a = nl.cell_by_name("a").unwrap();
        assert_eq!(a.default_shape().area(), 100);
    }

    #[test]
    fn parses_rectilinear_macro_with_instances() {
        let src = "
macro l
  tile 0 0 4 2
  tile 0 2 2 2
  pin p 4 1
  instance tall
    tile 0 0 2 4
    tile 2 0 2 2
    pinpos p 2 3
end
macro m
  tile 0 0 3 3
  pin q 0 0
end
net n : l.p m.q
";
        let nl = parse_netlist(src).unwrap();
        let l = nl.cell_by_name("l").unwrap();
        assert_eq!(l.instance_count(), 2);
        assert_eq!(l.instances()[0].tiles.area(), 12);
        assert_eq!(l.instances()[1].pin_positions[0], Point::new(2, 3));
    }

    #[test]
    fn parses_custom_with_groups_and_equivalents() {
        let src = "
custom cc area 400 aspect 0.5 2.0 sites 6
  pin d0 sides LR
  pin d1 sides LR
  pin fx fixed 0 0
  group bus sides LR seq : d0 d1
end
macro m
  tile 0 0 5 5
  pin xA 5 1
  pin xB 5 4
  pin y 0 2
end
net n0 : cc.d0 m.xA=m.xB
net n1 vw 3 : cc.d1 m.y cc.fx
";
        let nl = parse_netlist(src).unwrap();
        let cc = nl.cell_by_name("cc").unwrap();
        assert!(cc.is_custom());
        assert_eq!(cc.sites_per_edge, 6);
        assert_eq!(nl.groups().len(), 1);
        let n0 = nl.net_by_name("n0").unwrap();
        assert_eq!(n0.pins[1].equivalents.len(), 1);
        let fx = nl.pin_by_name("cc", "fx").unwrap();
        assert!(matches!(fx.placement, PinPlacement::Fixed(_)));
        assert_eq!(nl.net_by_name("n1").unwrap().weight_v, 3.0);
    }

    #[test]
    fn error_reports_line() {
        let e = parse_netlist("macro a\n tile 0 0 4 4\n bogus\nend").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unknown_pin_in_net() {
        let e =
            parse_netlist("macro a\n tile 0 0 4 4\n pin p 0 0\nend\nnet n : a.p a.q").unwrap_err();
        assert!(e.message.contains("a.q"), "{e}");
    }
}
