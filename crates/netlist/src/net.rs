//! Nets with per-direction weights and electrically-equivalent pins.

use crate::{NetId, PinId};

/// One logical connection point of a net: a primary pin plus any
/// electrically-equivalent alternatives.
///
/// The global router makes full use of equivalent pins to minimize the
/// routing length of a net (paper §4.2): connecting any one member of the
/// class satisfies the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetPin {
    /// The canonical pin of the class.
    pub primary: PinId,
    /// Interchangeable alternatives (e.g. the paper's P3A/P3B pair).
    pub equivalents: Vec<PinId>,
}

impl NetPin {
    /// A connection point with no alternatives.
    pub fn simple(pin: PinId) -> NetPin {
        NetPin {
            primary: pin,
            equivalents: Vec::new(),
        }
    }

    /// All pins of the class: the primary followed by the equivalents.
    pub fn candidates(&self) -> impl Iterator<Item = PinId> + '_ {
        core::iter::once(self.primary).chain(self.equivalents.iter().copied())
    }
}

/// A net of the circuit.
#[derive(Debug, Clone)]
pub struct Net {
    pub(crate) id: NetId,
    /// Net name (unique within the netlist).
    pub name: String,
    /// Connection points. The TEIC span of the net covers one pin per
    /// point (the primary, during placement).
    pub pins: Vec<NetPin>,
    /// Horizontal net-weighting factor `h(n)` of eq. 6.
    pub weight_h: f64,
    /// Vertical net-weighting factor `v(n)` of eq. 6.
    pub weight_v: f64,
}

impl Net {
    /// The net's id.
    #[inline]
    pub fn id(&self) -> NetId {
        self.id
    }

    /// Number of connection points (pin groups); the paper's net degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.pins.len()
    }

    /// Iterates over all member pins, including equivalents.
    pub fn all_pins(&self) -> impl Iterator<Item = PinId> + '_ {
        self.pins.iter().flat_map(|np| np.candidates())
    }

    /// Iterates over the primary pin of each connection point.
    pub fn primary_pins(&self) -> impl Iterator<Item = PinId> + '_ {
        self.pins.iter().map(|np| np.primary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> PinId {
        PinId::from_index(i)
    }

    #[test]
    fn netpin_candidates() {
        let np = NetPin {
            primary: pid(3),
            equivalents: vec![pid(7), pid(9)],
        };
        assert_eq!(
            np.candidates().collect::<Vec<_>>(),
            vec![pid(3), pid(7), pid(9)]
        );
        assert_eq!(NetPin::simple(pid(1)).candidates().count(), 1);
    }

    #[test]
    fn degree_counts_classes_not_pins() {
        let net = Net {
            id: NetId::from_index(0),
            name: "n".into(),
            pins: vec![
                NetPin::simple(pid(0)),
                NetPin {
                    primary: pid(1),
                    equivalents: vec![pid(2)],
                },
            ],
            weight_h: 1.0,
            weight_v: 1.0,
        };
        assert_eq!(net.degree(), 2);
        assert_eq!(net.all_pins().count(), 3);
        assert_eq!(net.primary_pins().collect::<Vec<_>>(), vec![pid(0), pid(1)]);
    }
}
