//! Circuit model for the TimberWolfMC reproduction.
//!
//! This crate models the netlists TimberWolfMC places and routes:
//!
//! * [`Cell`] — fixed-geometry **macro** cells (rectilinear tile sets,
//!   fixed pin locations, optionally several selectable instances) and
//!   resizable **custom** cells (estimated area, aspect-ratio range, pin
//!   sites along each edge);
//! * [`Pin`] / [`PinGroup`] — the paper's four pin-placement cases:
//!   fixed location, edge-restricted, grouped, and sequenced groups
//!   (§2.4);
//! * [`Net`] — nets with per-direction weights `h(n)`/`v(n)` (eq. 6) and
//!   electrically-equivalent pins for the global router (§4.2);
//! * [`Netlist`] / [`NetlistBuilder`] — a validated container with
//!   circuit statistics (`D̄_p`, `c̄_a`, …);
//! * [`parse_netlist`] / [`write_netlist`] — a round-trippable text
//!   format;
//! * [`synthesize`] / [`PAPER_CIRCUITS`] — seeded synthetic circuits
//!   matching the published sizes of the paper's nine industrial test
//!   cases.
//!
//! # Examples
//!
//! ```
//! use twmc_netlist::{synthesize_profile, paper_circuit};
//!
//! let profile = paper_circuit("i3").unwrap();
//! let circuit = synthesize_profile(profile, 42);
//! let stats = circuit.stats();
//! assert_eq!((stats.cells, stats.nets, stats.pins), (18, 38, 102));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cell;
mod ids;
mod net;
mod netlist;
mod parser;
mod pin;
mod sideset;
mod synth;
mod writer;
mod yal;

pub use cell::{flexible_dims, AspectRange, Cell, CellGeometry, CellInstance};
pub use ids::{CellId, GroupId, NetId, PinId};
pub use net::{Net, NetPin};
pub use netlist::{CircuitStats, Netlist, NetlistBuilder, NetlistError};
pub use parser::{parse_netlist, ParseError};
pub use pin::{Pin, PinGroup, PinPlacement};
pub use sideset::SideSet;
pub use synth::{
    paper_circuit, synthesize, synthesize_profile, CircuitProfile, SynthParams, PAPER_CIRCUITS,
};
pub use writer::write_netlist;
pub use yal::parse_yal;
