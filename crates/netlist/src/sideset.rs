//! Sets of cell sides, used to restrict where uncommitted pins may go.
//!
//! The paper (§2.4) lets a pin, pin group, or pin sequence be restricted to
//! one cell edge, two cell edges, or any of the edges.

use core::fmt;

use twmc_geom::Side;

/// A non-empty-or-empty set of the four cell sides.
///
/// # Examples
///
/// ```
/// use twmc_geom::Side;
/// use twmc_netlist::SideSet;
///
/// let s = SideSet::of(&[Side::Left, Side::Right]);
/// assert!(s.contains(Side::Left));
/// assert!(!s.contains(Side::Top));
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SideSet(u8);

impl SideSet {
    /// The empty set.
    pub const EMPTY: SideSet = SideSet(0);
    /// All four sides — an unrestricted pin.
    pub const ALL: SideSet = SideSet(0b1111);

    const fn bit(side: Side) -> u8 {
        match side {
            Side::Left => 0b0001,
            Side::Right => 0b0010,
            Side::Bottom => 0b0100,
            Side::Top => 0b1000,
        }
    }

    /// A set with a single side.
    #[inline]
    pub const fn single(side: Side) -> SideSet {
        SideSet(Self::bit(side))
    }

    /// A set built from a slice of sides.
    pub fn of(sides: &[Side]) -> SideSet {
        let mut s = SideSet::EMPTY;
        for &side in sides {
            s = s.with(side);
        }
        s
    }

    /// This set with `side` added.
    #[inline]
    pub const fn with(self, side: Side) -> SideSet {
        SideSet(self.0 | Self::bit(side))
    }

    /// Whether the set contains `side`.
    #[inline]
    pub const fn contains(self, side: Side) -> bool {
        self.0 & Self::bit(side) != 0
    }

    /// Number of sides in the set.
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the contained sides in a fixed order.
    pub fn iter(self) -> impl Iterator<Item = Side> {
        Side::ALL.into_iter().filter(move |s| self.contains(*s))
    }

    /// Parses a compact side-letter string (`L`, `R`, `B`, `T`), as used by
    /// the netlist text format.
    pub fn parse(s: &str) -> Option<SideSet> {
        let mut out = SideSet::EMPTY;
        for ch in s.chars() {
            out = out.with(match ch.to_ascii_uppercase() {
                'L' => Side::Left,
                'R' => Side::Right,
                'B' => Side::Bottom,
                'T' => Side::Top,
                _ => return None,
            });
        }
        Some(out)
    }
}

impl Default for SideSet {
    /// Defaults to all sides (an unrestricted pin).
    fn default() -> Self {
        SideSet::ALL
    }
}

impl fmt::Display for SideSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for side in self.iter() {
            let ch = match side {
                Side::Left => 'L',
                Side::Right => 'R',
                Side::Bottom => 'B',
                Side::Top => 'T',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

impl FromIterator<Side> for SideSet {
    fn from_iter<I: IntoIterator<Item = Side>>(iter: I) -> Self {
        let mut s = SideSet::EMPTY;
        for side in iter {
            s = s.with(side);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = SideSet::of(&[Side::Left, Side::Top]);
        assert!(s.contains(Side::Left) && s.contains(Side::Top));
        assert!(!s.contains(Side::Right) && !s.contains(Side::Bottom));
        assert_eq!(s.count(), 2);
        assert!(!s.is_empty());
        assert!(SideSet::EMPTY.is_empty());
    }

    #[test]
    fn all_contains_everything() {
        for side in Side::ALL {
            assert!(SideSet::ALL.contains(side));
        }
        assert_eq!(SideSet::ALL.count(), 4);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let s = SideSet::parse("LRt").unwrap();
        assert_eq!(s.count(), 3);
        assert_eq!(format!("{s}"), "LRT");
        assert_eq!(SideSet::parse("Q"), None);
        assert_eq!(SideSet::parse(""), Some(SideSet::EMPTY));
    }

    #[test]
    fn iter_and_collect() {
        let s: SideSet = [Side::Bottom, Side::Bottom, Side::Left]
            .into_iter()
            .collect();
        let back: Vec<Side> = s.iter().collect();
        assert_eq!(back, vec![Side::Left, Side::Bottom]);
    }

    #[test]
    fn duplicates_are_idempotent() {
        assert_eq!(
            SideSet::of(&[Side::Left, Side::Left]),
            SideSet::single(Side::Left)
        );
    }
}
