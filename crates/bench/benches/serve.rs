//! Throughput/latency bench of the placement daemon (`twmc serve`).
//!
//! Drives a batch of small synthetic jobs through a real daemon + HTTP
//! server on a loopback port at 1, 2, and 4 workers, measuring
//! end-to-end latency per job (POST accepted → state `done`, polled
//! over HTTP) and aggregate jobs/sec. A measurement run (`cargo
//! bench`) writes `BENCH_serve.json` at the workspace root; the quick
//! test-mode pass (`cargo test`) only checks the harness works.
//!
//! Placement jobs are CPU-bound and independent, so on a multi-core
//! host jobs/sec should improve with worker count; on a single-core
//! host the three configurations mostly measure scheduling overhead.
//! Each row records `host_threads` so the numbers can be read in
//! context.

use criterion::{criterion_group, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use twmc_netlist::{synthesize, write_netlist, SynthParams};
use twmc_serve::{client, json, Daemon, ServeOptions, Server};

fn job_netlist(seed: u64) -> String {
    write_netlist(&synthesize(&SynthParams {
        cells: 4,
        nets: 6,
        pins: 18,
        seed,
        ..Default::default()
    }))
}

/// Starts a daemon + server over a fresh spool; returns the address,
/// the stop flag, the join handle, and the spool path for cleanup.
fn start(workers: usize, tag: &str) -> StartedServer {
    let spool = std::env::temp_dir().join(format!(
        "twmc-bench-serve-{tag}-{workers}w-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&spool);
    let daemon = Daemon::start(ServeOptions {
        workers,
        spool: spool.clone(),
        ..Default::default()
    })
    .expect("daemon starts");
    let server = Server::bind("127.0.0.1:0", daemon).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || server.run(&flag));
    StartedServer {
        addr,
        stop,
        handle,
        spool,
    }
}

struct StartedServer {
    addr: String,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
    spool: std::path::PathBuf,
}

impl StartedServer {
    fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().unwrap().expect("clean drain");
        let _ = std::fs::remove_dir_all(&self.spool);
    }
}

#[derive(Serialize)]
struct ServeRow {
    /// Daemon worker threads.
    workers: usize,
    /// Hardware threads available on the bench host.
    host_threads: usize,
    /// Jobs in the batch.
    jobs: usize,
    /// Batch wall-clock (first submit to last completion), seconds.
    wall_secs: f64,
    /// Aggregate throughput.
    jobs_per_sec: f64,
    /// Median end-to-end latency (submit → done), milliseconds.
    p50_ms: f64,
    /// 95th-percentile end-to-end latency, milliseconds.
    p95_ms: f64,
}

/// Runs one batch at the given worker count, one client thread per
/// job, measuring each job's submit→done latency over HTTP.
fn batch_row(workers: usize, jobs: usize, ac: usize) -> ServeRow {
    let server = start(workers, "batch");
    let addr = server.addr.clone();
    let t0 = Instant::now();
    let clients: Vec<_> = (0..jobs)
        .map(|j| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let netlist = job_netlist(j as u64 + 1);
                let submitted = Instant::now();
                let resp =
                    client::post_raw(&addr, &format!("/jobs?seed={}&ac={ac}", j + 1), &netlist)
                        .expect("submit");
                assert_eq!(resp.status, 201, "{}", resp.body);
                let id = json::get_str(&resp.json().unwrap(), "id")
                    .expect("id")
                    .to_owned();
                loop {
                    let state = client::get(&addr, &format!("/jobs/{id}")).expect("poll");
                    match json::get_str(&state.json().unwrap(), "state") {
                        Some("done") => break,
                        Some("failed") | Some("cancelled") => {
                            panic!("job {id} ended badly: {}", state.body)
                        }
                        _ => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
                submitted.elapsed().as_secs_f64() * 1e3
            })
        })
        .collect();
    let mut latencies: Vec<f64> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let wall_secs = t0.elapsed().as_secs_f64();
    server.shutdown();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    ServeRow {
        workers,
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        jobs,
        wall_secs,
        jobs_per_sec: jobs as f64 / wall_secs,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
    }
}

/// The 1/2/4-worker sweep, dumped as `BENCH_serve.json` on a
/// measurement run.
fn serve_summary(test_mode: bool) {
    let (jobs, ac, worker_counts): (usize, usize, &[usize]) = if test_mode {
        (4, 2, &[2])
    } else {
        (24, 3, &[1, 2, 4])
    };
    let mut rows = Vec::new();
    for &workers in worker_counts {
        let row = batch_row(workers, jobs, ac);
        eprintln!(
            "serve/batch {} worker(s): {} jobs in {:.2}s = {:.2} jobs/s, \
             latency p50 {:.0}ms p95 {:.0}ms",
            row.workers, row.jobs, row.wall_secs, row.jobs_per_sec, row.p50_ms, row.p95_ms
        );
        rows.push(row);
    }
    if !test_mode {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        let text = serde_json::to_string_pretty(&rows).expect("serializable rows");
        std::fs::write(out, text).expect("writable workspace root");
        eprintln!("wrote {out}");
    }
}

/// Criterion view of the HTTP layer alone: a healthz round trip —
/// connection, request parse, routing, response — with no placement
/// work behind it.
fn bench_http_roundtrip(c: &mut Criterion) {
    let server = start(1, "criterion");
    let addr = server.addr.clone();
    c.bench_function("serve/healthz_roundtrip", |bench| {
        bench.iter(|| {
            let resp = client::get(&addr, "/healthz").expect("healthz");
            assert_eq!(resp.status, 200);
            black_box(resp.body.len())
        })
    });
    server.shutdown();
}

criterion_group!(benches, bench_http_roundtrip);

fn main() {
    serve_summary(!criterion::bench_mode());
    benches();
}
