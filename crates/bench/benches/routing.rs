//! Criterion benchmarks of channel definition and global routing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use twmc_geom::{Point, Rect, TileSet};
use twmc_route::{
    assign_routes, build_channel_graph, critical_regions, enumerate_route_trees, global_route,
    k_shortest_paths, NetPins, PlacedGeometry, RouteTree, RouterParams,
};

/// A 4x4 grid of cells: a realistic mid-size channel network.
fn grid_geometry() -> PlacedGeometry {
    let mut cells = Vec::new();
    for gy in 0..4i64 {
        for gx in 0..4i64 {
            cells.push((
                TileSet::rect(12, 12),
                Point::new(gx * 20 - 38, gy * 20 - 38),
            ));
        }
    }
    PlacedGeometry {
        cells,
        core: Rect::from_wh(-44, -44, 88, 88),
    }
}

fn bench_channel_definition(c: &mut Criterion) {
    let g = grid_geometry();
    c.bench_function("route/critical_regions_16cells", |bench| {
        bench.iter(|| black_box(critical_regions(black_box(&g))))
    });
    c.bench_function("route/build_channel_graph_16cells", |bench| {
        bench.iter(|| black_box(build_channel_graph(black_box(&g), 2.0)))
    });
}

fn bench_paths(c: &mut Criterion) {
    let graph = build_channel_graph(&grid_geometry(), 2.0);
    let (s, t) = (0, graph.len() - 1);
    c.bench_function("route/k_shortest_paths_k8", |bench| {
        bench.iter(|| black_box(k_shortest_paths(&graph, black_box(s), black_box(t), 8)))
    });
    c.bench_function("route/enumerate_trees_4pin_m8", |bench| {
        let points = vec![
            vec![0],
            vec![graph.len() / 3],
            vec![2 * graph.len() / 3],
            vec![graph.len() - 1],
        ];
        bench.iter(|| black_box(enumerate_route_trees(&graph, black_box(&points), 8, 3)))
    });
}

fn bench_assignment(c: &mut Criterion) {
    let mut graph = build_channel_graph(&grid_geometry(), 2.0);
    for e in &mut graph.edges {
        e.capacity = 1; // force congestion so phase 2 has work to do
    }
    let alternatives: Vec<Vec<RouteTree>> = (0..16)
        .map(|k| {
            let s = k % graph.len();
            let t = (k * 7 + 5) % graph.len();
            if s == t {
                Vec::new()
            } else {
                enumerate_route_trees(&graph, &[vec![s], vec![t]], 8, 3)
            }
        })
        .collect();
    c.bench_function("route/assign_routes_16nets_congested", |bench| {
        bench.iter(|| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
            black_box(assign_routes(&graph, &alternatives, &mut rng).expect("fresh routes"))
        })
    });
}

fn bench_full_route(c: &mut Criterion) {
    let g = grid_geometry();
    let nets: Vec<NetPins> = (0..10)
        .map(|k| NetPins {
            points: vec![
                vec![Point::new(-26, -38 + 5 * k)],
                vec![Point::new(26, 38 - 5 * k)],
            ],
        })
        .collect();
    let mut group = c.benchmark_group("route/global_route");
    group.sample_size(20);
    group.bench_function("10nets_16cells", |bench| {
        bench.iter(|| black_box(global_route(&g, &nets, &RouterParams::default(), 5)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_channel_definition,
    bench_paths,
    bench_assignment,
    bench_full_route
);
criterion_main!(benches);
