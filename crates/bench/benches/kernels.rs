//! Criterion benchmarks of the hot kernels: the operations executed
//! millions of times inside the stage-1 inner loop (the paper's §2.2
//! notes the estimator update must be cheap enough for exactly this).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use twmc_estimator::{determine_core, EstimatorParams};
use twmc_geom::{boundary_edges, decompose_rectilinear, Orientation, Point, Rect, TileSet};
use twmc_netlist::{synthesize, SynthParams};

fn bench_overlap(c: &mut Criterion) {
    let a = TileSet::new(vec![
        Rect::from_wh(0, 0, 40, 16),
        Rect::from_wh(0, 16, 18, 14),
    ])
    .expect("tiles");
    let b = TileSet::rect(30, 25);
    c.bench_function("geom/expanded_overlap_L_vs_rect", |bench| {
        bench.iter(|| {
            black_box(a.expanded_overlap_area_at(
                black_box(Point::new(0, 0)),
                (3, 3, 2, 2),
                &b,
                black_box(Point::new(35, 5)),
                (2, 2, 2, 2),
            ))
        })
    });
}

fn bench_orientation(c: &mut Criterion) {
    c.bench_function("geom/orientation_apply_all8", |bench| {
        bench.iter(|| {
            let mut acc = 0i64;
            for o in Orientation::ALL {
                let p = o.apply(black_box(Point::new(13, 7)), 40, 30);
                acc += p.x + p.y;
            }
            black_box(acc)
        })
    });
}

fn bench_boundary(c: &mut Criterion) {
    let plus = decompose_rectilinear(&[
        Point::new(2, 0),
        Point::new(4, 0),
        Point::new(4, 2),
        Point::new(6, 2),
        Point::new(6, 4),
        Point::new(4, 4),
        Point::new(4, 6),
        Point::new(2, 6),
        Point::new(2, 4),
        Point::new(0, 4),
        Point::new(0, 2),
        Point::new(2, 2),
    ])
    .expect("plus shape");
    c.bench_function("geom/boundary_edges_12edge_cell", |bench| {
        bench.iter(|| black_box(boundary_edges(black_box(&plus))))
    });
}

fn bench_estimator(c: &mut Criterion) {
    let nl = synthesize(&SynthParams {
        cells: 25,
        nets: 70,
        pins: 280,
        ..Default::default()
    });
    let est = determine_core(&nl, &EstimatorParams::default()).estimator;
    c.bench_function("estimator/edge_allowance", |bench| {
        bench.iter(|| black_box(est.edge_allowance(black_box(37.0), black_box(-12.0), 1.5)))
    });
    c.bench_function("estimator/side_expansions", |bench| {
        let r = Rect::from_wh(-20, -10, 40, 30);
        bench.iter(|| black_box(est.side_expansions(black_box(r), |_| 1.0)))
    });
    c.bench_function("estimator/determine_core_25cells", |bench| {
        bench.iter_batched(
            || &nl,
            |nl| black_box(determine_core(nl, &EstimatorParams::default())),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_overlap,
    bench_orientation,
    bench_boundary,
    bench_estimator
);
criterion_main!(benches);
