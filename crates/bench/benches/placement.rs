//! Criterion benchmarks of the stage-1 placement machinery, anchoring
//! the paper's CPU-time narrative (§3.3: execution time is directly
//! proportional to `A_c`; 15 min – 4 h on a MicroVAX II at 1988 speeds).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use twmc_anneal::CoolingSchedule;
use twmc_estimator::{cell_density_factors, determine_core, EstimatorParams};
use twmc_netlist::{synthesize, Netlist, SynthParams};
use twmc_place::{
    generate, legalize, place_stage1, MoveSet, MoveStats, PlaceParams, PlacementState,
};

fn circuit25() -> Netlist {
    synthesize(&SynthParams {
        cells: 25,
        nets: 70,
        pins: 280,
        custom_fraction: 0.2,
        ..Default::default()
    })
}

fn make_state(nl: &Netlist) -> PlacementState<'_> {
    let det = determine_core(nl, &EstimatorParams::default());
    let density = cell_density_factors(nl, nl.stats().avg_pin_density);
    let mut rng = StdRng::seed_from_u64(1);
    PlacementState::random(nl, det.estimator, density, 5.0, &mut rng)
}

fn bench_generate(c: &mut Criterion) {
    let nl = circuit25();
    c.bench_function("place/generate_call_25cells", |bench| {
        let mut state = make_state(&nl);
        let mut rng = StdRng::seed_from_u64(2);
        let params = PlaceParams::default();
        let mut stats = MoveStats::default();
        bench.iter(|| {
            generate(
                &mut state,
                &params,
                MoveSet::Full,
                200.0,
                200.0,
                black_box(1000.0),
                &mut rng,
                &mut stats,
            )
        })
    });
}

fn bench_calibration(c: &mut Criterion) {
    let nl = circuit25();
    c.bench_function("place/p2_calibration_16samples", |bench| {
        bench.iter_batched(
            || (make_state(&nl), StdRng::seed_from_u64(3)),
            |(mut state, mut rng)| {
                state.calibrate_p2(0.5, 16, &mut rng);
                black_box(state.p2())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_legalize(c: &mut Criterion) {
    let nl = circuit25();
    c.bench_function("place/legalize_stacked_25cells", |bench| {
        bench.iter_batched(
            || {
                let mut st = make_state(&nl);
                for i in 0..nl.cells().len() {
                    st.set_cell_center(i, twmc_geom::Point::ORIGIN);
                }
                st
            },
            |mut st| black_box(legalize(&mut st, 2, 500)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_stage1(c: &mut Criterion) {
    let nl = circuit25();
    let mut group = c.benchmark_group("place/stage1");
    group.sample_size(10);
    // The paper's CPU-time claim: run time scales linearly with A_c.
    for ac in [5usize, 10, 20] {
        group.bench_function(format!("ac{ac}_25cells"), |bench| {
            bench.iter(|| {
                let params = PlaceParams {
                    attempts_per_cell: ac,
                    normalization_samples: 4,
                    ..Default::default()
                };
                black_box(place_stage1(
                    &nl,
                    &params,
                    &EstimatorParams::default(),
                    &CoolingSchedule::stage1(),
                    7,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generate,
    bench_calibration,
    bench_legalize,
    bench_stage1
);
criterion_main!(benches);
