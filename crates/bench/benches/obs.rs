//! Overhead bench of the telemetry layer (`twmc-obs`).
//!
//! Two claims back the "bounded overhead" design (DESIGN.md §8), both
//! checked here and summarized in `BENCH_obs.json` at the workspace
//! root on a measurement run (`cargo bench`):
//!
//! 1. **Bit-identical results.** Recording never touches an RNG stream,
//!    so `place_stage1_with` produces exactly the same placement as
//!    `place_stage1` for any recorder — verified by comparing the full
//!    per-temperature cost history of a disabled run against a run
//!    streaming JSONL into a memory sink.
//! 2. **Bounded cost.** Events are emitted per *temperature step* or per
//!    *routing execution*, never per move, so even the fully enabled
//!    JSONL path adds well under 2% per move; the disabled
//!    (`NullRecorder`) path is one always-false branch per step.
//!
//! The sweep covers four scopes: bare stage-1 placement, the same
//! stage-1 run with the live metrics hub attached (sharded counters
//! plus the stride-sampled per-move latency histogram, no events —
//! the always-on `/metrics` configuration), the same run with the
//! span [`Tracer`] attached (per-block timing plus sampled cost-term
//! attribution — the `twmc place --trace` configuration), and the
//! full pipeline (stage 1 + stage 2 + finalize) whose stream
//! additionally carries the `route_iter` events — the bound must hold
//! with routing telemetry included.

use criterion::{criterion_group, Criterion};
use serde::Serialize;
use std::hint::black_box;

use twmc_anneal::CoolingSchedule;
use twmc_core::{run_timberwolf_with, TimberWolfConfig, TimberWolfResult};
use twmc_estimator::EstimatorParams;
use twmc_netlist::{synthesize, Netlist, SynthParams};
use twmc_obs::trace::capture_to_string;
use twmc_obs::validate::validate_jsonl;
use twmc_obs::{Instrumented, JsonlRecorder, MetricsHub, NullRecorder, Recorder, Tracer};
use twmc_place::{place_stage1_with, PlaceParams, Stage1Result};
use twmc_route::RouterParams;

fn circuit(cells: usize) -> Netlist {
    synthesize(&SynthParams {
        cells,
        nets: cells * 3,
        pins: cells * 12,
        custom_fraction: 0.2,
        seed: 11,
        avg_cell_dim: 24,
        ..Default::default()
    })
}

fn params(ac: usize) -> PlaceParams {
    PlaceParams {
        attempts_per_cell: ac,
        normalization_samples: 8,
        ..Default::default()
    }
}

/// A full stage-1 run against the given recorder, timed.
fn timed_run(nl: &Netlist, pp: &PlaceParams, rec: &mut dyn Recorder) -> (Stage1Result, f64) {
    let t0 = std::time::Instant::now();
    let (_, result) = place_stage1_with(
        nl,
        pp,
        &EstimatorParams::default(),
        &CoolingSchedule::stage1(),
        42,
        rec,
    );
    let secs = t0.elapsed().as_secs_f64();
    (result, secs)
}

fn identical(a: &Stage1Result, b: &Stage1Result) -> bool {
    a.teil == b.teil
        && a.history.len() == b.history.len()
        && a.history
            .iter()
            .zip(&b.history)
            .all(|(x, y)| x.cost == y.cost && x.attempts == y.attempts && x.accepts == y.accepts)
        && a.moves == b.moves
}

#[derive(Serialize)]
struct ObsRow {
    /// What was measured: bare `stage1` placement, or the full
    /// `pipeline` including stage-2 routing telemetry.
    scope: &'static str,
    cells: usize,
    moves: usize,
    events: usize,
    /// `route_iter` events in the stream (0 for the stage-1 scope).
    route_iters: usize,
    jsonl_bytes: usize,
    disabled_ns_per_move: f64,
    /// Per-move cost with the scope's instrumentation enabled (a JSONL
    /// sink for the event scopes, the live metrics hub for `metrics`).
    jsonl_ns_per_move: f64,
    /// Extra per-move cost of the enabled path over the disabled path,
    /// in percent. The acceptance bar is < 2%.
    overhead_pct: f64,
    /// Whether the recorded run reproduced the disabled run bit for bit
    /// (final TEIL, per-step costs/attempts/accepts, move counters).
    bit_identical: bool,
}

/// Disabled-vs-JSONL stage-1 sweep: the original overhead row.
fn stage1_row(test_mode: bool) -> ObsRow {
    let (cells, ac, trials) = if test_mode { (10, 6, 1) } else { (40, 30, 9) };
    let nl = circuit(cells);
    let pp = params(ac);

    // Correctness: the recorded run must reproduce the disabled run.
    let (reference, _) = timed_run(&nl, &pp, &mut NullRecorder);
    let mut jsonl = JsonlRecorder::new(Vec::new());
    let (recorded, _) = timed_run(&nl, &pp, &mut jsonl);
    let events = jsonl.events();
    let jsonl_bytes = jsonl.finish().expect("memory sink").len();
    let bit_identical = identical(&reference, &recorded);

    // Timing: best of `trials` for each path (the minimum is the least
    // noise-contaminated estimate of the true cost).
    let moves = reference.moves.attempts();
    let mut disabled_best = f64::INFINITY;
    let mut jsonl_best = f64::INFINITY;
    for _ in 0..trials {
        let (_, secs) = timed_run(&nl, &pp, &mut NullRecorder);
        disabled_best = disabled_best.min(secs);
        let mut rec = JsonlRecorder::new(Vec::new());
        let (_, secs) = timed_run(&nl, &pp, &mut rec);
        black_box(rec.finish().expect("memory sink"));
        jsonl_best = jsonl_best.min(secs);
    }
    let disabled_ns = disabled_best * 1e9 / moves.max(1) as f64;
    let jsonl_ns = jsonl_best * 1e9 / moves.max(1) as f64;
    ObsRow {
        scope: "stage1",
        cells,
        moves,
        events,
        route_iters: 0,
        jsonl_bytes,
        disabled_ns_per_move: disabled_ns,
        jsonl_ns_per_move: jsonl_ns,
        overhead_pct: 100.0 * (jsonl_ns - disabled_ns) / disabled_ns.max(1e-12),
        bit_identical,
    }
}

/// Live-metrics sweep: a stage-1 run with the [`MetricsHub`] attached
/// but JSONL events off — the hot loop ticks the sharded move counters
/// and the stride-sampled per-move latency histogram on every
/// temperature step. This is the "always-on" configuration the live
/// `/metrics` plane runs in, so it carries the same <2% bound.
fn metrics_row(test_mode: bool) -> ObsRow {
    let (cells, ac, trials) = if test_mode { (10, 6, 1) } else { (40, 30, 9) };
    let nl = circuit(cells);
    let pp = params(ac);

    // Correctness: the instrumented run must reproduce the disabled
    // run — the hub only ever reads clocks and ticks atomics, never an
    // RNG stream.
    let (reference, _) = timed_run(&nl, &pp, &mut NullRecorder);
    let hub = MetricsHub::new();
    let mut instrumented = Instrumented::new(NullRecorder, std::sync::Arc::clone(&hub));
    let (recorded, _) = timed_run(&nl, &pp, &mut instrumented);
    let bit_identical = identical(&reference, &recorded);
    let moves = reference.moves.attempts();
    assert_eq!(
        hub.moves_total.value(),
        moves as u64,
        "the hub missed move attempts"
    );
    assert!(
        hub.registry()
            .histogram_snapshot("twmc_move_eval_ns")
            .map_or(0, |h| h.count)
            > 0,
        "no per-move latencies were sampled"
    );

    let mut disabled_best = f64::INFINITY;
    let mut metrics_best = f64::INFINITY;
    for _ in 0..trials {
        let (_, secs) = timed_run(&nl, &pp, &mut NullRecorder);
        disabled_best = disabled_best.min(secs);
        let mut rec = Instrumented::new(NullRecorder, MetricsHub::new());
        let (_, secs) = timed_run(&nl, &pp, &mut rec);
        black_box(rec.hub().map(|h| h.render().len()));
        metrics_best = metrics_best.min(secs);
    }
    let disabled_ns = disabled_best * 1e9 / moves.max(1) as f64;
    let metrics_ns = metrics_best * 1e9 / moves.max(1) as f64;
    ObsRow {
        scope: "metrics",
        cells,
        moves,
        events: 0,
        route_iters: 0,
        jsonl_bytes: 0,
        disabled_ns_per_move: disabled_ns,
        jsonl_ns_per_move: metrics_ns,
        overhead_pct: 100.0 * (metrics_ns - disabled_ns) / disabled_ns.max(1e-12),
        bit_identical,
    }
}

/// Span-tracing sweep: a stage-1 run with a [`Tracer`] attached and no
/// event sink — every temperature step opens a span, every 32-move
/// block is timed into the per-thread ring, and the stride-sampled
/// cost-term attribution runs. This is the `twmc place --trace`
/// configuration, so it carries the same <2% per-move bound.
fn trace_row(test_mode: bool) -> ObsRow {
    let (cells, ac, trials) = if test_mode { (10, 6, 1) } else { (40, 30, 9) };
    let nl = circuit(cells);
    let pp = params(ac);

    // Correctness: the traced run must reproduce the disabled run —
    // spans only ever read clocks and write to the lock-free ring,
    // never an RNG stream.
    let (reference, _) = timed_run(&nl, &pp, &mut NullRecorder);
    let tracer = Tracer::new();
    let mut traced = Instrumented::maybe(NullRecorder, None).with_tracer(Some(tracer.clone()));
    let (recorded, _) = timed_run(&nl, &pp, &mut traced);
    let bit_identical = identical(&reference, &recorded);
    let snap = tracer.collect();
    let spans = snap.total_spans();
    let move_blocks = snap.lane("main").map_or(0, |l| {
        l.spans.iter().filter(|s| s.name == "move_block").count()
    });
    assert!(move_blocks > 0, "no move_block spans were recorded");
    let capture_bytes = capture_to_string(&snap).len();

    let moves = reference.moves.attempts();
    let mut disabled_best = f64::INFINITY;
    let mut traced_best = f64::INFINITY;
    for _ in 0..trials {
        let (_, secs) = timed_run(&nl, &pp, &mut NullRecorder);
        disabled_best = disabled_best.min(secs);
        let t = Tracer::new();
        let mut rec = Instrumented::maybe(NullRecorder, None).with_tracer(Some(t.clone()));
        let (_, secs) = timed_run(&nl, &pp, &mut rec);
        black_box(t.collect().total_spans());
        traced_best = traced_best.min(secs);
    }
    let disabled_ns = disabled_best * 1e9 / moves.max(1) as f64;
    let traced_ns = traced_best * 1e9 / moves.max(1) as f64;
    ObsRow {
        scope: "trace",
        cells,
        moves,
        events: spans,
        route_iters: 0,
        jsonl_bytes: capture_bytes,
        disabled_ns_per_move: disabled_ns,
        jsonl_ns_per_move: traced_ns,
        overhead_pct: 100.0 * (traced_ns - disabled_ns) / disabled_ns.max(1e-12),
        bit_identical,
    }
}

fn pipeline_config(ac: usize, seed: u64) -> TimberWolfConfig {
    TimberWolfConfig {
        place: params(ac),
        refine: twmc_refine::RefineParams {
            router: RouterParams {
                m_alternatives: 6,
                per_level: 3,
                ..Default::default()
            },
            ..Default::default()
        },
        seed,
        ..Default::default()
    }
}

fn timed_pipeline(
    nl: &Netlist,
    config: &TimberWolfConfig,
    rec: &mut dyn Recorder,
) -> (TimberWolfResult, f64) {
    let t0 = std::time::Instant::now();
    let result = run_timberwolf_with(nl, config, rec);
    (result, t0.elapsed().as_secs_f64())
}

fn pipeline_identical(a: &TimberWolfResult, b: &TimberWolfResult) -> bool {
    a.teil == b.teil
        && a.routed_length == b.routed_length
        && a.chip == b.chip
        && a.placement == b.placement
        && identical(&a.stage1, &b.stage1)
}

/// Full-pipeline sweep: the stream now carries `route_iter` events from
/// every stage-2 refinement and finalize pass, and the overhead bound
/// must hold with them included.
fn pipeline_row(test_mode: bool) -> ObsRow {
    let (cells, ac, trials) = if test_mode { (8, 4, 1) } else { (16, 10, 3) };
    let nl = circuit(cells);
    let config = pipeline_config(ac, 42);

    let (reference, _) = timed_pipeline(&nl, &config, &mut NullRecorder);
    let mut jsonl = JsonlRecorder::new(Vec::new());
    let (recorded, _) = timed_pipeline(&nl, &config, &mut jsonl);
    let events = jsonl.events();
    let bytes = jsonl.finish().expect("memory sink");
    let text = String::from_utf8(bytes).expect("utf-8 stream");
    let stats = validate_jsonl(&text).expect("recorded stream validates");
    let route_iters = stats.kind_counts.get("route_iter").copied().unwrap_or(0);
    let bit_identical = pipeline_identical(&reference, &recorded);

    let moves = reference.stage1.moves.attempts();
    let mut disabled_best = f64::INFINITY;
    let mut jsonl_best = f64::INFINITY;
    for _ in 0..trials {
        let (_, secs) = timed_pipeline(&nl, &config, &mut NullRecorder);
        disabled_best = disabled_best.min(secs);
        let mut rec = JsonlRecorder::new(Vec::new());
        let (_, secs) = timed_pipeline(&nl, &config, &mut rec);
        black_box(rec.finish().expect("memory sink"));
        jsonl_best = jsonl_best.min(secs);
    }
    let disabled_ns = disabled_best * 1e9 / moves.max(1) as f64;
    let jsonl_ns = jsonl_best * 1e9 / moves.max(1) as f64;
    ObsRow {
        scope: "pipeline",
        cells,
        moves,
        events,
        route_iters,
        jsonl_bytes: text.len(),
        disabled_ns_per_move: disabled_ns,
        jsonl_ns_per_move: jsonl_ns,
        overhead_pct: 100.0 * (jsonl_ns - disabled_ns) / disabled_ns.max(1e-12),
        bit_identical,
    }
}

/// Runs the three sweeps, dumped as `BENCH_obs.json` on a measurement
/// run.
fn obs_summary(test_mode: bool) {
    let rows = [
        stage1_row(test_mode),
        metrics_row(test_mode),
        trace_row(test_mode),
        pipeline_row(test_mode),
    ];
    for row in &rows {
        eprintln!(
            "obs/overhead {} {} cells: {} moves, {} events ({} route_iter, {} bytes), \
             disabled {:.0}ns/move, enabled {:.0}ns/move ({:+.2}%), bit-identical: {}",
            row.scope,
            row.cells,
            row.moves,
            row.events,
            row.route_iters,
            row.jsonl_bytes,
            row.disabled_ns_per_move,
            row.jsonl_ns_per_move,
            row.overhead_pct,
            row.bit_identical,
        );
        assert!(
            row.bit_identical,
            "telemetry perturbed the {} run",
            row.scope
        );
    }
    let pipeline = &rows[3];
    assert!(
        pipeline.route_iters > 0,
        "pipeline stream carried no route_iter events"
    );
    if !test_mode {
        // The acceptance bar: streaming telemetry — route_iter emission
        // included — stays under 2% per move, and so do the live
        // metrics hub and the span tracer. Only enforced on a
        // measurement run; single-trial test-mode timings are noise.
        assert!(
            pipeline.overhead_pct < 2.0,
            "route_iter telemetry overhead {:.2}% exceeds the 2% bound",
            pipeline.overhead_pct
        );
        let metrics = &rows[1];
        assert!(
            metrics.overhead_pct < 2.0,
            "live-metrics overhead {:.2}% exceeds the 2% bound",
            metrics.overhead_pct
        );
        let trace = &rows[2];
        assert!(
            trace.overhead_pct < 2.0,
            "span-tracing overhead {:.2}% exceeds the 2% bound",
            trace.overhead_pct
        );
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
        let text = serde_json::to_string_pretty(&rows).expect("serializable rows");
        std::fs::write(out, text).expect("writable workspace root");
        eprintln!("wrote {out}");
    }
}

fn bench_recorders(c: &mut Criterion) {
    let nl = circuit(10);
    let pp = params(6);
    let mut group = c.benchmark_group("obs/stage1_10cells");
    group.bench_function("disabled", |bench| {
        bench.iter(|| black_box(timed_run(&nl, &pp, &mut NullRecorder).0.teil))
    });
    group.bench_function("jsonl", |bench| {
        bench.iter(|| {
            let mut rec = JsonlRecorder::new(Vec::new());
            let teil = timed_run(&nl, &pp, &mut rec).0.teil;
            black_box((teil, rec.finish().expect("memory sink").len()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_recorders);

fn main() {
    obs_summary(!criterion::bench_mode());
    benches();
}
