//! Benchmarks of the multi-replica stage-1 orchestrator: wall-clock and
//! best TEIL versus replica count on a mid-size synthetic circuit.
//!
//! Besides the criterion timings, a measurement run (`cargo bench`)
//! writes a `BENCH_parallel.json` scaling summary at the workspace root
//! — one row per replica count and strategy with the wall-clock and the
//! best-of-N stage-1 TEIL.

use criterion::{criterion_group, Criterion};
use serde::Serialize;
use std::hint::black_box;

use twmc_anneal::CoolingSchedule;
use twmc_estimator::EstimatorParams;
use twmc_netlist::{synthesize, Netlist, SynthParams};
use twmc_obs::NullRecorder;
use twmc_parallel::{
    parallel_stage1, parallel_stage1_resilient, ParallelParams, RunCtrl, Stage1Outcome, Strategy,
};
use twmc_place::PlaceParams;
use twmc_resume::CheckpointWriter;

fn midsize_circuit() -> Netlist {
    synthesize(&SynthParams {
        cells: 30,
        nets: 90,
        pins: 360,
        custom_fraction: 0.2,
        seed: 11,
        avg_cell_dim: 30,
        ..Default::default()
    })
}

fn params(ac: usize) -> PlaceParams {
    PlaceParams {
        attempts_per_cell: ac,
        normalization_samples: 8,
        ..Default::default()
    }
}

fn run_seeded(nl: &Netlist, ac: usize, replicas: usize, strategy: Strategy, seed: u64) -> f64 {
    let pp = ParallelParams {
        replicas,
        threads: 0, // one worker per replica
        strategy,
        ..Default::default()
    };
    let (_, result, _) = parallel_stage1(
        nl,
        &params(ac),
        &EstimatorParams::default(),
        &CoolingSchedule::stage1(),
        &pp,
        seed,
    );
    result.teil
}

fn run(nl: &Netlist, ac: usize, replicas: usize, strategy: Strategy) -> f64 {
    run_seeded(nl, ac, replicas, strategy, 42)
}

#[derive(Serialize)]
struct ScalingRow {
    replicas: usize,
    strategy: String,
    wall_seconds: f64,
    best_teil: f64,
}

#[derive(Serialize)]
struct CheckpointOverheadRow {
    replicas: usize,
    cadence_steps: u64,
    plain_seconds: f64,
    checkpointed_seconds: f64,
    overhead_pct: f64,
    checkpoints_written: u64,
}

#[derive(Serialize)]
struct EqualWallRow {
    replicas: usize,
    tempering_wall_seconds: f64,
    tempering_best_teil: f64,
    multistart_batches: usize,
    multistart_wall_seconds: f64,
    multistart_best_teil: f64,
}

#[derive(Serialize)]
struct BenchSummary {
    scaling: Vec<ScalingRow>,
    equal_wall: Vec<EqualWallRow>,
    checkpoint_overhead: CheckpointOverheadRow,
}

/// The equal-wall-clock win gate behind `twmc diff --bench-parallel`:
/// time one tempering run, then grant multistart the same CPU budget
/// as best-of-N batches (distinct master seeds, at least one batch)
/// and record both best TEILs. A ladder that cannot beat that at ≥ 4
/// replicas is not earning its exchange overhead.
fn equal_wall_row(nl: &Netlist, ac: usize, replicas: usize) -> EqualWallRow {
    let t0 = std::time::Instant::now();
    let tempering_best_teil = run_seeded(nl, ac, replicas, Strategy::Tempering, 42);
    let tempering_wall = t0.elapsed().as_secs_f64();
    let mut best = f64::INFINITY;
    let mut batches = 0usize;
    let m0 = std::time::Instant::now();
    loop {
        best = best.min(run_seeded(
            nl,
            ac,
            replicas,
            Strategy::MultiStart,
            42 + batches as u64,
        ));
        batches += 1;
        let spent = m0.elapsed().as_secs_f64();
        // Another batch fits only if the running average still does.
        if spent + spent / batches as f64 > tempering_wall {
            break;
        }
    }
    EqualWallRow {
        replicas,
        tempering_wall_seconds: tempering_wall,
        tempering_best_teil,
        multistart_batches: batches,
        multistart_wall_seconds: m0.elapsed().as_secs_f64(),
        multistart_best_teil: best,
    }
}

/// Wall-clock of one multistart stage-1 run, optionally checkpointing
/// at the default `--checkpoint-every 10` cadence. Returns the elapsed
/// seconds and the number of checkpoints flushed.
fn timed_run(
    nl: &Netlist,
    ac: usize,
    replicas: usize,
    ckpt: Option<&std::path::Path>,
) -> (f64, u64) {
    let pp = ParallelParams {
        replicas,
        threads: 0,
        strategy: Strategy::MultiStart,
        ..Default::default()
    };
    let mut ctrl = RunCtrl {
        writer: ckpt.map(|path| CheckpointWriter::new(path, 10)),
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let outcome = parallel_stage1_resilient(
        nl,
        &params(ac),
        &EstimatorParams::default(),
        &CoolingSchedule::stage1(),
        &pp,
        42,
        &mut NullRecorder,
        &mut ctrl,
    )
    .expect("bench run completes");
    let secs = t0.elapsed().as_secs_f64();
    assert!(matches!(outcome, Stage1Outcome::Complete { .. }));
    (secs, ctrl.writer.map_or(0, |w| w.written()))
}

/// Measures the periodic-checkpoint tax at the default cadence: the
/// same multistart run with and without a writer, best of `reps`
/// interleaved pairs after a discarded warm-up run. The runs are
/// deterministic, so the fastest observation of each variant is the
/// closest to its true cost; without the warm-up, the first run's
/// cold caches and frequency scaling land on one variant and fake a
/// multi-percent "tax" that is really scheduler noise.
fn checkpoint_overhead(test_mode: bool) -> CheckpointOverheadRow {
    let nl = midsize_circuit();
    let (ac, reps) = if test_mode { (2, 1) } else { (20, 7) };
    let dir = std::env::temp_dir().join(format!("twmc-bench-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bench.ckpt");
    let mut plain = f64::INFINITY;
    let mut checkpointed = f64::INFINITY;
    let mut written = 0;
    if !test_mode {
        let _ = timed_run(&nl, ac, 2, None);
    }
    for _ in 0..reps {
        plain = plain.min(timed_run(&nl, ac, 2, None).0);
        let (secs, n) = timed_run(&nl, ac, 2, Some(&path));
        if secs < checkpointed {
            checkpointed = secs;
            written = n;
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    CheckpointOverheadRow {
        replicas: 2,
        cadence_steps: 10,
        plain_seconds: plain,
        checkpointed_seconds: checkpointed,
        // Per-move overhead: both runs execute the identical move
        // sequence, so the wall-clock ratio IS the per-move ratio.
        overhead_pct: 100.0 * (checkpointed - plain) / plain,
        checkpoints_written: written,
    }
}

/// Wall-clock/quality scaling sweep, dumped as `BENCH_parallel.json`.
fn scaling_summary(test_mode: bool) {
    let nl = midsize_circuit();
    let ac = if test_mode { 2 } else { 10 };
    let counts: &[usize] = if test_mode { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut rows = Vec::new();
    for &replicas in counts {
        for strategy in [Strategy::MultiStart, Strategy::Tempering] {
            if replicas == 1 && strategy == Strategy::Tempering {
                continue; // degenerates to a single run
            }
            let t0 = std::time::Instant::now();
            let best_teil = run(&nl, ac, replicas, strategy);
            rows.push(ScalingRow {
                replicas,
                strategy: strategy.to_string(),
                wall_seconds: t0.elapsed().as_secs_f64(),
                best_teil,
            });
        }
    }
    for r in &rows {
        eprintln!(
            "parallel/scaling {} x{}: {:.2}s, best TEIL {:.0}",
            r.strategy, r.replicas, r.wall_seconds, r.best_teil
        );
    }
    let gate_counts: &[usize] = if test_mode { &[2] } else { &[4, 8] };
    let equal_wall: Vec<EqualWallRow> = gate_counts
        .iter()
        .map(|&n| equal_wall_row(&nl, ac, n))
        .collect();
    for r in &equal_wall {
        eprintln!(
            "parallel/equal-wall x{}: tempering {:.0} ({:.2}s) vs multistart {:.0} \
             ({} batches, {:.2}s){}",
            r.replicas,
            r.tempering_best_teil,
            r.tempering_wall_seconds,
            r.multistart_best_teil,
            r.multistart_batches,
            r.multistart_wall_seconds,
            if r.tempering_best_teil <= r.multistart_best_teil {
                ""
            } else {
                "  << LOSES"
            },
        );
    }
    let overhead = checkpoint_overhead(test_mode);
    eprintln!(
        "parallel/checkpoint x{} every {} steps: {:.2}s -> {:.2}s \
         ({:+.2}% per-move, {} checkpoints)",
        overhead.replicas,
        overhead.cadence_steps,
        overhead.plain_seconds,
        overhead.checkpointed_seconds,
        overhead.overhead_pct,
        overhead.checkpoints_written,
    );
    assert!(overhead.checkpoints_written > 0, "cadence never fired");
    if !test_mode {
        // Acceptance gate: periodic checkpointing at the default
        // cadence must stay within a 2% per-move tax.
        assert!(
            overhead.overhead_pct <= 2.0,
            "checkpoint overhead {:.2}% exceeds the 2% budget",
            overhead.overhead_pct
        );
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
        let summary = BenchSummary {
            scaling: rows,
            equal_wall,
            checkpoint_overhead: overhead,
        };
        let text = serde_json::to_string_pretty(&summary).expect("serializable rows");
        std::fs::write(out, text).expect("writable workspace root");
        eprintln!("wrote {out}");
    }
}

fn bench_multistart(c: &mut Criterion) {
    let nl = midsize_circuit();
    let mut group = c.benchmark_group("parallel/multistart");
    group.sample_size(10);
    for replicas in [1usize, 2, 4] {
        group.bench_function(format!("x{replicas}_30cells"), |bench| {
            bench.iter(|| black_box(run(&nl, 5, replicas, Strategy::MultiStart)))
        });
    }
    group.finish();
}

fn bench_tempering(c: &mut Criterion) {
    let nl = midsize_circuit();
    let mut group = c.benchmark_group("parallel/tempering");
    group.sample_size(10);
    for replicas in [2usize, 4] {
        group.bench_function(format!("x{replicas}_30cells"), |bench| {
            bench.iter(|| black_box(run(&nl, 5, replicas, Strategy::Tempering)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multistart, bench_tempering);

fn main() {
    scaling_summary(!criterion::bench_mode());
    benches();
}
