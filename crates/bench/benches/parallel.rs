//! Benchmarks of the multi-replica stage-1 orchestrator: wall-clock and
//! best TEIL versus replica count on a mid-size synthetic circuit.
//!
//! Besides the criterion timings, a measurement run (`cargo bench`)
//! writes a `BENCH_parallel.json` scaling summary at the workspace root
//! — one row per replica count and strategy with the wall-clock and the
//! best-of-N stage-1 TEIL.

use criterion::{criterion_group, Criterion};
use serde::Serialize;
use std::hint::black_box;

use twmc_anneal::CoolingSchedule;
use twmc_estimator::EstimatorParams;
use twmc_netlist::{synthesize, Netlist, SynthParams};
use twmc_parallel::{parallel_stage1, ParallelParams, Strategy};
use twmc_place::PlaceParams;

fn midsize_circuit() -> Netlist {
    synthesize(&SynthParams {
        cells: 30,
        nets: 90,
        pins: 360,
        custom_fraction: 0.2,
        seed: 11,
        avg_cell_dim: 30,
        ..Default::default()
    })
}

fn params(ac: usize) -> PlaceParams {
    PlaceParams {
        attempts_per_cell: ac,
        normalization_samples: 8,
        ..Default::default()
    }
}

fn run(nl: &Netlist, ac: usize, replicas: usize, strategy: Strategy) -> f64 {
    let pp = ParallelParams {
        replicas,
        threads: 0, // one worker per replica
        strategy,
        ..Default::default()
    };
    let (_, result, _) = parallel_stage1(
        nl,
        &params(ac),
        &EstimatorParams::default(),
        &CoolingSchedule::stage1(),
        &pp,
        42,
    );
    result.teil
}

#[derive(Serialize)]
struct ScalingRow {
    replicas: usize,
    strategy: String,
    wall_seconds: f64,
    best_teil: f64,
}

/// Wall-clock/quality scaling sweep, dumped as `BENCH_parallel.json`.
fn scaling_summary(test_mode: bool) {
    let nl = midsize_circuit();
    let ac = if test_mode { 2 } else { 10 };
    let counts: &[usize] = if test_mode { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut rows = Vec::new();
    for &replicas in counts {
        for strategy in [Strategy::MultiStart, Strategy::Tempering] {
            if replicas == 1 && strategy == Strategy::Tempering {
                continue; // degenerates to a single run
            }
            let t0 = std::time::Instant::now();
            let best_teil = run(&nl, ac, replicas, strategy);
            rows.push(ScalingRow {
                replicas,
                strategy: strategy.to_string(),
                wall_seconds: t0.elapsed().as_secs_f64(),
                best_teil,
            });
        }
    }
    for r in &rows {
        eprintln!(
            "parallel/scaling {} x{}: {:.2}s, best TEIL {:.0}",
            r.strategy, r.replicas, r.wall_seconds, r.best_teil
        );
    }
    if !test_mode {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
        let text = serde_json::to_string_pretty(&rows).expect("serializable rows");
        std::fs::write(out, text).expect("writable workspace root");
        eprintln!("wrote {out}");
    }
}

fn bench_multistart(c: &mut Criterion) {
    let nl = midsize_circuit();
    let mut group = c.benchmark_group("parallel/multistart");
    group.sample_size(10);
    for replicas in [1usize, 2, 4] {
        group.bench_function(format!("x{replicas}_30cells"), |bench| {
            bench.iter(|| black_box(run(&nl, 5, replicas, Strategy::MultiStart)))
        });
    }
    group.finish();
}

fn bench_tempering(c: &mut Criterion) {
    let nl = midsize_circuit();
    let mut group = c.benchmark_group("parallel/tempering");
    group.sample_size(10);
    for replicas in [2usize, 4] {
        group.bench_function(format!("x{replicas}_30cells"), |bench| {
            bench.iter(|| black_box(run(&nl, 5, replicas, Strategy::Tempering)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multistart, bench_tempering);

fn main() {
    scaling_summary(!criterion::bench_mode());
    benches();
}
