//! Benchmarks of the stage-1 per-move cost kernels: the incremental
//! engine (bin-grid overlap index + cached net spans, `move_cost`)
//! against the from-scratch reference (`move_cost_scan`) at N ∈
//! {25, 100, 400} cells.
//!
//! Besides the criterion timings, a measurement run (`cargo bench`)
//! writes a `BENCH_place.json` summary at the workspace root — one row
//! per circuit size with the indexed and scan nanoseconds per evaluation
//! and the resulting speedup (the acceptance bar is ≥5× at 400 cells).

use criterion::{criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::hint::black_box;

use twmc_estimator::{cell_density_factors, determine_core, EstimatorParams};
use twmc_netlist::{synthesize, NetId, Netlist, SynthParams};
use twmc_place::PlacementState;

fn circuit(cells: usize) -> Netlist {
    synthesize(&SynthParams {
        cells,
        nets: cells * 3,
        pins: cells * 12,
        custom_fraction: 0.2,
        seed: 11,
        avg_cell_dim: 24,
        ..Default::default()
    })
}

fn make_state(nl: &Netlist) -> PlacementState<'_> {
    let det = determine_core(nl, &EstimatorParams::default());
    let density = cell_density_factors(nl, nl.stats().avg_pin_density);
    let mut rng = StdRng::seed_from_u64(1);
    PlacementState::random(nl, det.estimator, density, 5.0, &mut rng)
}

/// Pre-drawn single-cell move sites: the (involved, touched-nets) inputs
/// a `generate` displacement hands to the cost evaluation.
fn draw_moves(st: &PlacementState<'_>, n: usize, count: usize) -> Vec<([usize; 1], Vec<NetId>)> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..count)
        .map(|_| {
            let i = rng.random_range(0..n);
            let involved = [i];
            let nets = st.nets_touching(&involved);
            (involved, nets)
        })
        .collect()
}

#[derive(Serialize)]
struct KernelRow {
    cells: usize,
    indexed_ns_per_eval: f64,
    scan_ns_per_eval: f64,
    speedup: f64,
}

fn time_evals<F: FnMut() -> f64>(mut f: F, iters: usize) -> f64 {
    let t0 = std::time::Instant::now();
    let mut acc = 0.0;
    for _ in 0..iters {
        acc += f();
    }
    black_box(acc);
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Indexed-vs-scan sweep, dumped as `BENCH_place.json`.
fn kernel_summary(test_mode: bool) {
    let sizes: &[usize] = if test_mode { &[25] } else { &[25, 100, 400] };
    let evals = if test_mode { 8 } else { 4000 };
    let mut rows = Vec::new();
    for &n in sizes {
        let nl = circuit(n);
        let st = make_state(&nl);
        let moves = draw_moves(&st, n, 64);
        let mut ki = 0usize;
        let indexed = time_evals(
            || {
                let (involved, nets) = &moves[ki % moves.len()];
                ki += 1;
                st.move_cost(involved, nets).c1
            },
            evals,
        );
        let mut ks = 0usize;
        let scan = time_evals(
            || {
                let (involved, nets) = &moves[ks % moves.len()];
                ks += 1;
                st.move_cost_scan(involved, nets).c1
            },
            evals,
        );
        rows.push(KernelRow {
            cells: n,
            indexed_ns_per_eval: indexed,
            scan_ns_per_eval: scan,
            speedup: scan / indexed,
        });
    }
    for r in &rows {
        eprintln!(
            "place/kernels {} cells: indexed {:.0}ns, scan {:.0}ns, {:.1}x",
            r.cells, r.indexed_ns_per_eval, r.scan_ns_per_eval, r.speedup
        );
    }
    if !test_mode {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_place.json");
        let text = serde_json::to_string_pretty(&rows).expect("serializable rows");
        std::fs::write(out, text).expect("writable workspace root");
        eprintln!("wrote {out}");
    }
}

fn bench_move_cost(c: &mut Criterion) {
    for n in [25usize, 100, 400] {
        let nl = circuit(n);
        let st = make_state(&nl);
        let moves = draw_moves(&st, n, 64);
        let mut group = c.benchmark_group(format!("place/move_cost_{n}cells"));
        group.bench_function("indexed", |bench| {
            let mut k = 0usize;
            bench.iter(|| {
                let (involved, nets) = &moves[k % moves.len()];
                k += 1;
                black_box(st.move_cost(involved, nets))
            })
        });
        group.bench_function("scan", |bench| {
            let mut k = 0usize;
            bench.iter(|| {
                let (involved, nets) = &moves[k % moves.len()];
                k += 1;
                black_box(st.move_cost_scan(involved, nets))
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_move_cost);

fn main() {
    kernel_summary(!criterion::bench_mode());
    benches();
}
