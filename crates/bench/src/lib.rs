//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Every binary in `src/bin/` reproduces one table or figure (see
//! DESIGN.md §5 for the index and EXPERIMENTS.md for recorded results).
//! Binaries accept a common set of flags:
//!
//! ```text
//! --trials N   independent seeds per configuration (default 2)
//! --ac N       attempts per cell per temperature (default experiment-specific)
//! --seed N     base RNG seed (default 42)
//! --full       paper-scale settings (A_c = 200/400, more trials) — slow
//! --json PATH  also dump the rows as JSON
//! ```

#![warn(missing_docs)]

use serde::Serialize;

use twmc_anneal::CoolingSchedule;
use twmc_estimator::EstimatorParams;
use twmc_netlist::{synthesize, Netlist, SynthParams};
use twmc_place::{place_stage1, PlaceParams, Stage1Result};

/// Common command-line options for experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Independent seeds per configuration.
    pub trials: usize,
    /// Attempts per cell per temperature (`A_c`).
    pub ac: usize,
    /// Base seed.
    pub seed: u64,
    /// Paper-scale run.
    pub full: bool,
    /// Optional JSON dump path.
    pub json: Option<String>,
}

impl ExpOptions {
    /// Parses `std::env::args`, with an experiment-specific default `A_c`.
    pub fn parse(default_ac: usize) -> ExpOptions {
        let args: Vec<String> = std::env::args().skip(1).collect();
        ExpOptions::parse_from(&args, default_ac)
    }

    /// Parses an explicit argument list (testable core of [`ExpOptions::parse`]).
    pub fn parse_from(args: &[String], default_ac: usize) -> ExpOptions {
        let mut opts = ExpOptions {
            trials: 2,
            ac: default_ac,
            seed: 42,
            full: false,
            json: None,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--trials" => {
                    opts.trials = args[i + 1].parse().expect("--trials N");
                    i += 2;
                }
                "--ac" => {
                    opts.ac = args[i + 1].parse().expect("--ac N");
                    i += 2;
                }
                "--seed" => {
                    opts.seed = args[i + 1].parse().expect("--seed N");
                    i += 2;
                }
                "--full" => {
                    opts.full = true;
                    opts.trials = opts.trials.max(4);
                    i += 1;
                }
                "--json" => {
                    opts.json = Some(args[i + 1].clone());
                    i += 2;
                }
                other => {
                    eprintln!("ignoring unknown flag `{other}`");
                    i += 1;
                }
            }
        }
        opts
    }

    /// Writes rows as JSON if `--json` was given.
    pub fn dump_json<T: Serialize>(&self, rows: &T) {
        if let Some(path) = &self.json {
            let text = serde_json::to_string_pretty(rows).expect("serializable rows");
            std::fs::write(path, text).expect("writable json path");
            eprintln!("wrote {path}");
        }
    }
}

/// The ≈25-cell circuit class of the paper's Fig. 3 move-ratio study.
pub fn fig3_suite(count: usize, seed: u64) -> Vec<Netlist> {
    (0..count)
        .map(|k| {
            synthesize(&SynthParams {
                cells: 25,
                nets: 70,
                pins: 280,
                custom_fraction: 0.0,
                seed: seed.wrapping_add(k as u64 * 101),
                avg_cell_dim: 30,
                ..Default::default()
            })
        })
        .collect()
}

/// The 30–60-cell circuit class of the paper's Fig. 5/6 inner-loop study.
pub fn fig5_suite(count: usize, seed: u64) -> Vec<Netlist> {
    (0..count)
        .map(|k| {
            let cells = 30 + (k * 15) % 31; // 30..60
            synthesize(&SynthParams {
                cells,
                nets: cells * 3,
                pins: cells * 12,
                custom_fraction: 0.0,
                seed: seed.wrapping_add(k as u64 * 7919),
                avg_cell_dim: 30,
                ..Default::default()
            })
        })
        .collect()
}

/// Runs stage 1 with the given parameter overrides and returns the
/// result (the common kernel of the figure experiments).
pub fn run_stage1(
    nl: &Netlist,
    params: &PlaceParams,
    schedule: &CoolingSchedule,
    seed: u64,
) -> Stage1Result {
    place_stage1(nl, params, &EstimatorParams::default(), schedule, seed).1
}

/// Residual overlap at the paper's stopping point: the first inner loop
/// executed with the range-limiter window at its minimum span. (Our
/// driver keeps cooling a little longer for robustness on small grids,
/// which would otherwise mask ρ/D_s effects on the residual overlap.)
pub fn overlap_at_window_min(result: &Stage1Result) -> i64 {
    let min_w = result
        .history
        .iter()
        .map(|r| r.window_x)
        .fold(f64::INFINITY, f64::min);
    result
        .history
        .iter()
        .find(|r| r.window_x <= min_w + 1e-9)
        .map(|r| r.overlap)
        .unwrap_or_else(|| result.residual_overlap)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Prints a small two-column series with a normalized second column.
pub fn print_normalized_series(header: (&str, &str), rows: &[(String, f64)]) {
    let best = rows
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min)
        .max(1e-12);
    println!("{:<12} {:>12} {:>12}", header.0, header.1, "normalized");
    for (label, v) in rows {
        println!("{label:<12} {v:>12.1} {:>12.3}", v / best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_sizes() {
        let s = fig3_suite(3, 1);
        assert_eq!(s.len(), 3);
        for nl in &s {
            assert_eq!(nl.stats().cells, 25);
        }
        let s = fig5_suite(4, 1);
        for nl in &s {
            let c = nl.stats().cells;
            assert!((30..=60).contains(&c), "{c}");
        }
    }

    #[test]
    fn options_parse() {
        let args: Vec<String> = ["--trials", "5", "--ac", "77", "--seed", "9", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = ExpOptions::parse_from(&args, 40);
        assert_eq!(o.trials, 5);
        assert_eq!(o.ac, 77);
        assert_eq!(o.seed, 9);
        assert!(o.full);
        let o = ExpOptions::parse_from(&[], 40);
        assert_eq!(o.ac, 40);
        assert_eq!(o.trials, 2);
        assert!(!o.full);
        // --full bumps trials to at least 4.
        let args: Vec<String> = ["--full"].iter().map(|s| s.to_string()).collect();
        assert_eq!(ExpOptions::parse_from(&args, 1).trials, 4);
        // Unknown flags are skipped without panicking.
        let args: Vec<String> = ["--bogus", "--trials", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(ExpOptions::parse_from(&args, 1).trials, 3);
    }

    #[test]
    fn mean_and_series() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        print_normalized_series(("r", "teil"), &[("1".into(), 10.0), ("2".into(), 12.0)]);
    }
}
