//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Every binary in `src/bin/` reproduces one table or figure (see
//! DESIGN.md §5 for the index and EXPERIMENTS.md for recorded results).
//! Binaries accept a common set of flags:
//!
//! ```text
//! --trials N   independent seeds per configuration (default 2)
//! --ac N       attempts per cell per temperature (default experiment-specific)
//! --seed N     base RNG seed (default 42)
//! --full       paper-scale settings (A_c = 200/400, more trials) — slow
//! --json PATH  also dump the rows as JSON
//! ```

#![warn(missing_docs)]

use serde::Serialize;

use twmc_anneal::CoolingSchedule;
use twmc_estimator::EstimatorParams;
use twmc_netlist::{synthesize, Netlist, SynthParams};
use twmc_place::{place_stage1, PlaceParams, Stage1Result};

/// Common command-line options for experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Independent seeds per configuration.
    pub trials: usize,
    /// Attempts per cell per temperature (`A_c`).
    pub ac: usize,
    /// Base seed.
    pub seed: u64,
    /// Paper-scale run.
    pub full: bool,
    /// Optional JSON dump path.
    pub json: Option<String>,
}

/// The flag vocabulary shared by every experiment binary, for error
/// messages.
const VALID_FLAGS: &str = "--trials N, --ac N, --seed N, --full, --json PATH";

impl ExpOptions {
    /// Parses `std::env::args`, with an experiment-specific default `A_c`.
    /// Exits with status 2 on unknown flags or malformed values.
    pub fn parse(default_ac: usize) -> ExpOptions {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match ExpOptions::parse_from(&args, default_ac) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`ExpOptions::parse`]).
    ///
    /// Unknown flags and missing or malformed values are errors listing
    /// the valid flag set — a typo must not silently run the experiment
    /// with defaults.
    pub fn parse_from(args: &[String], default_ac: usize) -> Result<ExpOptions, String> {
        let mut opts = ExpOptions {
            trials: 2,
            ac: default_ac,
            seed: 42,
            full: false,
            json: None,
        };
        let value = |i: usize, flag: &str| {
            args.get(i + 1)
                .ok_or_else(|| format!("flag `{flag}` needs a value (valid flags: {VALID_FLAGS})"))
        };
        let number = |i: usize, flag: &str| -> Result<u64, String> {
            let v = value(i, flag)?;
            v.parse()
                .map_err(|_| format!("flag `{flag}` needs a number, got `{v}`"))
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--trials" => {
                    opts.trials = number(i, "--trials")? as usize;
                    i += 2;
                }
                "--ac" => {
                    opts.ac = number(i, "--ac")? as usize;
                    i += 2;
                }
                "--seed" => {
                    opts.seed = number(i, "--seed")?;
                    i += 2;
                }
                "--full" => {
                    opts.full = true;
                    opts.trials = opts.trials.max(4);
                    i += 1;
                }
                "--json" => {
                    opts.json = Some(value(i, "--json")?.clone());
                    i += 2;
                }
                other => {
                    return Err(format!(
                        "unknown flag `{other}` (valid flags: {VALID_FLAGS})"
                    ));
                }
            }
        }
        Ok(opts)
    }

    /// Writes rows as JSON if `--json` was given.
    pub fn dump_json<T: Serialize>(&self, rows: &T) {
        if let Some(path) = &self.json {
            let text = serde_json::to_string_pretty(rows).expect("serializable rows");
            std::fs::write(path, text).expect("writable json path");
            eprintln!("wrote {path}");
        }
    }
}

/// The ≈25-cell circuit class of the paper's Fig. 3 move-ratio study.
pub fn fig3_suite(count: usize, seed: u64) -> Vec<Netlist> {
    (0..count)
        .map(|k| {
            synthesize(&SynthParams {
                cells: 25,
                nets: 70,
                pins: 280,
                custom_fraction: 0.0,
                seed: seed.wrapping_add(k as u64 * 101),
                avg_cell_dim: 30,
                ..Default::default()
            })
        })
        .collect()
}

/// The 30–60-cell circuit class of the paper's Fig. 5/6 inner-loop study.
pub fn fig5_suite(count: usize, seed: u64) -> Vec<Netlist> {
    (0..count)
        .map(|k| {
            let cells = 30 + (k * 15) % 31; // 30..60
            synthesize(&SynthParams {
                cells,
                nets: cells * 3,
                pins: cells * 12,
                custom_fraction: 0.0,
                seed: seed.wrapping_add(k as u64 * 7919),
                avg_cell_dim: 30,
                ..Default::default()
            })
        })
        .collect()
}

/// Runs stage 1 with the given parameter overrides and returns the
/// result (the common kernel of the figure experiments).
pub fn run_stage1(
    nl: &Netlist,
    params: &PlaceParams,
    schedule: &CoolingSchedule,
    seed: u64,
) -> Stage1Result {
    place_stage1(nl, params, &EstimatorParams::default(), schedule, seed).1
}

/// Residual overlap at the paper's stopping point: the first inner loop
/// executed with the range-limiter window at its minimum span. (Our
/// driver keeps cooling a little longer for robustness on small grids,
/// which would otherwise mask ρ/D_s effects on the residual overlap.)
pub fn overlap_at_window_min(result: &Stage1Result) -> i64 {
    let min_w = result
        .history
        .iter()
        .map(|r| r.window_x)
        .fold(f64::INFINITY, f64::min);
    result
        .history
        .iter()
        .find(|r| r.window_x <= min_w + 1e-9)
        .map(|r| r.overlap)
        .unwrap_or_else(|| result.residual_overlap)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Prints a small two-column series with a normalized second column.
pub fn print_normalized_series(header: (&str, &str), rows: &[(String, f64)]) {
    let best = rows
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min)
        .max(1e-12);
    println!("{:<12} {:>12} {:>12}", header.0, header.1, "normalized");
    for (label, v) in rows {
        println!("{label:<12} {v:>12.1} {:>12.3}", v / best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_sizes() {
        let s = fig3_suite(3, 1);
        assert_eq!(s.len(), 3);
        for nl in &s {
            assert_eq!(nl.stats().cells, 25);
        }
        let s = fig5_suite(4, 1);
        for nl in &s {
            let c = nl.stats().cells;
            assert!((30..=60).contains(&c), "{c}");
        }
    }

    #[test]
    fn options_parse() {
        let to_args = |xs: &[&str]| -> Vec<String> { xs.iter().map(|s| s.to_string()).collect() };
        let args = to_args(&["--trials", "5", "--ac", "77", "--seed", "9", "--full"]);
        let o = ExpOptions::parse_from(&args, 40).unwrap();
        assert_eq!(o.trials, 5);
        assert_eq!(o.ac, 77);
        assert_eq!(o.seed, 9);
        assert!(o.full);
        let o = ExpOptions::parse_from(&[], 40).unwrap();
        assert_eq!(o.ac, 40);
        assert_eq!(o.trials, 2);
        assert!(!o.full);
        // --full bumps trials to at least 4.
        assert_eq!(
            ExpOptions::parse_from(&to_args(&["--full"]), 1)
                .unwrap()
                .trials,
            4
        );
    }

    #[test]
    fn options_reject_bad_input() {
        let to_args = |xs: &[&str]| -> Vec<String> { xs.iter().map(|s| s.to_string()).collect() };
        // Unknown flags are an error listing the valid set.
        let err = ExpOptions::parse_from(&to_args(&["--bogus", "--trials", "3"]), 1).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        assert!(err.contains("--trials"), "{err}");
        // A value flag at the end of the argument list is an error, not
        // an out-of-bounds panic.
        let err = ExpOptions::parse_from(&to_args(&["--trials"]), 1).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        // Malformed numbers are an error, not a panic.
        let err = ExpOptions::parse_from(&to_args(&["--seed", "lots"]), 1).unwrap_err();
        assert!(err.contains("needs a number"), "{err}");
    }

    #[test]
    fn mean_and_series() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        print_normalized_series(("r", "teil"), &[("1".into(), 10.0), ("2".into(), 12.0)]);
    }
}
