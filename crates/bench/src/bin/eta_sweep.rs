//! **§3.1.2 η study**: final TEIL versus the overlap-penalty balance η
//! (where `p₂·C₂ = η·C₁` at `T = T_∞`).
//!
//! Paper finding: η ≈ 0.5 gives the best average final TEIL, but the
//! algorithm is not very sensitive — degradation appears only below
//! η ≈ 0.25 or beyond η ≈ 1.0.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin eta_sweep [--full]
//! ```

use serde::Serialize;
use twmc_anneal::CoolingSchedule;
use twmc_bench::{fig3_suite, mean, print_normalized_series, ExpOptions};
use twmc_estimator::EstimatorParams;
use twmc_place::{place_stage1, PlaceParams};

#[derive(Serialize)]
struct Row {
    eta: f64,
    avg_teil: f64,
    avg_residual_overlap: f64,
}

fn main() {
    let opts = ExpOptions::parse(60);
    let ac = if opts.full { 200 } else { opts.ac };
    let circuits = fig3_suite(if opts.full { 4 } else { 3 }, opts.seed);
    let etas = [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0];
    let schedule = CoolingSchedule::stage1();

    eprintln!(
        "eta sweep: {} circuits x {} trials, A_c = {ac}",
        circuits.len(),
        opts.trials
    );

    let mut rows = Vec::new();
    for &eta in &etas {
        let mut teils = Vec::new();
        let mut overlaps = Vec::new();
        for (ci, nl) in circuits.iter().enumerate() {
            for t in 0..opts.trials {
                let params = PlaceParams {
                    eta,
                    attempts_per_cell: ac,
                    ..Default::default()
                };
                let seed = opts.seed + (ci * 1000 + t) as u64;
                let r = place_stage1(nl, &params, &EstimatorParams::default(), &schedule, seed).1;
                teils.push(r.teil);
                overlaps.push(r.residual_overlap as f64);
            }
        }
        let row = Row {
            eta,
            avg_teil: mean(&teils),
            avg_residual_overlap: mean(&overlaps),
        };
        eprintln!(
            "eta = {eta:>5}: avg TEIL {:.0}, residual overlap {:.0}",
            row.avg_teil, row.avg_residual_overlap
        );
        rows.push(row);
    }

    println!("\n§3.1.2 — final TEIL vs overlap-penalty balance eta");
    let series: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (format!("eta={}", r.eta), r.avg_teil))
        .collect();
    print_normalized_series(("eta", "avg TEIL"), &series);
    println!("\n(residual overlap also printed above: tiny eta trades overlap for TEIL)");
    println!("paper: insensitive within [0.25, 1.0], degradation outside; eta = 0.5 chosen");
    opts.dump_json(&rows);
}
