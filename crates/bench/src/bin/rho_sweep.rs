//! **§3.2.2 ρ study**: final TEIL and residual cell overlap versus the
//! range-limiter exponent ρ.
//!
//! Paper finding: the final TEIL is flat for ρ ∈ [1, 4]; the *residual
//! overlap* after stage 1 falls as ρ grows (smaller windows at a given T
//! mean more local moves, better at squeezing out overlaps) — hence the
//! paper's choice ρ = 4, the largest ρ before TEIL degrades.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin rho_sweep [--full]
//! ```

use serde::Serialize;
use twmc_anneal::CoolingSchedule;
use twmc_bench::{fig3_suite, mean, overlap_at_window_min, ExpOptions};
use twmc_estimator::EstimatorParams;
use twmc_place::{place_stage1, PlaceParams};

#[derive(Serialize)]
struct Row {
    rho: f64,
    avg_teil: f64,
    avg_residual_overlap: f64,
    avg_overlap_at_window_min: f64,
}

fn main() {
    let opts = ExpOptions::parse(60);
    let ac = if opts.full { 200 } else { opts.ac };
    let circuits = fig3_suite(if opts.full { 4 } else { 3 }, opts.seed);
    let rhos = [1.5, 2.0, 4.0, 6.0, 8.0, 10.0];
    let schedule = CoolingSchedule::stage1();

    eprintln!(
        "rho sweep: {} circuits x {} trials, A_c = {ac}",
        circuits.len(),
        opts.trials
    );

    let mut rows = Vec::new();
    for &rho in &rhos {
        let mut teils = Vec::new();
        let mut overlaps = Vec::new();
        let mut at_min = Vec::new();
        for (ci, nl) in circuits.iter().enumerate() {
            for t in 0..opts.trials {
                let params = PlaceParams {
                    rho,
                    attempts_per_cell: ac,
                    ..Default::default()
                };
                let seed = opts.seed + (ci * 1000 + t) as u64;
                let r = place_stage1(nl, &params, &EstimatorParams::default(), &schedule, seed).1;
                teils.push(r.teil);
                // The paper's metric: C2 as T -> T0 (fixed endpoint).
                overlaps.push(r.residual_overlap as f64);
                // Plus the overlap when the window first reaches its
                // minimum span (larger rho gets there at a hotter T).
                at_min.push(overlap_at_window_min(&r) as f64);
            }
        }
        let row = Row {
            rho,
            avg_teil: mean(&teils),
            avg_residual_overlap: mean(&overlaps),
            avg_overlap_at_window_min: mean(&at_min),
        };
        eprintln!(
            "rho = {rho:>4}: avg TEIL {:.0}, residual overlap {:.0} (at window-min {:.0})",
            row.avg_teil, row.avg_residual_overlap, row.avg_overlap_at_window_min
        );
        rows.push(row);
    }

    println!("\n§3.2.2 — final TEIL and residual overlap vs range-limiter exponent rho");
    println!(
        "{:>6} {:>12} {:>12} {:>18} {:>18}",
        "rho", "avg TEIL", "TEIL norm", "residual overlap", "at window-min"
    );
    let best_teil = rows
        .iter()
        .map(|r| r.avg_teil)
        .fold(f64::INFINITY, f64::min);
    for r in &rows {
        println!(
            "{:>6} {:>12.0} {:>12.3} {:>18.0} {:>18.0}",
            r.rho,
            r.avg_teil,
            r.avg_teil / best_teil,
            r.avg_residual_overlap,
            r.avg_overlap_at_window_min
        );
    }
    println!(
        "\npaper: TEIL flat for rho in [1,4]; residual overlap falls with rho; rho = 4 chosen"
    );
    opts.dump_json(&rows);
}
