//! **Ablation**: electrically-equivalent pins in the global router.
//!
//! The paper's router "makes full use of equivalent pins to minimize the
//! routing length of a net" (§4.2). This ablation routes the same placed
//! circuit twice — once with each net's equivalent-pin alternatives
//! available, once with only the primary pins — and compares total
//! routed length.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin ablation_equiv_pins [--full]
//! ```

use serde::Serialize;

use twmc_anneal::CoolingSchedule;
use twmc_bench::{mean, ExpOptions};
use twmc_estimator::EstimatorParams;
use twmc_netlist::{synthesize, SynthParams};
use twmc_place::{place_stage1, PlaceParams};
use twmc_refine::routing_snapshot;
use twmc_route::{global_route, NetPins, RouterParams};

#[derive(Serialize)]
struct Row {
    mode: &'static str,
    avg_routed_length: f64,
    avg_overflow: f64,
}

fn main() {
    let opts = ExpOptions::parse(60);
    let ac = if opts.full { 200 } else { opts.ac };
    let router = RouterParams::default();

    let mut with = Vec::new();
    let mut without = Vec::new();
    let mut with_x = Vec::new();
    let mut without_x = Vec::new();
    for t in 0..opts.trials.max(3) {
        // Circuits rich in equivalent pins.
        let nl = synthesize(&SynthParams {
            cells: 20,
            nets: 50,
            pins: 220,
            equiv_pin_fraction: 0.4,
            seed: opts.seed + t as u64,
            avg_cell_dim: 30,
            ..Default::default()
        });
        let params = PlaceParams {
            attempts_per_cell: ac,
            ..Default::default()
        };
        let (mut state, _s1) = place_stage1(
            &nl,
            &params,
            &EstimatorParams::default(),
            &CoolingSchedule::stage1(),
            opts.seed + 31 * t as u64,
        );
        twmc_place::legalize(&mut state, 2, 500);
        let (geometry, nets) = routing_snapshot(&state);

        let r_with = global_route(&geometry, &nets, &router, opts.seed);
        let stripped: Vec<NetPins> = nets
            .iter()
            .map(|n| NetPins {
                points: n
                    .points
                    .iter()
                    .map(|cands| vec![cands[0]]) // primary only
                    .collect(),
            })
            .collect();
        let r_without = global_route(&geometry, &stripped, &router, opts.seed);
        with.push(r_with.total_length() as f64);
        without.push(r_without.total_length() as f64);
        with_x.push(r_with.overflow() as f64);
        without_x.push(r_without.overflow() as f64);
        eprintln!(
            "trial {t}: with equivalents {} / without {} (overflow {} / {})",
            r_with.total_length(),
            r_without.total_length(),
            r_with.overflow(),
            r_without.overflow()
        );
    }

    let rows = vec![
        Row {
            mode: "with equivalents",
            avg_routed_length: mean(&with),
            avg_overflow: mean(&with_x),
        },
        Row {
            mode: "primaries only",
            avg_routed_length: mean(&without),
            avg_overflow: mean(&without_x),
        },
    ];
    println!("\nAblation — electrically-equivalent pins in the global router");
    println!("{:<20} {:>16} {:>12}", "mode", "routed length", "overflow");
    for r in &rows {
        println!(
            "{:<20} {:>16.0} {:>12.1}",
            r.mode, r.avg_routed_length, r.avg_overflow
        );
    }
    println!(
        "\nequivalents save {:+.1}% routed length (must be <= 0: an extra choice can only help)",
        100.0 * (rows[0].avg_routed_length / rows[1].avg_routed_length.max(1e-9) - 1.0)
    );
    opts.dump_json(&rows);
}
