//! **§3.2.3 `D_s` vs `D_r`**: quantized versus random displacement-point
//! selection.
//!
//! Paper finding: `D_s` (48 evenly-dispersed points, step sizes scaling
//! with the window) yields slightly better final TEIL, and ≈22% lower
//! residual cell overlap after stage 1, than uniformly random selection.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin ds_vs_dr [--full]
//! ```

use serde::Serialize;
use twmc_anneal::CoolingSchedule;
use twmc_bench::{fig3_suite, mean, overlap_at_window_min, ExpOptions};
use twmc_estimator::EstimatorParams;
use twmc_place::{place_stage1, DisplacementSelector, PlaceParams};

#[derive(Serialize)]
struct Row {
    selector: &'static str,
    avg_teil: f64,
    avg_residual_overlap: f64,
    avg_overlap_at_window_min: f64,
}

fn main() {
    let opts = ExpOptions::parse(60);
    let ac = if opts.full { 200 } else { opts.ac };
    let trials = if opts.full {
        opts.trials.max(6)
    } else {
        opts.trials.max(4)
    };
    let circuits = fig3_suite(if opts.full { 4 } else { 3 }, opts.seed);
    let schedule = CoolingSchedule::stage1();

    eprintln!(
        "Ds vs Dr: {} circuits x {trials} paired trials, A_c = {ac}",
        circuits.len()
    );

    let mut rows = Vec::new();
    for (selector, name) in [
        (DisplacementSelector::Quantized, "D_s (quantized)"),
        (DisplacementSelector::Random, "D_r (random)"),
    ] {
        let mut teils = Vec::new();
        let mut overlaps = Vec::new();
        let mut at_min = Vec::new();
        for (ci, nl) in circuits.iter().enumerate() {
            for t in 0..trials {
                let params = PlaceParams {
                    selector,
                    attempts_per_cell: ac,
                    ..Default::default()
                };
                // Paired seeds: the same seed for both selectors.
                let seed = opts.seed + (ci * 1000 + t) as u64;
                let r = place_stage1(nl, &params, &EstimatorParams::default(), &schedule, seed).1;
                teils.push(r.teil);
                overlaps.push(r.residual_overlap as f64);
                // Stage 1 completes when the window reaches its minimum
                // span (both selectors share the same schedule, so this
                // snapshot is directly comparable).
                at_min.push(overlap_at_window_min(&r) as f64);
            }
        }
        let row = Row {
            selector: name,
            avg_teil: mean(&teils),
            avg_residual_overlap: mean(&overlaps),
            avg_overlap_at_window_min: mean(&at_min),
        };
        eprintln!(
            "{name:<16}: avg TEIL {:.0}, residual overlap {:.0} (at window-min {:.0})",
            row.avg_teil, row.avg_residual_overlap, row.avg_overlap_at_window_min
        );
        rows.push(row);
    }

    println!("\n§3.2.3 — displacement-point selection");
    println!(
        "{:<18} {:>12} {:>18} {:>18}",
        "selector", "avg TEIL", "residual overlap", "at window-min"
    );
    for r in &rows {
        println!(
            "{:<18} {:>12.0} {:>18.0} {:>18.0}",
            r.selector, r.avg_teil, r.avg_residual_overlap, r.avg_overlap_at_window_min
        );
    }
    let (ds, dr) = (&rows[0], &rows[1]);
    println!(
        "\nD_s overlap vs D_r at stage-1 completion: {:+.0}% (paper: -22%); TEIL: {:+.1}% (paper: slightly better)",
        100.0 * (ds.avg_overlap_at_window_min / dr.avg_overlap_at_window_min.max(1e-9) - 1.0),
        100.0 * (ds.avg_teil / dr.avg_teil - 1.0),
    );
    opts.dump_json(&rows);
}
