//! **Table 3**: accuracy of the dynamic interconnect-area estimator —
//! TEIL and core-area change between the end of stage 1 and the end of
//! stage 2, for the nine circuits.
//!
//! A large change would mean the stage-2 router found the stage-1
//! spacings wrong and moved cells a lot. Paper finding: averages of
//! ≈4.4% TEIL reduction and ≈4.1% area reduction — negligible movement,
//! i.e. the estimator was accurate.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin table3_estimator_accuracy [--full]
//! ```

use serde::Serialize;
use twmc_anneal::CoolingSchedule;
use twmc_bench::{mean, ExpOptions};
use twmc_estimator::EstimatorParams;
use twmc_netlist::{synthesize_profile, PAPER_CIRCUITS};
use twmc_place::{place_stage1, PlaceParams};
use twmc_refine::{refine_placement, RefineParams};
use twmc_route::RouterParams;

#[derive(Serialize)]
struct Row {
    circuit: &'static str,
    cells: usize,
    nets: usize,
    pins: usize,
    trials: usize,
    avg_teil_reduction_pct: f64,
    avg_area_reduction_pct: f64,
}

fn main() {
    let opts = ExpOptions::parse(40);
    let ac = if opts.full { 200 } else { opts.ac };
    // The paper used 2-6 trials per circuit.
    let trials = if opts.full {
        opts.trials.max(4)
    } else {
        opts.trials
    };
    let router = if opts.full {
        RouterParams::default()
    } else {
        RouterParams {
            m_alternatives: 6,
            per_level: 3,
            ..Default::default()
        }
    };

    println!("Table 3 — stage-1 -> stage-2 TEIL and core-area change");
    println!(
        "{:<8} {:>5} {:>5} {:>5} {:>7} {:>15} {:>15}",
        "Circuit", "Cells", "Nets", "Pins", "Trials", "TEIL Red. (%)", "Area Red. (%)"
    );

    let mut rows = Vec::new();
    let mut all_teil = Vec::new();
    let mut all_area = Vec::new();
    for profile in PAPER_CIRCUITS {
        let mut teil_reds = Vec::new();
        let mut area_reds = Vec::new();
        for t in 0..trials {
            let nl = synthesize_profile(profile, opts.seed + t as u64);
            let params = PlaceParams {
                attempts_per_cell: ac,
                ..Default::default()
            };
            let (mut state, s1) = place_stage1(
                &nl,
                &params,
                &EstimatorParams::default(),
                &CoolingSchedule::stage1(),
                opts.seed + 31 * t as u64,
            );
            let teil1 = s1.teil;
            let area1 = s1.chip_area() as f64;
            let rp = RefineParams {
                router: router.clone(),
                ..Default::default()
            };
            let s2 = refine_placement(
                &mut state,
                &nl,
                &params,
                &rp,
                s1.s_t,
                s1.t_infinity,
                opts.seed + 77 * t as u64,
            );
            teil_reds.push(100.0 * (1.0 - s2.teil / teil1.max(1e-9)));
            area_reds.push(100.0 * (1.0 - s2.chip.area() as f64 / area1.max(1.0)));
        }
        let row = Row {
            circuit: profile.name,
            cells: profile.cells,
            nets: profile.nets,
            pins: profile.pins,
            trials,
            avg_teil_reduction_pct: mean(&teil_reds),
            avg_area_reduction_pct: mean(&area_reds),
        };
        println!(
            "{:<8} {:>5} {:>5} {:>5} {:>7} {:>15.1} {:>15.1}",
            row.circuit,
            row.cells,
            row.nets,
            row.pins,
            row.trials,
            row.avg_teil_reduction_pct,
            row.avg_area_reduction_pct
        );
        all_teil.push(row.avg_teil_reduction_pct);
        all_area.push(row.avg_area_reduction_pct);
        rows.push(row);
    }
    println!(
        "{:<8} {:>5} {:>5} {:>5} {:>7} {:>15.1} {:>15.1}",
        "Avg.",
        "",
        "",
        "",
        "",
        mean(&all_teil),
        mean(&all_area)
    );
    println!(
        "\npaper Table 3: per-circuit changes of a few percent; averages 4.4% TEIL, 4.1% area"
    );
    println!("(small values = the stage-1 estimator allocated nearly the right interconnect area)");
    opts.dump_json(&rows);
}
