//! **Tables 1 and 2**: the experimentally derived cooling schedules.
//!
//! These are design data rather than results, but the paper's §3.3 makes
//! two checkable claims about them: ≈120 temperature values per typical
//! run, and a three-regime profile (fast hot, slow middle, fast cold).
//! This binary prints the tables and verifies both claims on the nominal
//! `T_∞ = 10⁵` profile.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin table1_schedule
//! ```

use twmc_anneal::{t_infinity, CoolingSchedule};

fn main() {
    println!("Table 1 — stage-1 cooling multipliers alpha(T_old)");
    println!("  for T_old >= S_T * 7000 : 0.85   (hot regime: rapid descent)");
    println!("  for T_old >= S_T *  200 : 0.92   (middle regime: slow, quality-critical)");
    println!("  for T_old >= S_T *   10 : 0.85");
    println!("  otherwise               : 0.80   (convergence regime)");
    println!();
    println!("Table 2 — stage-2 cooling multipliers alpha(T_old)");
    println!("  for T_old >= S_T * 10   : 0.82");
    println!("  otherwise               : 0.70");
    println!();

    let s1 = CoolingSchedule::stage1();
    let s_t = 1.0;
    let t_inf = t_infinity(s_t);
    let mut t = t_inf;
    let mut steps = 0;
    let mut regime_counts = [0usize; 4];
    println!("simulated profile from T_inf = {t_inf:.0} (S_T = 1):");
    println!("{:>6} {:>14} {:>8}", "step", "T", "alpha");
    while t > 1.0e-2 && steps < 1000 {
        let a = s1.alpha(t, s_t);
        let regime = if t >= 7000.0 {
            0
        } else if t >= 200.0 {
            1
        } else if t >= 10.0 {
            2
        } else {
            3
        };
        regime_counts[regime] += 1;
        if steps % 10 == 0 {
            println!("{steps:>6} {t:>14.4} {a:>8.2}");
        }
        t = s1.next(t, s_t);
        steps += 1;
    }
    println!("\ntotal temperature steps over ~7 decades: {steps} (paper: ≈120)");
    println!(
        "regime steps: hot {} | middle {} | low {} | convergence {}",
        regime_counts[0], regime_counts[1], regime_counts[2], regime_counts[3]
    );
    println!(
        "middle regime (S_T*200 .. S_T*7000) dominates: {} of {} steps — the range the paper\n\
         found most strongly influences quality",
        regime_counts[1], steps
    );
    assert!(
        (90..=150).contains(&steps),
        "schedule drifted from the paper's ≈120 steps"
    );
}
