//! **Table 4**: TimberWolfMC versus other placement methods, on the nine
//! circuits.
//!
//! The paper compared each circuit against one available method:
//! a resistive-network optimizer (i1), the CIPAR automatic package
//! (i2, i3), and manual layouts (p1, x1 treated likewise here, l1, d1,
//! d2, d3). We map: resistive network → `quadratic`, automatic package →
//! `greedy`, manual → `shelf`, and report the same columns. Paper
//! findings: TEIL reductions of 8–49% (avg 24.9%) and area reductions of
//! 4–56% (avg 26.9%).
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin table4_vs_baselines [--full]
//! ```

use serde::Serialize;
use twmc_bench::{mean, ExpOptions};
use twmc_core::{
    greedy_placement, quadratic_placement, run_timberwolf, shelf_placement, BaselineResult,
    TimberWolfConfig,
};
use twmc_estimator::EstimatorParams;
use twmc_netlist::{synthesize_profile, PAPER_CIRCUITS};
use twmc_place::PlaceParams;
use twmc_route::RouterParams;

#[derive(Serialize)]
struct Row {
    circuit: &'static str,
    cells: usize,
    nets: usize,
    pins: usize,
    teil: f64,
    area_x: i64,
    area_y: i64,
    teil_reduction_pct: f64,
    area_reduction_pct: f64,
    versus: &'static str,
}

/// The paper's comparator per circuit, mapped to our baselines.
fn comparator(name: &str) -> &'static str {
    match name {
        "i1" => "quadratic",     // resistive-network optimization (Cheng–Kuh)
        "i2" | "i3" => "greedy", // CIPAR automatic placement
        _ => "shelf",            // manual layouts (Intel, HP, AMD)
    }
}

fn main() {
    let opts = ExpOptions::parse(40);
    let ac = if opts.full { 400 } else { opts.ac };
    let router = if opts.full {
        RouterParams::default()
    } else {
        RouterParams {
            m_alternatives: 6,
            per_level: 3,
            ..Default::default()
        }
    };

    println!("Table 4 — TimberWolfMC vs other placement methods");
    println!(
        "{:<8} {:>5} {:>5} {:>5} {:>9} {:>13} {:>10} {:>10}  vs",
        "Circuit", "Cells", "Nets", "Pins", "TEIL", "Area (x*y)", "TEIL Red%", "Area Red%"
    );

    let mut rows = Vec::new();
    let mut teil_reds = Vec::new();
    let mut area_reds = Vec::new();
    for profile in PAPER_CIRCUITS {
        let nl = synthesize_profile(profile, opts.seed);
        let config = TimberWolfConfig {
            place: PlaceParams {
                attempts_per_cell: ac,
                ..Default::default()
            },
            refine: twmc_refine::RefineParams {
                router: router.clone(),
                ..Default::default()
            },
            seed: opts.seed,
            ..Default::default()
        };
        let est = EstimatorParams::default();
        let twmc = run_timberwolf(&nl, &config);
        let versus = comparator(profile.name);
        let baseline: BaselineResult = match versus {
            "quadratic" => quadratic_placement(&nl, &est, opts.seed),
            "greedy" => greedy_placement(&nl, &est, 60, opts.seed),
            _ => shelf_placement(&nl, &est, opts.seed),
        };
        let teil_red = 100.0 * (1.0 - twmc.teil / baseline.teil.max(1e-9));
        let area_red = 100.0 * (1.0 - twmc.chip_area() as f64 / baseline.chip_area().max(1) as f64);
        let row = Row {
            circuit: profile.name,
            cells: profile.cells,
            nets: profile.nets,
            pins: profile.pins,
            teil: twmc.teil,
            area_x: twmc.chip.width(),
            area_y: twmc.chip.height(),
            teil_reduction_pct: teil_red,
            area_reduction_pct: area_red,
            versus,
        };
        println!(
            "{:<8} {:>5} {:>5} {:>5} {:>9.0} {:>6} x {:<6} {:>9.1} {:>10.1}  {}",
            row.circuit,
            row.cells,
            row.nets,
            row.pins,
            row.teil,
            row.area_x,
            row.area_y,
            row.teil_reduction_pct,
            row.area_reduction_pct,
            row.versus
        );
        teil_reds.push(teil_red);
        area_reds.push(area_red);
        rows.push(row);
    }
    println!(
        "{:<8} {:>36} {:>13} {:>10.1} {:>10.1}",
        "Avg.",
        "",
        "",
        mean(&teil_reds),
        mean(&area_reds)
    );
    println!(
        "\npaper Table 4: TEIL reductions 8-49% (avg 24.9%); area reductions 4-56% (avg 26.9%)"
    );
    opts.dump_json(&rows);
}
