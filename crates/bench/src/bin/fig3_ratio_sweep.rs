//! **Figure 3**: normalized average final TEIL versus the ratio `r` of
//! single-cell displacements to pairwise interchanges.
//!
//! Paper setup (§3.2.1): ≈25-cell circuits, `A_c = 200` generate calls
//! per cell per inner loop, geometric cooling `T_new = 0.90 · T_old`.
//! Paper finding: `r` in 7–15 yields TEIL within one percent of the
//! minimum; very small and very large `r` are noticeably worse.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin fig3_ratio_sweep [--full]
//! ```

use serde::Serialize;
use twmc_anneal::CoolingSchedule;
use twmc_bench::{fig3_suite, mean, print_normalized_series, run_stage1, ExpOptions};
use twmc_place::PlaceParams;

#[derive(Serialize)]
struct Row {
    r: f64,
    avg_teil: f64,
}

fn main() {
    let opts = ExpOptions::parse(60);
    let ac = if opts.full { 200 } else { opts.ac };
    let circuits = fig3_suite(if opts.full { 4 } else { 3 }, opts.seed);
    // Paper Fig. 3 sweeps r from ~1 to ~30 (log-ish spacing).
    let ratios = [1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 12.0, 15.0, 20.0, 30.0];
    let schedule = CoolingSchedule::geometric(0.90);

    eprintln!(
        "fig3: {} circuits x {} trials, A_c = {ac}, geometric alpha = 0.90",
        circuits.len(),
        opts.trials
    );

    let mut rows = Vec::new();
    for &r in &ratios {
        let mut teils = Vec::new();
        for (ci, nl) in circuits.iter().enumerate() {
            for t in 0..opts.trials {
                let params = PlaceParams {
                    move_ratio: r,
                    attempts_per_cell: ac,
                    ..Default::default()
                };
                let seed = opts.seed + (ci * 1000 + t) as u64;
                teils.push(run_stage1(nl, &params, &schedule, seed).teil);
            }
        }
        let avg = mean(&teils);
        eprintln!("r = {r:>5}: avg TEIL {avg:.0}");
        rows.push(Row { r, avg_teil: avg });
    }

    println!("\nFigure 3 — normalized avg final TEIL vs move ratio r");
    let series: Vec<(String, f64)> = rows
        .iter()
        .map(|row| (format!("r={}", row.r), row.avg_teil))
        .collect();
    print_normalized_series(("ratio", "avg TEIL"), &series);
    println!("\npaper: flat minimum for r in [7, 15] (within 1%); worse at the extremes");
    opts.dump_json(&rows);
}
