//! **Figure 5**: normalized average final TEIL versus the inner-loop
//! criterion `A_c` (attempts per cell per temperature).
//!
//! Paper setup (§3.3): circuits with 30–60 macro cells, Table-1 cooling.
//! Paper finding: quality plateaus by `A_c ≈ 400`; `A_c = 25` is ≈13%
//! worse at 16× less CPU time.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin fig5_inner_loop_teil [--full]
//! ```

use serde::Serialize;
use twmc_anneal::CoolingSchedule;
use twmc_bench::{fig5_suite, mean, print_normalized_series, run_stage1, ExpOptions};
use twmc_place::PlaceParams;

#[derive(Serialize)]
struct Row {
    ac: usize,
    avg_teil: f64,
    avg_seconds: f64,
}

fn main() {
    let opts = ExpOptions::parse(0);
    let sweep: &[usize] = if opts.full {
        &[5, 10, 25, 50, 100, 200, 400]
    } else {
        &[5, 10, 25, 50, 100, 200]
    };
    let circuits = fig5_suite(if opts.full { 4 } else { 2 }, opts.seed);
    let schedule = CoolingSchedule::stage1();

    eprintln!(
        "fig5: {} circuits x {} trials, A_c sweep {sweep:?}",
        circuits.len(),
        opts.trials
    );

    let mut rows = Vec::new();
    for &ac in sweep {
        let mut teils = Vec::new();
        let mut secs = Vec::new();
        for (ci, nl) in circuits.iter().enumerate() {
            for t in 0..opts.trials {
                let params = PlaceParams {
                    attempts_per_cell: ac,
                    ..Default::default()
                };
                let seed = opts.seed + (ci * 1000 + t) as u64;
                let t0 = std::time::Instant::now();
                teils.push(run_stage1(nl, &params, &schedule, seed).teil);
                secs.push(t0.elapsed().as_secs_f64());
            }
        }
        let row = Row {
            ac,
            avg_teil: mean(&teils),
            avg_seconds: mean(&secs),
        };
        eprintln!(
            "A_c = {ac:>4}: avg TEIL {:.0} ({:.2}s/run)",
            row.avg_teil, row.avg_seconds
        );
        rows.push(row);
    }

    println!("\nFigure 5 — normalized avg final TEIL vs inner-loop criterion A_c");
    let series: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (format!("A_c={}", r.ac), r.avg_teil))
        .collect();
    print_normalized_series(("A_c", "avg TEIL"), &series);
    if let (Some(lo), Some(hi)) = (
        rows.iter().find(|r| r.ac == 25),
        rows.iter().max_by_key(|r| r.ac),
    ) {
        println!(
            "\nA_c=25 vs A_c={}: TEIL {:+.1}% at {:.0}x less CPU (paper: ≈13% worse, 16x less)",
            hi.ac,
            100.0 * (lo.avg_teil / hi.avg_teil - 1.0),
            hi.avg_seconds / lo.avg_seconds.max(1e-9),
        );
    }
    opts.dump_json(&rows);
}
