//! **Headline-claim validation**: "the placement of the cells requires
//! very little modification during detailed routing" (paper §1, §4.3).
//!
//! Runs an actual detailed channel router (constrained left-edge with
//! doglegs, `twmc-channel`) over every channel of the final routing and
//! measures (a) the fraction of channels the detailed route *fits*
//! without moving cells and (b) the fraction within the `t ≤ d + 1`
//! track bound behind eq. 22 — for the full two-stage flow versus a
//! stage-1-only placement (no refinement), isolating stage 2's
//! contribution.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin detailed_validation [--full]
//! ```

use serde::Serialize;

use twmc_anneal::CoolingSchedule;
use twmc_bench::{mean, ExpOptions};
use twmc_core::finalize_chip;
use twmc_estimator::EstimatorParams;
use twmc_netlist::synthesize_profile;
use twmc_place::{place_stage1, PlaceParams};
use twmc_refine::{detailed_check, refine_placement, routing_snapshot, RefineParams};
use twmc_route::{global_route, RouterParams};

#[derive(Serialize)]
struct Row {
    mode: &'static str,
    avg_fit_rate: f64,
    avg_bound_rate: f64,
    avg_failed: f64,
}

fn main() {
    let opts = ExpOptions::parse(40);
    let ac = if opts.full { 200 } else { opts.ac };
    let router = RouterParams {
        m_alternatives: 6,
        per_level: 3,
        ..Default::default()
    };
    // The smaller profiles keep the default run quick.
    let names = if opts.full {
        vec!["i1", "p1", "x1", "i2", "i3", "d1", "d3"]
    } else {
        vec!["i3", "p1", "i1"]
    };

    let mut rows = Vec::new();
    for (two_stage, mode) in [(true, "stage 1 + stage 2"), (false, "stage 1 only")] {
        let mut fits = Vec::new();
        let mut bounds = Vec::new();
        let mut fails = Vec::new();
        for name in &names {
            let nl =
                synthesize_profile(twmc_netlist::paper_circuit(name).expect("known"), opts.seed);
            let params = PlaceParams {
                attempts_per_cell: ac,
                ..Default::default()
            };
            let (mut state, s1) = place_stage1(
                &nl,
                &params,
                &EstimatorParams::default(),
                &CoolingSchedule::stage1(),
                opts.seed,
            );
            if two_stage {
                let rp = RefineParams {
                    router: router.clone(),
                    ..Default::default()
                };
                refine_placement(
                    &mut state,
                    &nl,
                    &params,
                    &rp,
                    s1.s_t,
                    s1.t_infinity,
                    opts.seed,
                );
                // The full flow ends with the width-enforcing finalize.
                let _fin = finalize_chip(&nl, &mut state, &router, opts.seed);
            } else {
                twmc_place::legalize(&mut state, 2, 500);
            }
            let (geometry, nets) = routing_snapshot(&state);
            let routing = global_route(&geometry, &nets, &router, opts.seed ^ 0xdd);
            let check = detailed_check(&routing, router.track_spacing);
            eprintln!(
                "{mode} / {name}: fit {:.2}, t<=d+1 {:.2}, failed {}, channels {}",
                check.fit_rate(),
                check.bound_rate(),
                check.failed,
                check.channels.len()
            );
            fits.push(check.fit_rate());
            bounds.push(check.bound_rate());
            fails.push(check.failed as f64);
        }
        rows.push(Row {
            mode,
            avg_fit_rate: mean(&fits),
            avg_bound_rate: mean(&bounds),
            avg_failed: mean(&fails),
        });
    }

    println!("\nDetailed-routing validation (constrained left-edge router on every channel)");
    println!(
        "{:<20} {:>10} {:>14} {:>10}",
        "mode", "fit rate", "t<=d+1 rate", "failures"
    );
    for r in &rows {
        println!(
            "{:<20} {:>10.2} {:>14.2} {:>10.1}",
            r.mode, r.avg_fit_rate, r.avg_bound_rate, r.avg_failed
        );
    }
    println!(
        "\npaper: the two-stage flow leaves placements needing 'very little modification\n\
         during detailed routing' — the fit rate of the full flow should approach 1 and\n\
         exceed the stage-1-only rate"
    );
    opts.dump_json(&rows);
}
