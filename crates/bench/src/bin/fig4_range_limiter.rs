//! **Figure 4**: the range-limiter window versus temperature.
//!
//! The paper's figure is illustrative: the window spans the whole core at
//! `T_∞`, shrinks as a function of `log₁₀ T` (ρ = 4: a factor of 4 per
//! temperature decade), and reaches its minimum span of 6 grid units at
//! `T₀`, which ends stage 1. This binary prints the window-span series
//! for a representative core.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin fig4_range_limiter
//! ```

use serde::Serialize;
use twmc_anneal::{RangeLimiter, MIN_WINDOW_SPAN};
use twmc_bench::ExpOptions;

#[derive(Serialize)]
struct Row {
    temperature: f64,
    window_x: f64,
    window_y: f64,
    fraction_of_full: f64,
}

fn main() {
    let opts = ExpOptions::parse(0);
    // A 1000 x 800 core, window spanning twice the core at T_inf = 1e5
    // (the paper's nominal T_inf, §3.2.2).
    let (w_inf_x, w_inf_y, t_inf) = (2000.0, 1600.0, 1.0e5);
    let limiter = RangeLimiter::paper(w_inf_x, w_inf_y, t_inf);

    println!("Figure 4 — range-limiter window vs temperature (rho = 4)");
    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "T", "W_x(T)", "W_y(T)", "fraction"
    );
    let mut rows = Vec::new();
    let mut t = t_inf;
    while t > 1.0e-2 {
        let row = Row {
            temperature: t,
            window_x: limiter.window_x(t),
            window_y: limiter.window_y(t),
            fraction_of_full: limiter.fraction(t),
        };
        println!(
            "{:>12.3} {:>12.1} {:>12.1} {:>10.5}",
            row.temperature, row.window_x, row.window_y, row.fraction_of_full
        );
        if limiter.at_minimum(t) {
            println!(
                "{:>12} window at minimum span ({MIN_WINDOW_SPAN}) -> end of stage 1",
                "^^^"
            );
            rows.push(row);
            break;
        }
        rows.push(row);
        t /= 10.0; // one decade per printed row
    }
    println!("\npaper: span shrinks by a factor of rho = 4 per temperature decade;");
    println!("       minimum span 6 (step sizes reach one grid unit, §3.2.3)");
    opts.dump_json(&rows);
}
