//! **Ablation**: the rich stage-1 move set (orientation changes,
//! aspect-ratio inversions, interchange retries) versus displacement-only
//! moves.
//!
//! TimberWolfMC's `generate` considers all eight orientations and retries
//! failed moves with the aspect ratio inverted (paper §3.2.1, Fig. 2) —
//! none of the prior annealing placers did. This ablation runs stage 1
//! with the full cascade and with the stage-2 (displacement + pin moves
//! only) subset, from identical seeds.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin ablation_orientations [--full]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use twmc_anneal::{t_infinity, temperature_scale, CoolingSchedule, RangeLimiter};
use twmc_bench::{fig3_suite, mean, ExpOptions};
use twmc_estimator::{cell_density_factors, determine_core, EstimatorParams};
use twmc_place::{run_annealing, MoveSet, PlaceParams, PlacementState};

#[derive(Serialize)]
struct Row {
    mode: &'static str,
    avg_teil: f64,
    avg_residual_overlap: f64,
}

fn main() {
    let opts = ExpOptions::parse(60);
    let ac = if opts.full { 200 } else { opts.ac };
    let circuits = fig3_suite(if opts.full { 4 } else { 3 }, opts.seed);

    let mut rows = Vec::new();
    for (move_set, mode) in [
        (MoveSet::Full, "full cascade"),
        (MoveSet::Refinement, "displacement only"),
    ] {
        let mut teils = Vec::new();
        let mut overlaps = Vec::new();
        for (ci, nl) in circuits.iter().enumerate() {
            for t in 0..opts.trials {
                let seed = opts.seed + (ci * 1000 + t) as u64;
                let det = determine_core(nl, &EstimatorParams::default());
                let density = cell_density_factors(nl, nl.stats().avg_pin_density);
                let mut rng = StdRng::seed_from_u64(seed);
                let params = PlaceParams {
                    attempts_per_cell: ac,
                    ..Default::default()
                };
                let mut state =
                    PlacementState::random(nl, det.estimator, density, params.kappa, &mut rng);
                state.calibrate_p2(params.eta, params.normalization_samples, &mut rng);
                let c_a = det.effective_area / nl.cells().len() as f64;
                let s_t = temperature_scale(c_a);
                let t_inf = t_infinity(s_t);
                let core = state.estimator().core();
                let limiter = RangeLimiter::new(
                    2.0 * core.width() as f64,
                    2.0 * core.height() as f64,
                    t_inf,
                    params.rho,
                );
                let r = run_annealing(
                    &mut state,
                    &params,
                    move_set,
                    &CoolingSchedule::stage1(),
                    &limiter,
                    t_inf,
                    s_t,
                    None,
                    &mut rng,
                );
                teils.push(r.teil);
                overlaps.push(r.residual_overlap as f64);
            }
        }
        let row = Row {
            mode,
            avg_teil: mean(&teils),
            avg_residual_overlap: mean(&overlaps),
        };
        eprintln!(
            "{mode:<18}: avg TEIL {:.0}, residual overlap {:.0}",
            row.avg_teil, row.avg_residual_overlap
        );
        rows.push(row);
    }

    println!("\nAblation — full generate cascade vs displacement-only moves");
    println!(
        "{:<20} {:>12} {:>18}",
        "mode", "avg TEIL", "residual overlap"
    );
    for r in &rows {
        println!(
            "{:<20} {:>12.0} {:>18.0}",
            r.mode, r.avg_teil, r.avg_residual_overlap
        );
    }
    println!(
        "\nfull cascade TEIL vs displacement-only: {:+.1}%",
        100.0 * (rows[0].avg_teil / rows[1].avg_teil - 1.0)
    );
    opts.dump_json(&rows);
}
