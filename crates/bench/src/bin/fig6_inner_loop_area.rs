//! **Figure 6**: relative final chip area (after global routing and
//! placement refinement) versus the inner-loop criterion `A_c`.
//!
//! Paper setup (§3.3): as Fig. 5 but measuring the chip area of the full
//! two-stage flow. Paper finding: area also plateaus by `A_c ≈ 400`; the
//! extra TEIL from large `A_c` often buys another 10–15% of area.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin fig6_inner_loop_area [--full]
//! ```

use serde::Serialize;
use twmc_bench::{fig5_suite, mean, print_normalized_series, ExpOptions};
use twmc_core::{run_timberwolf, TimberWolfConfig};
use twmc_place::PlaceParams;

#[derive(Serialize)]
struct Row {
    ac: usize,
    avg_area: f64,
    avg_teil: f64,
}

fn main() {
    let opts = ExpOptions::parse(0);
    let sweep: &[usize] = if opts.full {
        &[10, 25, 50, 100, 200, 400]
    } else {
        &[10, 25, 50, 100]
    };
    let circuits = fig5_suite(if opts.full { 3 } else { 2 }, opts.seed);

    eprintln!(
        "fig6: {} circuits x {} trials, full pipeline, A_c sweep {sweep:?}",
        circuits.len(),
        opts.trials
    );

    let mut rows = Vec::new();
    for &ac in sweep {
        let mut areas = Vec::new();
        let mut teils = Vec::new();
        for (ci, nl) in circuits.iter().enumerate() {
            for t in 0..opts.trials {
                let config = TimberWolfConfig {
                    place: PlaceParams {
                        attempts_per_cell: ac,
                        ..Default::default()
                    },
                    seed: opts.seed + (ci * 1000 + t) as u64,
                    ..Default::default()
                };
                let r = run_timberwolf(nl, &config);
                areas.push(r.chip_area() as f64);
                teils.push(r.teil);
            }
        }
        let row = Row {
            ac,
            avg_area: mean(&areas),
            avg_teil: mean(&teils),
        };
        eprintln!(
            "A_c = {ac:>4}: avg area {:.0}, avg TEIL {:.0}",
            row.avg_area, row.avg_teil
        );
        rows.push(row);
    }

    println!("\nFigure 6 — relative final chip area vs inner-loop criterion A_c");
    let series: Vec<(String, f64)> = rows
        .iter()
        .map(|r| (format!("A_c={}", r.ac), r.avg_area))
        .collect();
    print_normalized_series(("A_c", "avg area"), &series);
    println!("\npaper: area plateaus by A_c ≈ 400; small A_c costs area as well as TEIL");
    opts.dump_json(&rows);
}
