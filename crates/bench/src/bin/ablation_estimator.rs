//! **Ablation**: the dynamic interconnect-area estimator, factor by
//! factor.
//!
//! The paper's per-edge allowance (eq. 2) multiplies three factors:
//! average traffic `C_w`, position modulation `f_x·f_y`, and relative
//! pin density `f_rp`. The claim (§2.2) is that the *dynamic* estimate
//! allocates space where routing will need it, so stage 2 barely moves
//! anything. This ablation runs stage 1 with four estimator variants —
//! the full dynamic estimate, position-only (`f_rp ≡ 1`), pin-density-
//! only (modulation frozen at its mean), and a uniform static border
//! (eq. 5) — and measures how much stage 2 has to correct.
//!
//! ```sh
//! cargo run --release -p twmc-bench --bin ablation_estimator [--full]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use twmc_anneal::{t_infinity, temperature_scale, CoolingSchedule, RangeLimiter};
use twmc_bench::{fig3_suite, mean, ExpOptions};
use twmc_estimator::{cell_density_factors, determine_core, EstimatorParams};
use twmc_place::{run_annealing, MoveSet, PlaceParams, PlacementState};
use twmc_refine::{refine_placement, RefineParams};
use twmc_route::RouterParams;

#[derive(Serialize)]
struct Row {
    mode: &'static str,
    avg_stage1_teil: f64,
    avg_drift_teil_pct: f64,
    avg_drift_area_pct: f64,
    avg_final_area: f64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Full eq. 2: position modulation x pin density, updated per move.
    Dynamic,
    /// Position modulation only (f_rp = 1).
    PositionOnly,
    /// Pin density only (modulation at its mean): static per-side border
    /// 0.5 * C_w * f_rp.
    DensityOnly,
    /// Uniform eq. 5 border, never updated.
    Uniform,
}

fn run_one(nl: &twmc_netlist::Netlist, mode: Mode, ac: usize, seed: u64) -> (f64, f64, f64, f64) {
    let est_params = EstimatorParams::default();
    let det = determine_core(nl, &est_params);
    let density = cell_density_factors(nl, nl.stats().avg_pin_density);
    let mut rng = StdRng::seed_from_u64(seed);
    let params = PlaceParams {
        attempts_per_cell: ac,
        normalization_samples: 16,
        ..Default::default()
    };
    // PositionOnly ablates f_rp by feeding unit density factors.
    let factors = if mode == Mode::PositionOnly {
        vec![twmc_estimator::PinDensityFactors::UNIT; nl.cells().len()]
    } else {
        density.clone()
    };
    let mut state =
        PlacementState::random(nl, det.estimator.clone(), factors, params.kappa, &mut rng);
    match mode {
        Mode::Dynamic | Mode::PositionOnly => {}
        Mode::DensityOnly => {
            // Static per-side border at the mean modulation:
            // e = 0.5 * C_w * f_rp(side).
            use twmc_geom::Side;
            let e0 = 0.5 * det.estimator.c_w();
            let statics = density
                .iter()
                .map(|f| {
                    let side = |s: Side| (e0 * f.factor(s)).round().max(0.0) as i64;
                    (
                        side(Side::Left),
                        side(Side::Right),
                        side(Side::Bottom),
                        side(Side::Top),
                    )
                })
                .collect();
            state.set_static_expansions(statics);
        }
        Mode::Uniform => {
            // Frozen uniform eq. 5 border: no modulation, no density.
            let e = det.estimator.initial_allowance().round() as i64;
            state.set_static_expansions(vec![(e, e, e, e); nl.cells().len()]);
        }
    }
    state.calibrate_p2(params.eta, params.normalization_samples, &mut rng);

    let c_a = det.effective_area / nl.cells().len() as f64;
    let s_t = temperature_scale(c_a);
    let t_inf = t_infinity(s_t);
    let core = state.estimator().core();
    let limiter = RangeLimiter::new(
        2.0 * core.width() as f64,
        2.0 * core.height() as f64,
        t_inf,
        params.rho,
    );
    let s1 = run_annealing(
        &mut state,
        &params,
        MoveSet::Full,
        &CoolingSchedule::stage1(),
        &limiter,
        t_inf,
        s_t,
        None,
        &mut rng,
    );
    // Stage 2 installs routed expansions either way (it always uses the
    // true channel densities).
    if mode == Mode::DensityOnly || mode == Mode::Uniform {
        state.clear_static_expansions();
    }
    let rp = RefineParams {
        router: RouterParams {
            m_alternatives: 6,
            per_level: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let s2 = refine_placement(&mut state, nl, &params, &rp, s_t, t_inf, seed ^ 0x2);
    let drift_teil = 100.0 * (s2.teil - s1.teil) / s1.teil.max(1.0);
    let drift_area =
        100.0 * (s2.chip.area() as f64 - s1.chip.area() as f64) / s1.chip.area().max(1) as f64;
    (s1.teil, drift_teil, drift_area, s2.chip.area() as f64)
}

fn main() {
    let opts = ExpOptions::parse(60);
    let ac = if opts.full { 200 } else { opts.ac };
    let circuits = fig3_suite(if opts.full { 4 } else { 3 }, opts.seed);

    let mut rows = Vec::new();
    for (mode, name) in [
        (Mode::Dynamic, "full dynamic (eq. 2)"),
        (Mode::PositionOnly, "position only"),
        (Mode::DensityOnly, "pin density only"),
        (Mode::Uniform, "uniform (eq. 5)"),
    ] {
        let mut teils = Vec::new();
        let mut dteil = Vec::new();
        let mut darea = Vec::new();
        let mut areas = Vec::new();
        for (ci, nl) in circuits.iter().enumerate() {
            for t in 0..opts.trials {
                let seed = opts.seed + (ci * 1000 + t) as u64;
                let (teil, dt, da, area) = run_one(nl, mode, ac, seed);
                teils.push(teil);
                dteil.push(dt.abs());
                darea.push(da.abs());
                areas.push(area);
            }
        }
        let row = Row {
            mode: name,
            avg_stage1_teil: mean(&teils),
            avg_drift_teil_pct: mean(&dteil),
            avg_drift_area_pct: mean(&darea),
            avg_final_area: mean(&areas),
        };
        eprintln!(
            "{name:<22}: stage1 TEIL {:.0}, |drift| TEIL {:.1}% area {:.1}%, final area {:.0}",
            row.avg_stage1_teil, row.avg_drift_teil_pct, row.avg_drift_area_pct, row.avg_final_area
        );
        rows.push(row);
    }

    println!("\nAblation — the eq. 2 estimator, factor by factor");
    println!(
        "{:<20} {:>14} {:>16} {:>16} {:>14}",
        "mode", "stage1 TEIL", "|TEIL drift| %", "|area drift| %", "final area"
    );
    for r in &rows {
        println!(
            "{:<20} {:>14.0} {:>16.1} {:>16.1} {:>14.0}",
            r.mode, r.avg_stage1_teil, r.avg_drift_teil_pct, r.avg_drift_area_pct, r.avg_final_area
        );
    }
    println!("\nexpected: the dynamic estimator needs less stage-2 correction (smaller drifts),");
    println!("matching the paper's claim that its placements need little modification");
    opts.dump_json(&rows);
}
