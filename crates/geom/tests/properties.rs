//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use twmc_geom::{
    boundary_edges, decompose_rectilinear, span_difference, span_union_len, Orientation, Point,
    Rect, Span, TileSet,
};

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000i64..1000, -1000i64..1000).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), 1i64..200, 1i64..200).prop_map(|(p, w, h)| Rect::from_wh(p.x, p.y, w, h))
}

fn arb_span() -> impl Strategy<Value = Span> {
    (-1000i64..1000, -1000i64..1000).prop_map(|(a, b)| Span::new(a, b))
}

fn arb_orientation() -> impl Strategy<Value = Orientation> {
    prop::sample::select(Orientation::ALL.to_vec())
}

/// Non-overlapping tiles built as a horizontal strip of stacked columns.
fn arb_tileset() -> impl Strategy<Value = TileSet> {
    prop::collection::vec((1i64..20, 1i64..20), 1..6).prop_map(|cols| {
        let mut tiles = Vec::new();
        let mut x = 0;
        for (w, h) in cols {
            tiles.push(Rect::from_wh(x, 0, w, h));
            x += w;
        }
        TileSet::new(tiles).expect("strip tiles never overlap")
    })
}

proptest! {
    #[test]
    fn manhattan_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.manhattan(a), 0);
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn rect_overlap_symmetric_and_bounded(a in arb_rect(), b in arb_rect()) {
        let o = a.overlap_area(b);
        prop_assert_eq!(o, b.overlap_area(a));
        prop_assert!(o >= 0);
        prop_assert!(o <= a.area().min(b.area()));
    }

    #[test]
    fn rect_overlap_matches_intersection(a in arb_rect(), b in arb_rect()) {
        match a.intersect(b) {
            Some(i) => prop_assert_eq!(a.overlap_area(b), i.area()),
            None => prop_assert_eq!(a.overlap_area(b), 0),
        }
    }

    #[test]
    fn span_difference_partitions(base in arb_span(), cover in prop::collection::vec(arb_span(), 0..6)) {
        let gaps = span_difference(base, &cover);
        // Gaps lie inside the base and are disjoint from every cover span's interior.
        for g in &gaps {
            prop_assert!(base.contains_span(*g));
            for c in &cover {
                prop_assert_eq!(g.overlap_len(*c), 0);
            }
        }
        // Gap total + covered total = base length.
        let covered: i64 = span_union_len(
            &cover.iter().filter_map(|c| c.intersect(base)).collect::<Vec<_>>(),
        );
        let gap_total: i64 = gaps.iter().map(|g| g.len()).sum();
        prop_assert_eq!(gap_total + covered, base.len());
    }

    #[test]
    fn orientation_group_closure(a in arb_orientation(), b in arb_orientation()) {
        let c = a.then(b);
        prop_assert!(Orientation::ALL.contains(&c));
    }

    #[test]
    fn orientation_roundtrip(o in arb_orientation(), p in (0i64..50, 0i64..30), dims in (1i64..51, 1i64..31)) {
        let (w, h) = dims;
        let p = Point::new(p.0 % (w + 1), p.1 % (h + 1));
        let q = o.apply(p, w, h);
        let (ww, hh) = o.apply_dims(w, h);
        prop_assert_eq!(o.inverse().apply(q, ww, hh), p);
    }

    #[test]
    fn orientation_preserves_distances(
        o in arb_orientation(),
        a in (0i64..40, 0i64..40),
        b in (0i64..40, 0i64..40),
    ) {
        let (w, h) = (40, 40);
        let (pa, pb) = (Point::new(a.0, a.1), Point::new(b.0, b.1));
        let (qa, qb) = (o.apply(pa, w, h), o.apply(pb, w, h));
        prop_assert_eq!(pa.manhattan(pb), qa.manhattan(qb));
    }

    #[test]
    fn tileset_overlap_symmetric(
        a in arb_tileset(),
        b in arb_tileset(),
        pa in arb_point(),
        pb in arb_point(),
    ) {
        prop_assert_eq!(
            a.overlap_area_at(pa, &b, pb),
            b.overlap_area_at(pb, &a, pa)
        );
    }

    #[test]
    fn tileset_self_overlap_is_area(a in arb_tileset(), p in arb_point()) {
        prop_assert_eq!(a.overlap_area_at(p, &a, p), a.area());
    }

    #[test]
    fn tileset_far_apart_no_overlap(a in arb_tileset(), b in arb_tileset()) {
        let far = Point::new(a.width() + 1, 0);
        prop_assert_eq!(a.overlap_area_at(Point::ORIGIN, &b, far), 0);
    }

    #[test]
    fn expanded_overlap_dominates_plain(
        a in arb_tileset(),
        b in arb_tileset(),
        d in (0i64..30, 0i64..30),
        e in 0i64..5,
    ) {
        let pb = Point::new(d.0, d.1);
        let exp = (e, e, e, e);
        let plain = a.overlap_area_at(Point::ORIGIN, &b, pb);
        let grown = a.expanded_overlap_area_at(Point::ORIGIN, exp, &b, pb, exp);
        prop_assert!(grown >= plain);
    }

    #[test]
    fn boundary_lengths_balance(ts in arb_tileset()) {
        use twmc_geom::Side;
        let edges = boundary_edges(&ts);
        let total = |s: Side| -> i64 {
            edges.iter().filter(|e| e.side == s).map(|e| e.len()).sum()
        };
        prop_assert_eq!(total(Side::Left), total(Side::Right));
        prop_assert_eq!(total(Side::Top), total(Side::Bottom));
        // Per-axis totals bound the bbox dimensions.
        prop_assert!(total(Side::Left) >= ts.height());
        prop_assert!(total(Side::Bottom) >= ts.width());
    }

    #[test]
    fn oriented_tileset_preserves_area_and_perimeter(ts in arb_tileset(), o in arb_orientation()) {
        let t = ts.oriented(o);
        prop_assert_eq!(t.area(), ts.area());
        prop_assert_eq!(t.perimeter(), ts.perimeter());
    }

    #[test]
    fn staircase_polygon_decomposes(steps in prop::collection::vec((1i64..10, 1i64..10), 1..6)) {
        // Build a staircase outline; its area is known by construction.
        let mut verts = vec![Point::new(0, 0)];
        let mut x = 0;
        let mut y = 0;
        for (dx, dy) in &steps {
            x += dx;
            verts.push(Point::new(x, y));
            y += dy;
            verts.push(Point::new(x, y));
        }
        verts.push(Point::new(0, y));
        let ts = decompose_rectilinear(&verts).expect("staircase is simple");
        // Area = sum over steps of width-so-far times rise.
        let mut area = 0;
        let mut width = 0;
        for (dx, dy) in &steps {
            width += dx;
            area += width * dy;
        }
        prop_assert_eq!(ts.area(), area);
    }
}
