//! Rectilinear polygon decomposition into tiles.
//!
//! Netlists describe rectilinear cell outlines as vertex loops; the
//! placement engine wants them as non-overlapping rectangular tiles
//! (paper §3.1.2). This module performs the horizontal-slab decomposition.

use crate::{Point, Rect, Span, TileSet, TileSetError};

/// Error decomposing a rectilinear polygon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than four vertices.
    TooFewVertices,
    /// Two consecutive vertices are neither horizontally nor vertically
    /// aligned (the polygon is not rectilinear), at the given vertex index.
    NotRectilinear(usize),
    /// Two consecutive vertices coincide, at the given vertex index.
    ZeroLengthEdge(usize),
    /// A horizontal slab had an odd number of crossing edges — the outline
    /// self-intersects or is not closed.
    SelfIntersecting,
    /// The decomposition produced an invalid tile set.
    BadTiles(TileSetError),
}

impl core::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least 4 vertices"),
            PolygonError::NotRectilinear(i) => {
                write!(
                    f,
                    "edge after vertex {i} is neither horizontal nor vertical"
                )
            }
            PolygonError::ZeroLengthEdge(i) => write!(f, "edge after vertex {i} has zero length"),
            PolygonError::SelfIntersecting => {
                write!(f, "polygon outline self-intersects or is not closed")
            }
            PolygonError::BadTiles(e) => write!(f, "decomposition produced bad tiles: {e}"),
        }
    }
}

impl std::error::Error for PolygonError {}

impl From<TileSetError> for PolygonError {
    fn from(e: TileSetError) -> Self {
        PolygonError::BadTiles(e)
    }
}

/// Decomposes a simple rectilinear polygon (given as a closed vertex loop,
/// last edge implicit) into a [`TileSet`] of horizontal-slab tiles.
///
/// Vertices may wind in either direction. The resulting tile set is
/// normalized so its bounding box starts at the origin.
///
/// # Errors
///
/// Returns a [`PolygonError`] for degenerate, non-rectilinear, or
/// self-intersecting outlines.
///
/// # Examples
///
/// ```
/// use twmc_geom::{decompose_rectilinear, Point};
///
/// // An L-shape.
/// let ts = decompose_rectilinear(&[
///     Point::new(0, 0),
///     Point::new(4, 0),
///     Point::new(4, 2),
///     Point::new(2, 2),
///     Point::new(2, 4),
///     Point::new(0, 4),
/// ])?;
/// assert_eq!(ts.area(), 12);
/// # Ok::<(), twmc_geom::PolygonError>(())
/// ```
pub fn decompose_rectilinear(vertices: &[Point]) -> Result<TileSet, PolygonError> {
    if vertices.len() < 4 {
        return Err(PolygonError::TooFewVertices);
    }

    // Collect vertical edges (x, y-span); validate rectilinearity.
    let mut vertical: Vec<(i64, Span)> = Vec::new();
    for (i, &a) in vertices.iter().enumerate() {
        let b = vertices[(i + 1) % vertices.len()];
        if a == b {
            return Err(PolygonError::ZeroLengthEdge(i));
        }
        if a.x == b.x {
            vertical.push((a.x, Span::new(a.y, b.y)));
        } else if a.y != b.y {
            return Err(PolygonError::NotRectilinear(i));
        }
    }

    // Horizontal slabs between consecutive distinct y coordinates.
    let mut ys: Vec<i64> = vertices.iter().map(|p| p.y).collect();
    ys.sort_unstable();
    ys.dedup();

    let mut tiles = Vec::new();
    for win in ys.windows(2) {
        let (y0, y1) = (win[0], win[1]);
        let slab = Span::new(y0, y1);
        // Edges fully crossing this slab, sorted by x.
        let mut xs: Vec<i64> = vertical
            .iter()
            .filter(|(_, s)| s.contains_span(slab))
            .map(|(x, _)| *x)
            .collect();
        xs.sort_unstable();
        if !xs.len().is_multiple_of(2) {
            return Err(PolygonError::SelfIntersecting);
        }
        for pair in xs.chunks(2) {
            if pair[0] == pair[1] {
                return Err(PolygonError::SelfIntersecting);
            }
            tiles.push(Rect::from_spans(Span::new(pair[0], pair[1]), slab));
        }
    }

    Ok(TileSet::new(tiles)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(i64, i64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn rectangle() {
        let ts = decompose_rectilinear(&pts(&[(0, 0), (5, 0), (5, 3), (0, 3)])).unwrap();
        assert_eq!(ts.area(), 15);
        assert_eq!(ts.tiles().len(), 1);
    }

    #[test]
    fn rectangle_reverse_winding() {
        let ts = decompose_rectilinear(&pts(&[(0, 0), (0, 3), (5, 3), (5, 0)])).unwrap();
        assert_eq!(ts.area(), 15);
    }

    #[test]
    fn l_shape() {
        let ts =
            decompose_rectilinear(&pts(&[(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])).unwrap();
        assert_eq!(ts.area(), 12);
        assert_eq!(ts.tiles().len(), 2);
        assert_eq!(ts.bbox(), Rect::from_wh(0, 0, 4, 4));
    }

    #[test]
    fn t_shape() {
        // T-shape: stem 2 wide under a 6-wide top bar.
        let ts = decompose_rectilinear(&pts(&[
            (2, 0),
            (4, 0),
            (4, 2),
            (6, 2),
            (6, 4),
            (0, 4),
            (0, 2),
            (2, 2),
        ]))
        .unwrap();
        assert_eq!(ts.area(), 2 * 2 + 6 * 2);
        assert_eq!(ts.tiles().len(), 2);
    }

    #[test]
    fn twelve_edge_cell_like_paper_figure8() {
        // The paper's Fig. 8 shows a rectilinear cell C4 with 12 edges;
        // build a plus-shaped 12-edge outline.
        let ts = decompose_rectilinear(&pts(&[
            (2, 0),
            (4, 0),
            (4, 2),
            (6, 2),
            (6, 4),
            (4, 4),
            (4, 6),
            (2, 6),
            (2, 4),
            (0, 4),
            (0, 2),
            (2, 2),
        ]))
        .unwrap();
        assert_eq!(ts.area(), 2 * 6 + 2 * 2 + 2 * 2);
        // 3 horizontal slabs.
        assert_eq!(ts.tiles().len(), 3);
    }

    #[test]
    fn errors() {
        assert_eq!(
            decompose_rectilinear(&pts(&[(0, 0), (1, 0), (1, 1)])),
            Err(PolygonError::TooFewVertices)
        );
        assert_eq!(
            decompose_rectilinear(&pts(&[(0, 0), (2, 1), (2, 2), (0, 2)])),
            Err(PolygonError::NotRectilinear(0))
        );
        assert_eq!(
            decompose_rectilinear(&pts(&[(0, 0), (0, 0), (2, 0), (2, 2), (0, 2)])),
            Err(PolygonError::ZeroLengthEdge(0))
        );
    }

    #[test]
    fn decomposition_matches_boundary_perimeter() {
        let ts =
            decompose_rectilinear(&pts(&[(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])).unwrap();
        assert_eq!(ts.perimeter(), 16);
    }
}
