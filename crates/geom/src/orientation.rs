//! The eight cell orientations (the dihedral group D4).
//!
//! TimberWolfMC considers all eight possible orientations for each cell
//! (paper §1), because the TEIC calculation uses exact pin locations rather
//! than cell centers. Orientation names follow the common layout-tool
//! convention: four rotations and four mirrored rotations.
//!
//! An orientation acts on *cell-local* coordinates: the unoriented cell
//! occupies `[0, w] × [0, h]`, and the oriented cell occupies
//! `[0, w'] × [0, h']` where `(w', h')` equals `(w, h)` or `(h, w)`.

use crate::{Point, Rect};

/// One of the eight orientations of the dihedral group D4.
///
/// `R*` are counter-clockwise rotations; `MX` mirrors about the x-axis
/// (flips vertically); `MY` mirrors about the y-axis (flips horizontally);
/// `MX90`/`MY90` are the mirrors followed by a 90° rotation.
///
/// # Examples
///
/// ```
/// use twmc_geom::{Orientation, Point};
///
/// // A pin at (4, 1) on a 5x2 cell, rotated 90° CCW, lands at (1, 4) on
/// // the resulting 2x5 cell.
/// let p = Orientation::R90.apply(Point::new(4, 1), 5, 2);
/// assert_eq!(p, Point::new(1, 4));
/// assert_eq!(Orientation::R90.apply_dims(5, 2), (2, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Orientation {
    /// Identity.
    #[default]
    R0,
    /// 90° counter-clockwise rotation.
    R90,
    /// 180° rotation.
    R180,
    /// 270° counter-clockwise rotation.
    R270,
    /// Mirror about the x-axis (y coordinates flip).
    MX,
    /// Mirror about the y-axis (x coordinates flip).
    MY,
    /// Mirror about the x-axis, then rotate 90° CCW (transpose).
    MX90,
    /// Mirror about the y-axis, then rotate 90° CCW (anti-transpose).
    MY90,
}

impl Orientation {
    /// All eight orientations, in a fixed order.
    pub const ALL: [Orientation; 8] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::MX,
        Orientation::MY,
        Orientation::MX90,
        Orientation::MY90,
    ];

    /// The signed-permutation matrix `[[a, b], [c, d]]` of the linear part,
    /// mapping `(x, y)` to `(a·x + b·y, c·x + d·y)`.
    const fn matrix(self) -> [[i8; 2]; 2] {
        match self {
            Orientation::R0 => [[1, 0], [0, 1]],
            Orientation::R90 => [[0, -1], [1, 0]],
            Orientation::R180 => [[-1, 0], [0, -1]],
            Orientation::R270 => [[0, 1], [-1, 0]],
            Orientation::MX => [[1, 0], [0, -1]],
            Orientation::MY => [[-1, 0], [0, 1]],
            // MX then R90: (x,y) -> (x,-y) -> (y, x)
            Orientation::MX90 => [[0, 1], [1, 0]],
            // MY then R90: (x,y) -> (-x,y) -> (-y, -x)
            Orientation::MY90 => [[0, -1], [-1, 0]],
        }
    }

    fn from_matrix(m: [[i8; 2]; 2]) -> Orientation {
        for o in Orientation::ALL {
            if o.matrix() == m {
                return o;
            }
        }
        unreachable!("every signed permutation matrix is a D4 element")
    }

    /// Whether this orientation exchanges the cell's width and height.
    ///
    /// Composing a cell's orientation with an axis-swapping element effects
    /// the "aspect-ratio inversion" used by the `generate` function when a
    /// displacement fails for the current aspect ratio (paper §3.2.1).
    #[inline]
    pub const fn swaps_axes(self) -> bool {
        matches!(
            self,
            Orientation::R90 | Orientation::R270 | Orientation::MX90 | Orientation::MY90
        )
    }

    /// Dimensions of the oriented cell given unoriented dimensions.
    #[inline]
    pub const fn apply_dims(self, w: i64, h: i64) -> (i64, i64) {
        if self.swaps_axes() {
            (h, w)
        } else {
            (w, h)
        }
    }

    /// Maps a cell-local point of the unoriented `w × h` cell to its
    /// location in the oriented cell (whose extent is
    /// `[0, w'] × [0, h']` with `(w', h') = apply_dims(w, h)`).
    pub fn apply(self, p: Point, w: i64, h: i64) -> Point {
        let [[a, b], [c, d]] = self.matrix();
        let lin = |r0: i8, r1: i8| -> i64 { r0 as i64 * p.x + r1 as i64 * p.y };
        // Shift each output component so the image of [0,w]x[0,h] starts
        // at zero: a negated x-source adds w, a negated y-source adds h.
        let off = |r0: i8, r1: i8| -> i64 {
            if r0 < 0 {
                w
            } else if r1 < 0 {
                h
            } else {
                0
            }
        };
        Point::new(lin(a, b) + off(a, b), lin(c, d) + off(c, d))
    }

    /// Maps a cell-local rectangle (a geometry tile) of the unoriented cell.
    pub fn apply_rect(self, r: Rect, w: i64, h: i64) -> Rect {
        Rect::new(self.apply(r.lo(), w, h), self.apply(r.hi(), w, h))
    }

    /// Composition: first apply `self`, then apply `then`.
    ///
    /// The composite is again one of the eight orientations (group closure).
    pub fn then(self, then: Orientation) -> Orientation {
        let m1 = self.matrix();
        let m2 = then.matrix();
        let mut out = [[0i8; 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = m2[i][0] * m1[0][j] + m2[i][1] * m1[1][j];
            }
        }
        Orientation::from_matrix(out)
    }

    /// The inverse orientation: `o.then(o.inverse()) == R0`.
    pub fn inverse(self) -> Orientation {
        for o in Orientation::ALL {
            if self.then(o) == Orientation::R0 {
                return o;
            }
        }
        unreachable!("D4 is a group")
    }

    /// Where a cell side (identified by its outward normal) lands under
    /// this orientation: e.g. the left side of a cell rotated 90° CCW
    /// becomes the bottom side.
    pub fn apply_side(self, side: crate::Side) -> crate::Side {
        use crate::Side;
        let (nx, ny): (i64, i64) = match side {
            Side::Left => (-1, 0),
            Side::Right => (1, 0),
            Side::Bottom => (0, -1),
            Side::Top => (0, 1),
        };
        let [[a, b], [c, d]] = self.matrix();
        let mx = a as i64 * nx + b as i64 * ny;
        let my = c as i64 * nx + d as i64 * ny;
        match (mx, my) {
            (-1, 0) => Side::Left,
            (1, 0) => Side::Right,
            (0, -1) => Side::Bottom,
            (0, 1) => Side::Top,
            _ => unreachable!("signed permutation maps axes to axes"),
        }
    }

    /// This orientation composed with a 90° rotation — the canonical
    /// aspect-ratio-inverting alternative tried by `generate` when a move
    /// fails with the current orientation (paper Fig. 2 discussion).
    #[inline]
    pub fn aspect_inverted(self) -> Orientation {
        self.then(Orientation::R90)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_distinct_elements() {
        for (i, a) in Orientation::ALL.iter().enumerate() {
            for b in &Orientation::ALL[i + 1..] {
                assert_ne!(a, b);
                assert_ne!(a.matrix(), b.matrix());
            }
        }
    }

    #[test]
    fn rotations_compose() {
        use Orientation::*;
        assert_eq!(R90.then(R90), R180);
        assert_eq!(R90.then(R180), R270);
        assert_eq!(R180.then(R180), R0);
        assert_eq!(R270.then(R90), R0);
        assert_eq!(MX.then(MX), R0);
        assert_eq!(MY.then(MY), R0);
        assert_eq!(MX.then(R90), MX90);
        assert_eq!(MY.then(R90), MY90);
    }

    #[test]
    fn inverses() {
        for o in Orientation::ALL {
            assert_eq!(o.then(o.inverse()), Orientation::R0);
            assert_eq!(o.inverse().then(o), Orientation::R0);
        }
    }

    #[test]
    fn apply_corners_stay_in_bounds() {
        let (w, h) = (7, 3);
        for o in Orientation::ALL {
            let (ww, hh) = o.apply_dims(w, h);
            for p in [
                Point::new(0, 0),
                Point::new(w, 0),
                Point::new(0, h),
                Point::new(w, h),
                Point::new(3, 2),
            ] {
                let q = o.apply(p, w, h);
                assert!(
                    (0..=ww).contains(&q.x) && (0..=hh).contains(&q.y),
                    "{o:?} maps {p} out of bounds to {q}"
                );
            }
        }
    }

    #[test]
    fn apply_matches_known_values() {
        use Orientation::*;
        let (w, h) = (5, 2);
        let p = Point::new(4, 1);
        assert_eq!(R0.apply(p, w, h), Point::new(4, 1));
        assert_eq!(R90.apply(p, w, h), Point::new(1, 4)); // (-y,x)+(h,0)
        assert_eq!(R180.apply(p, w, h), Point::new(1, 1));
        assert_eq!(R270.apply(p, w, h), Point::new(1, 1).min(Point::new(1, 1)));
        assert_eq!(R270.apply(p, w, h), Point::new(1, 1));
        assert_eq!(MX.apply(p, w, h), Point::new(4, 1).min(Point::new(4, 1)));
        assert_eq!(MX.apply(p, w, h), Point::new(4, h - 1));
        assert_eq!(MY.apply(p, w, h), Point::new(w - 4, 1));
        assert_eq!(MX90.apply(p, w, h), Point::new(1, 4)); // transpose
        assert_eq!(MY90.apply(p, w, h), Point::new(h - 1, w - 4));
    }

    #[test]
    fn apply_agrees_with_composition() {
        let (w, h) = (6, 4);
        let p = Point::new(2, 3);
        for a in Orientation::ALL {
            let (w1, h1) = a.apply_dims(w, h);
            for b in Orientation::ALL {
                let via_steps = b.apply(a.apply(p, w, h), w1, h1);
                let via_compose = a.then(b).apply(p, w, h);
                assert_eq!(via_steps, via_compose, "{a:?} then {b:?}");
            }
        }
    }

    #[test]
    fn aspect_inverted_swaps_dims() {
        for o in Orientation::ALL {
            assert_ne!(o.swaps_axes(), o.aspect_inverted().swaps_axes());
        }
    }

    #[test]
    fn apply_side_matches_geometry() {
        use crate::{boundary_edges, Side, TileSet};
        // For every orientation, the boundary edge that was on `side` of
        // the unoriented cell must land on `apply_side(side)` of the
        // oriented cell. Use an asymmetric cell so sides are distinct.
        let cell = TileSet::rect(7, 3);
        for o in Orientation::ALL {
            let rotated = cell.oriented(o);
            for side in Side::ALL {
                let mapped = o.apply_side(side);
                // The total edge length on `side` equals the total on
                // `mapped` after orientation.
                let len_before: i64 = boundary_edges(&cell)
                    .iter()
                    .filter(|e| e.side == side)
                    .map(|e| e.len())
                    .sum();
                let len_after: i64 = boundary_edges(&rotated)
                    .iter()
                    .filter(|e| e.side == mapped)
                    .map(|e| e.len())
                    .sum();
                assert_eq!(len_before, len_after, "{o:?} {side:?}->{mapped:?}");
            }
        }
        // Spot checks.
        assert_eq!(Orientation::R90.apply_side(Side::Left), Side::Bottom);
        assert_eq!(Orientation::R90.apply_side(Side::Bottom), Side::Right);
        assert_eq!(Orientation::MY.apply_side(Side::Left), Side::Right);
        assert_eq!(Orientation::MX.apply_side(Side::Top), Side::Bottom);
    }

    #[test]
    fn apply_rect_preserves_area() {
        let (w, h) = (9, 5);
        let r = Rect::from_wh(1, 2, 3, 2);
        for o in Orientation::ALL {
            let q = o.apply_rect(r, w, h);
            assert_eq!(q.area(), r.area(), "{o:?}");
        }
    }
}
