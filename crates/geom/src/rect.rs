//! Axis-aligned rectangles.

use core::fmt;

use crate::{Point, Span};

/// An axis-aligned rectangle `[lo.x, hi.x] × [lo.y, hi.y]`.
///
/// Degenerate rectangles (zero width and/or height) are permitted; they
/// arise as shared boundaries between touching tiles.
///
/// # Examples
///
/// ```
/// use twmc_geom::{Point, Rect};
///
/// let r = Rect::new(Point::new(0, 0), Point::new(4, 3));
/// assert_eq!(r.area(), 12);
/// assert_eq!(r.center(), Point::new(2, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Creates a rectangle from `(x, y)` of the lower-left corner plus
    /// width and height.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is negative.
    #[inline]
    pub fn from_wh(x: i64, y: i64, w: i64, h: i64) -> Self {
        assert!(w >= 0 && h >= 0, "negative rectangle dimensions {w}x{h}");
        Rect {
            lo: Point::new(x, y),
            hi: Point::new(x + w, y + h),
        }
    }

    /// Creates a rectangle from its horizontal and vertical spans.
    #[inline]
    pub fn from_spans(xs: Span, ys: Span) -> Self {
        Rect {
            lo: Point::new(xs.lo(), ys.lo()),
            hi: Point::new(xs.hi(), ys.hi()),
        }
    }

    /// Lower-left corner.
    #[inline]
    pub const fn lo(self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    #[inline]
    pub const fn hi(self) -> Point {
        self.hi
    }

    /// Horizontal extent.
    #[inline]
    pub fn x_span(self) -> Span {
        Span::new(self.lo.x, self.hi.x)
    }

    /// Vertical extent.
    #[inline]
    pub fn y_span(self) -> Span {
        Span::new(self.lo.y, self.hi.y)
    }

    /// Width.
    #[inline]
    pub const fn width(self) -> i64 {
        self.hi.x - self.lo.x
    }

    /// Height.
    #[inline]
    pub const fn height(self) -> i64 {
        self.hi.y - self.lo.y
    }

    /// Area.
    #[inline]
    pub const fn area(self) -> i64 {
        self.width() * self.height()
    }

    /// Half the perimeter (`width + height`) — the bounding-box wirelength
    /// contribution of a net spanning this rectangle.
    #[inline]
    pub const fn half_perimeter(self) -> i64 {
        self.width() + self.height()
    }

    /// Center, rounded toward the lower-left corner.
    #[inline]
    pub fn center(self) -> Point {
        Point::new(self.x_span().mid(), self.y_span().mid())
    }

    /// Whether the rectangle has zero area.
    #[inline]
    pub const fn is_degenerate(self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// Whether `p` lies within the closed rectangle.
    #[inline]
    pub const fn contains(self, p: Point) -> bool {
        self.lo.x <= p.x && p.x <= self.hi.x && self.lo.y <= p.y && p.y <= self.hi.y
    }

    /// Whether `other` lies entirely within `self`.
    #[inline]
    pub const fn contains_rect(self, other: Rect) -> bool {
        self.contains(other.lo) && self.contains(other.hi)
    }

    /// Closed intersection; `None` if disjoint. Touching rectangles
    /// intersect in a degenerate rectangle.
    #[inline]
    pub fn intersect(self, other: Rect) -> Option<Rect> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo.x <= hi.x && lo.y <= hi.y).then_some(Rect { lo, hi })
    }

    /// Area of overlap of the open interiors — the `O_t` tile-overlap
    /// function of the paper's overlap penalty (eq. 8).
    ///
    /// Touching rectangles overlap zero.
    #[inline]
    pub fn overlap_area(self, other: Rect) -> i64 {
        let w = (self.hi.x.min(other.hi.x) - self.lo.x.max(other.lo.x)).max(0);
        let h = (self.hi.y.min(other.hi.y) - self.lo.y.max(other.lo.y)).max(0);
        w * h
    }

    /// Smallest rectangle covering both.
    #[inline]
    pub fn hull(self, other: Rect) -> Rect {
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Translates by `d`.
    #[inline]
    pub fn translate(self, d: Point) -> Rect {
        Rect {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// Expands each side outward by the given (non-negative) amounts.
    ///
    /// This is how the dynamic interconnect-area estimator appends a border
    /// around a tile before overlap evaluation (paper §2.2, eq. 2).
    #[inline]
    pub fn expand_sides(self, left: i64, right: i64, bottom: i64, top: i64) -> Rect {
        debug_assert!(
            left >= 0 && right >= 0 && bottom >= 0 && top >= 0,
            "expansion amounts must be non-negative"
        );
        Rect {
            lo: Point::new(self.lo.x - left, self.lo.y - bottom),
            hi: Point::new(self.hi.x + right, self.hi.y + top),
        }
    }

    /// Expands uniformly by `amount` on every side (may shrink if negative,
    /// clamping at the center).
    #[inline]
    pub fn expand(self, amount: i64) -> Rect {
        if amount >= 0 {
            return self.expand_sides(amount, amount, amount, amount);
        }
        let shrink = (-amount).min(self.width() / 2).min(self.height() / 2);
        Rect {
            lo: Point::new(self.lo.x + shrink, self.lo.y + shrink),
            hi: Point::new(self.hi.x - shrink, self.hi.y - shrink),
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn corner_normalization() {
        assert_eq!(Rect::new(Point::new(4, 3), Point::new(0, 0)), r(0, 0, 4, 3));
    }

    #[test]
    fn dimensions() {
        let a = r(1, 2, 5, 9);
        assert_eq!(a.width(), 4);
        assert_eq!(a.height(), 7);
        assert_eq!(a.area(), 28);
        assert_eq!(a.half_perimeter(), 11);
        assert_eq!(a.center(), Point::new(3, 5));
    }

    #[test]
    fn overlap_touching_is_zero() {
        let a = r(0, 0, 4, 4);
        let b = r(4, 0, 8, 4);
        assert_eq!(a.overlap_area(b), 0);
        assert!(a.intersect(b).unwrap().is_degenerate());
    }

    #[test]
    fn overlap_partial() {
        let a = r(0, 0, 4, 4);
        let b = r(2, 2, 6, 6);
        assert_eq!(a.overlap_area(b), 4);
        assert_eq!(b.overlap_area(a), 4);
        assert_eq!(a.intersect(b), Some(r(2, 2, 4, 4)));
    }

    #[test]
    fn overlap_containment() {
        let a = r(0, 0, 10, 10);
        let b = r(2, 2, 4, 4);
        assert_eq!(a.overlap_area(b), b.area());
        assert!(a.contains_rect(b));
        assert!(!b.contains_rect(a));
    }

    #[test]
    fn disjoint() {
        let a = r(0, 0, 1, 1);
        let b = r(5, 5, 6, 6);
        assert_eq!(a.intersect(b), None);
        assert_eq!(a.overlap_area(b), 0);
        assert_eq!(a.hull(b), r(0, 0, 6, 6));
    }

    #[test]
    fn translate_and_expand() {
        let a = r(0, 0, 2, 2);
        assert_eq!(a.translate(Point::new(3, 4)), r(3, 4, 5, 6));
        assert_eq!(a.expand_sides(1, 2, 3, 4), r(-1, -3, 4, 6));
        assert_eq!(a.expand(-5), r(1, 1, 1, 1)); // clamps at center
    }

    #[test]
    fn from_wh_and_spans() {
        assert_eq!(Rect::from_wh(1, 2, 3, 4), r(1, 2, 4, 6));
        assert_eq!(
            Rect::from_spans(Span::new(1, 4), Span::new(2, 6)),
            r(1, 2, 4, 6)
        );
    }
}
