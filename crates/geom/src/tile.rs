//! Tile sets: rectilinear cell areas stored as unions of non-overlapping
//! rectangular tiles.
//!
//! The paper stores the area occupied by each rectilinear cell as a set of
//! one or more non-overlapping rectangular *tiles* (§3.1.2); the overlap
//! function `O(i, j)` between two cells is the sum of pairwise tile
//! intersections (eq. 8).

use crate::{Orientation, Point, Rect};

/// A union of non-overlapping axis-aligned rectangles, in cell-local
/// coordinates with the bounding box anchored at the origin.
///
/// # Examples
///
/// ```
/// use twmc_geom::{Rect, TileSet};
///
/// // An L-shaped cell as two tiles.
/// let l = TileSet::new(vec![
///     Rect::from_wh(0, 0, 4, 2),
///     Rect::from_wh(0, 2, 2, 2),
/// ]).unwrap();
/// assert_eq!(l.area(), 12);
/// assert_eq!(l.bbox(), Rect::from_wh(0, 0, 4, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TileSet {
    tiles: Vec<Rect>,
    bbox: Rect,
}

/// Error building a [`TileSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileSetError {
    /// The tile list was empty.
    Empty,
    /// Two tiles (given by index) have interiors that overlap.
    Overlapping(usize, usize),
    /// A tile has zero area.
    Degenerate(usize),
}

impl core::fmt::Display for TileSetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TileSetError::Empty => write!(f, "tile set must contain at least one tile"),
            TileSetError::Overlapping(i, j) => {
                write!(f, "tiles {i} and {j} have overlapping interiors")
            }
            TileSetError::Degenerate(i) => write!(f, "tile {i} has zero area"),
        }
    }
}

impl std::error::Error for TileSetError {}

impl TileSet {
    /// Builds a tile set from non-overlapping tiles, normalizing the
    /// coordinates so the bounding box starts at the origin.
    ///
    /// # Errors
    ///
    /// Returns an error if `tiles` is empty, any tile is degenerate, or two
    /// tiles overlap in their interiors (touching is fine).
    pub fn new(tiles: Vec<Rect>) -> Result<Self, TileSetError> {
        if tiles.is_empty() {
            return Err(TileSetError::Empty);
        }
        for (i, t) in tiles.iter().enumerate() {
            if t.is_degenerate() {
                return Err(TileSetError::Degenerate(i));
            }
            for (j, u) in tiles.iter().enumerate().skip(i + 1) {
                if t.overlap_area(*u) > 0 {
                    return Err(TileSetError::Overlapping(i, j));
                }
            }
        }
        let bbox = tiles[1..].iter().fold(tiles[0], |acc, t| acc.hull(*t));
        let shift = -bbox.lo();
        let tiles = tiles
            .into_iter()
            .map(|t| t.translate(shift))
            .collect::<Vec<_>>();
        let bbox = bbox.translate(shift);
        Ok(TileSet { tiles, bbox })
    }

    /// A single `w × h` rectangular cell.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is not positive.
    pub fn rect(w: i64, h: i64) -> Self {
        assert!(
            w > 0 && h > 0,
            "cell dimensions must be positive, got {w}x{h}"
        );
        let r = Rect::from_wh(0, 0, w, h);
        TileSet {
            tiles: vec![r],
            bbox: r,
        }
    }

    /// The tiles, in cell-local coordinates.
    #[inline]
    pub fn tiles(&self) -> &[Rect] {
        &self.tiles
    }

    /// Bounding box (anchored at the origin).
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Width of the bounding box.
    #[inline]
    pub fn width(&self) -> i64 {
        self.bbox.width()
    }

    /// Height of the bounding box.
    #[inline]
    pub fn height(&self) -> i64 {
        self.bbox.height()
    }

    /// Total tile area (the cell area).
    pub fn area(&self) -> i64 {
        self.tiles.iter().map(|t| t.area()).sum()
    }

    /// Whether the cell-local point lies inside (or on the boundary of)
    /// some tile.
    pub fn contains(&self, p: Point) -> bool {
        self.tiles.iter().any(|t| t.contains(p))
    }

    /// The tile set under the given orientation (tiles transformed, bbox
    /// dimensions possibly swapped).
    pub fn oriented(&self, o: Orientation) -> TileSet {
        let (w, h) = (self.width(), self.height());
        let tiles: Vec<Rect> = self.tiles.iter().map(|t| o.apply_rect(*t, w, h)).collect();
        let (ww, hh) = o.apply_dims(w, h);
        TileSet {
            tiles,
            bbox: Rect::from_wh(0, 0, ww, hh),
        }
    }

    /// Overlap area between `self` placed with its bbox lower-left corner
    /// at `at` and `other` placed at `other_at` — the paper's `O(i, j)`
    /// (eq. 8) without expansion.
    pub fn overlap_area_at(&self, at: Point, other: &TileSet, other_at: Point) -> i64 {
        // Cheap bbox rejection first.
        if self
            .bbox
            .translate(at)
            .overlap_area(other.bbox.translate(other_at))
            == 0
        {
            return 0;
        }
        let mut total = 0;
        for t in &self.tiles {
            let tt = t.translate(at);
            for u in &other.tiles {
                total += tt.overlap_area(u.translate(other_at));
            }
        }
        total
    }

    /// Overlap area with per-cell *expanded* tiles: each cell's tiles are
    /// grown outward by its four per-side interconnect allowances before
    /// intersection, as the dynamic estimator prescribes (paper §2.2).
    ///
    /// `exp` order is `(left, right, bottom, top)`.
    #[allow(clippy::too_many_arguments)]
    pub fn expanded_overlap_area_at(
        &self,
        at: Point,
        exp: (i64, i64, i64, i64),
        other: &TileSet,
        other_at: Point,
        other_exp: (i64, i64, i64, i64),
    ) -> i64 {
        let grow = |r: Rect, e: (i64, i64, i64, i64)| r.expand_sides(e.0, e.1, e.2, e.3);
        let self_bb = grow(self.bbox.translate(at), exp);
        let other_bb = grow(other.bbox.translate(other_at), other_exp);
        if self_bb.overlap_area(other_bb) == 0 {
            return 0;
        }
        let mut total = 0;
        for t in &self.tiles {
            let tt = grow(t.translate(at), exp);
            for u in &other.tiles {
                total += tt.overlap_area(grow(u.translate(other_at), other_exp));
            }
        }
        total
    }

    /// Sum of the perimeters of the exposed boundary of the union.
    ///
    /// Used for the circuit-average pin density `D̄_p` (paper §2.2 factor 3),
    /// which divides the total pin count by the sum of cell perimeters.
    pub fn perimeter(&self) -> i64 {
        crate::edge::boundary_edges(self)
            .iter()
            .map(|e| e.span.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_input() {
        assert_eq!(TileSet::new(vec![]), Err(TileSetError::Empty));
        assert_eq!(
            TileSet::new(vec![Rect::from_wh(0, 0, 0, 5)]),
            Err(TileSetError::Degenerate(0))
        );
        assert_eq!(
            TileSet::new(vec![Rect::from_wh(0, 0, 4, 4), Rect::from_wh(2, 2, 4, 4)]),
            Err(TileSetError::Overlapping(0, 1))
        );
    }

    #[test]
    fn touching_tiles_allowed() {
        let ts = TileSet::new(vec![Rect::from_wh(0, 0, 2, 2), Rect::from_wh(2, 0, 2, 2)]).unwrap();
        assert_eq!(ts.area(), 8);
        assert_eq!(ts.bbox(), Rect::from_wh(0, 0, 4, 2));
    }

    #[test]
    fn normalizes_to_origin() {
        let ts = TileSet::new(vec![Rect::from_wh(10, 20, 3, 4)]).unwrap();
        assert_eq!(ts.bbox(), Rect::from_wh(0, 0, 3, 4));
    }

    #[test]
    fn rect_constructor() {
        let ts = TileSet::rect(5, 3);
        assert_eq!(ts.area(), 15);
        assert_eq!(ts.width(), 5);
        assert_eq!(ts.height(), 3);
        assert!(ts.contains(Point::new(5, 3)));
        assert!(!ts.contains(Point::new(6, 3)));
    }

    #[test]
    fn overlap_between_rect_cells() {
        let a = TileSet::rect(4, 4);
        let b = TileSet::rect(4, 4);
        assert_eq!(a.overlap_area_at(Point::new(0, 0), &b, Point::new(2, 2)), 4);
        assert_eq!(a.overlap_area_at(Point::new(0, 0), &b, Point::new(4, 0)), 0);
        assert_eq!(
            a.overlap_area_at(Point::new(0, 0), &b, Point::new(0, 0)),
            16
        );
    }

    #[test]
    fn overlap_with_l_shape_respects_notch() {
        // L-shape with the notch at top-right.
        let l = TileSet::new(vec![Rect::from_wh(0, 0, 4, 2), Rect::from_wh(0, 2, 2, 2)]).unwrap();
        let b = TileSet::rect(2, 2);
        // Placed in the notch: no overlap.
        assert_eq!(l.overlap_area_at(Point::new(0, 0), &b, Point::new(2, 2)), 0);
        // Placed over the lower arm: full overlap.
        assert_eq!(l.overlap_area_at(Point::new(0, 0), &b, Point::new(2, 0)), 4);
    }

    #[test]
    fn expanded_overlap() {
        let a = TileSet::rect(4, 4);
        let b = TileSet::rect(4, 4);
        // Touching cells, 1 unit of allowance each side: overlap band 2 wide.
        let e = (1, 1, 1, 1);
        assert_eq!(
            a.expanded_overlap_area_at(Point::new(0, 0), e, &b, Point::new(4, 0), e),
            2 * 6
        );
        // Far enough apart that even expanded tiles clear.
        assert_eq!(
            a.expanded_overlap_area_at(Point::new(0, 0), e, &b, Point::new(6, 0), e),
            0
        );
    }

    #[test]
    fn oriented_preserves_area() {
        let l = TileSet::new(vec![Rect::from_wh(0, 0, 6, 2), Rect::from_wh(0, 2, 2, 3)]).unwrap();
        for o in Orientation::ALL {
            let t = l.oriented(o);
            assert_eq!(t.area(), l.area(), "{o:?}");
            let (w, h) = o.apply_dims(l.width(), l.height());
            assert_eq!((t.width(), t.height()), (w, h), "{o:?}");
        }
    }

    #[test]
    fn perimeter_of_rect_and_l() {
        assert_eq!(TileSet::rect(4, 3).perimeter(), 14);
        let l = TileSet::new(vec![Rect::from_wh(0, 0, 4, 2), Rect::from_wh(0, 2, 2, 2)]).unwrap();
        // L-shape perimeter: 4+2+2+2+2+4 = 16.
        assert_eq!(l.perimeter(), 16);
    }
}
