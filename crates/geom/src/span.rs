//! One-dimensional closed integer intervals.
//!
//! Spans are the workhorse of channel definition: the common span of two
//! facing cell edges determines the extent of a critical region (paper
//! §4.1), and pin projections are positions within a span.

use core::fmt;

/// A closed interval `[lo, hi]` on the grid, with `lo <= hi`.
///
/// A span with `lo == hi` is a single grid point and has zero length.
///
/// # Examples
///
/// ```
/// use twmc_geom::Span;
///
/// let a = Span::new(0, 10);
/// let b = Span::new(4, 20);
/// assert_eq!(a.intersect(b), Some(Span::new(4, 10)));
/// assert_eq!(a.len(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Span {
    lo: i64,
    hi: i64,
}

impl Span {
    /// Creates a span from its endpoints, normalizing the order.
    #[inline]
    pub fn new(a: i64, b: i64) -> Self {
        if a <= b {
            Span { lo: a, hi: b }
        } else {
            Span { lo: b, hi: a }
        }
    }

    /// Lower endpoint.
    #[inline]
    pub const fn lo(self) -> i64 {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub const fn hi(self) -> i64 {
        self.hi
    }

    /// Length `hi - lo` (zero for a degenerate span).
    #[inline]
    pub const fn len(self) -> i64 {
        self.hi - self.lo
    }

    /// Whether the span is a single point.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.hi == self.lo
    }

    /// Midpoint, rounded toward `lo`.
    #[inline]
    pub const fn mid(self) -> i64 {
        self.lo + (self.hi - self.lo) / 2
    }

    /// Whether `v` lies in the closed interval.
    #[inline]
    pub const fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether `other` lies entirely inside `self`.
    #[inline]
    pub const fn contains_span(self, other: Span) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Intersection of two closed spans, `None` if they are disjoint.
    ///
    /// Touching spans (sharing one endpoint) intersect in a degenerate
    /// single-point span.
    #[inline]
    pub fn intersect(self, other: Span) -> Option<Span> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Span { lo, hi })
    }

    /// Length of the overlap of the *open* interiors of two spans.
    ///
    /// This is the "common span" used when deciding whether two facing
    /// edges define a critical region: touching at a point does not count.
    #[inline]
    pub fn overlap_len(self, other: Span) -> i64 {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0)
    }

    /// Smallest span covering both.
    #[inline]
    pub fn hull(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Translates the span by `d`.
    #[inline]
    pub const fn shift(self, d: i64) -> Span {
        Span {
            lo: self.lo + d,
            hi: self.hi + d,
        }
    }

    /// Grows the span by `amount` on both ends (shrinks if negative).
    ///
    /// # Panics
    ///
    /// Panics if shrinking would invert the span.
    #[inline]
    pub fn expand(self, amount: i64) -> Span {
        let lo = self.lo - amount;
        let hi = self.hi + amount;
        assert!(lo <= hi, "span inverted by expand({amount})");
        Span { lo, hi }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Subtracts a set of spans from a base span, returning the uncovered parts.
///
/// Used when extracting the exposed boundary edges of a tile set: the parts
/// of a tile edge not covered by neighbouring tiles are boundary.
///
/// The `cover` slice does not need to be sorted or disjoint. Degenerate
/// (single-point) gaps are dropped.
///
/// # Examples
///
/// ```
/// use twmc_geom::{span_difference, Span};
///
/// let gaps = span_difference(Span::new(0, 10), &[Span::new(2, 4), Span::new(6, 8)]);
/// assert_eq!(gaps, vec![Span::new(0, 2), Span::new(4, 6), Span::new(8, 10)]);
/// ```
pub fn span_difference(base: Span, cover: &[Span]) -> Vec<Span> {
    let mut clipped: Vec<Span> = cover
        .iter()
        .filter_map(|s| s.intersect(base))
        .filter(|s| !s.is_empty())
        .collect();
    clipped.sort();
    let mut out = Vec::new();
    let mut cursor = base.lo();
    for s in clipped {
        if s.lo() > cursor {
            out.push(Span::new(cursor, s.lo()));
        }
        cursor = cursor.max(s.hi());
    }
    if cursor < base.hi() {
        out.push(Span::new(cursor, base.hi()));
    }
    out
}

/// Computes the total length of the union of the given spans.
///
/// # Examples
///
/// ```
/// use twmc_geom::{span_union_len, Span};
///
/// assert_eq!(span_union_len(&[Span::new(0, 5), Span::new(3, 8)]), 8);
/// ```
pub fn span_union_len(spans: &[Span]) -> i64 {
    let mut sorted: Vec<Span> = spans.to_vec();
    sorted.sort();
    let mut total = 0;
    let mut cursor = i64::MIN;
    for s in sorted {
        let lo = s.lo().max(cursor);
        if s.hi() > lo {
            total += s.hi() - lo;
        }
        cursor = cursor.max(s.hi());
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_order() {
        assert_eq!(Span::new(5, 1), Span::new(1, 5));
    }

    #[test]
    fn intersection() {
        let a = Span::new(0, 10);
        assert_eq!(a.intersect(Span::new(5, 15)), Some(Span::new(5, 10)));
        assert_eq!(a.intersect(Span::new(10, 20)), Some(Span::new(10, 10)));
        assert_eq!(a.intersect(Span::new(11, 20)), None);
    }

    #[test]
    fn overlap_len_open_interior() {
        let a = Span::new(0, 10);
        assert_eq!(a.overlap_len(Span::new(10, 20)), 0);
        assert_eq!(a.overlap_len(Span::new(9, 20)), 1);
        assert_eq!(a.overlap_len(Span::new(-5, -1)), 0);
    }

    #[test]
    fn hull_and_contains() {
        let a = Span::new(0, 4);
        let b = Span::new(8, 9);
        assert_eq!(a.hull(b), Span::new(0, 9));
        assert!(a.hull(b).contains_span(a));
        assert!(a.contains(0) && a.contains(4) && !a.contains(5));
    }

    #[test]
    fn difference_full_cover() {
        assert!(span_difference(Span::new(0, 10), &[Span::new(-1, 11)]).is_empty());
    }

    #[test]
    fn difference_no_cover() {
        assert_eq!(
            span_difference(Span::new(0, 10), &[]),
            vec![Span::new(0, 10)]
        );
        assert_eq!(
            span_difference(Span::new(0, 10), &[Span::new(20, 30)]),
            vec![Span::new(0, 10)]
        );
    }

    #[test]
    fn difference_overlapping_cover() {
        let gaps = span_difference(
            Span::new(0, 10),
            &[Span::new(1, 5), Span::new(4, 6), Span::new(9, 12)],
        );
        assert_eq!(gaps, vec![Span::new(0, 1), Span::new(6, 9)]);
    }

    #[test]
    fn union_len() {
        assert_eq!(span_union_len(&[]), 0);
        assert_eq!(
            span_union_len(&[Span::new(0, 2), Span::new(2, 4), Span::new(1, 3)]),
            4
        );
        assert_eq!(span_union_len(&[Span::new(0, 1), Span::new(5, 7)]), 3);
    }

    #[test]
    fn shift_and_expand() {
        assert_eq!(Span::new(1, 3).shift(10), Span::new(11, 13));
        assert_eq!(Span::new(1, 3).expand(2), Span::new(-1, 5));
    }

    #[test]
    #[should_panic(expected = "span inverted")]
    fn expand_panics_on_inversion() {
        let _ = Span::new(0, 2).expand(-2);
    }
}
