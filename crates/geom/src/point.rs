//! Integer grid points and displacement vectors.
//!
//! TimberWolfMC works on the integer grid inherent in the netlist
//! specification of cell geometry and pin locations (paper §3.2.3), so all
//! coordinates are [`i64`].

use core::fmt;
use core::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A point on the layout grid.
///
/// # Examples
///
/// ```
/// use twmc_geom::Point;
///
/// let p = Point::new(3, -4);
/// assert_eq!(p + Point::new(1, 1), Point::new(4, -3));
/// assert_eq!(p.manhattan(Point::new(0, 0)), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate.
    pub x: i64,
    /// Vertical coordinate.
    pub y: i64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// This is the metric used for interconnect length throughout the
    /// package, since routing is rectilinear.
    #[inline]
    pub fn manhattan(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    #[inline]
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(2, 3);
        let b = Point::new(-1, 5);
        assert_eq!(a + b, Point::new(1, 8));
        assert_eq!(a - b, Point::new(3, -2));
        assert_eq!(-a, Point::new(-2, -3));
        let mut c = a;
        c += b;
        assert_eq!(c, Point::new(1, 8));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Point::new(0, 0).manhattan(Point::new(3, 4)), 7);
        assert_eq!(Point::new(-2, -2).manhattan(Point::new(2, 2)), 8);
        assert_eq!(Point::new(5, 5).manhattan(Point::new(5, 5)), 0);
    }

    #[test]
    fn min_max() {
        let a = Point::new(1, 7);
        let b = Point::new(4, 2);
        assert_eq!(a.min(b), Point::new(1, 2));
        assert_eq!(a.max(b), Point::new(4, 7));
    }

    #[test]
    fn display_and_from_tuple() {
        let p: Point = (3, 4).into();
        assert_eq!(format!("{p}"), "(3, 4)");
    }
}
