//! Geometry substrate for the TimberWolfMC reproduction.
//!
//! This crate provides the layout-grid geometry that the placement,
//! estimation, and routing crates build on:
//!
//! * [`Point`] / [`Span`] / [`Rect`] — integer grid primitives with the
//!   interval algebra used by channel definition;
//! * [`Orientation`] — the eight cell orientations (dihedral group D4)
//!   the paper considers for every cell;
//! * [`TileSet`] — rectilinear cell areas as unions of non-overlapping
//!   rectangular tiles, with the overlap function `O(i, j)` of the
//!   paper's eq. 8 (plain and with interconnect-allowance expansion);
//! * [`boundary_edges`] — exposed boundary extraction, feeding the
//!   per-edge interconnect-area estimate and critical-region pairing;
//! * [`decompose_rectilinear`] — vertex-loop to tile-set conversion.
//!
//! # Examples
//!
//! ```
//! use twmc_geom::{Orientation, Point, TileSet};
//!
//! let cell = TileSet::rect(10, 4);
//! let rotated = cell.oriented(Orientation::R90);
//! assert_eq!((rotated.width(), rotated.height()), (4, 10));
//! assert_eq!(
//!     cell.overlap_area_at(Point::new(0, 0), &rotated, Point::new(8, 0)),
//!     2 * 4,
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod edge;
mod orientation;
mod point;
mod polygon;
mod rect;
mod span;
mod tile;

pub use edge::{boundary_edges, BoundaryEdge, Side};
pub use orientation::Orientation;
pub use point::Point;
pub use polygon::{decompose_rectilinear, PolygonError};
pub use rect::Rect;
pub use span::{span_difference, span_union_len, Span};
pub use tile::{TileSet, TileSetError};
