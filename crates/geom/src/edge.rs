//! Boundary edge extraction for tile sets.
//!
//! The dynamic interconnect-area estimator assigns an interconnect
//! allowance to every *cell edge* (paper eq. 2), and the channel definition
//! step pairs facing cell edges into critical regions (paper §4.1). Both
//! need the exposed boundary segments of a cell's tile union.

use crate::{Span, TileSet};

/// Which way a boundary edge faces (its outward normal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Side {
    /// Vertical edge, cell interior to the right (outward normal −x).
    Left,
    /// Vertical edge, cell interior to the left (outward normal +x).
    Right,
    /// Horizontal edge, cell interior above (outward normal −y).
    Bottom,
    /// Horizontal edge, cell interior below (outward normal +y).
    Top,
}

impl Side {
    /// All four sides.
    pub const ALL: [Side; 4] = [Side::Left, Side::Right, Side::Bottom, Side::Top];

    /// Whether the edge itself runs vertically (Left/Right sides).
    #[inline]
    pub const fn is_vertical(self) -> bool {
        matches!(self, Side::Left | Side::Right)
    }

    /// The side facing the opposite way.
    #[inline]
    pub const fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
            Side::Bottom => Side::Top,
            Side::Top => Side::Bottom,
        }
    }
}

/// One maximal straight segment of a tile-set boundary.
///
/// For a vertical edge, `coord` is the x position and `span` the y extent;
/// for a horizontal edge, `coord` is y and `span` is the x extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoundaryEdge {
    /// Orientation and outward direction of the edge.
    pub side: Side,
    /// Position along the fixed axis.
    pub coord: i64,
    /// Extent along the edge.
    pub span: Span,
}

impl BoundaryEdge {
    /// Length of the edge.
    #[inline]
    pub fn len(&self) -> i64 {
        self.span.len()
    }

    /// Whether the edge is degenerate (zero length).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.span.is_empty()
    }
}

/// Extracts the exposed boundary edges of a tile set, in cell-local
/// coordinates.
///
/// A segment of a tile edge is part of the boundary exactly when the cell
/// covers one side of it but not the other. Segments are merged per
/// `(side, coord)` into maximal runs.
///
/// # Examples
///
/// ```
/// use twmc_geom::{boundary_edges, Side, TileSet};
///
/// let edges = boundary_edges(&TileSet::rect(4, 3));
/// assert_eq!(edges.len(), 4);
/// assert!(edges.iter().any(|e| e.side == Side::Top && e.coord == 3));
/// ```
pub fn boundary_edges(ts: &TileSet) -> Vec<BoundaryEdge> {
    let mut out = Vec::new();
    let tiles = ts.tiles();

    // Coverage of the vertical strip immediately left / right of x.
    let cover_x = |x: i64, right_of: bool| -> Vec<Span> {
        tiles
            .iter()
            .filter(|t| {
                if right_of {
                    t.lo().x <= x && x < t.hi().x
                } else {
                    t.lo().x < x && x <= t.hi().x
                }
            })
            .map(|t| t.y_span())
            .collect()
    };
    let cover_y = |y: i64, above: bool| -> Vec<Span> {
        tiles
            .iter()
            .filter(|t| {
                if above {
                    t.lo().y <= y && y < t.hi().y
                } else {
                    t.lo().y < y && y <= t.hi().y
                }
            })
            .map(|t| t.x_span())
            .collect()
    };

    let mut xs: Vec<i64> = tiles.iter().flat_map(|t| [t.lo().x, t.hi().x]).collect();
    xs.sort_unstable();
    xs.dedup();
    for x in xs {
        let left_cover = cover_x(x, false);
        let right_cover = cover_x(x, true);
        // Right-facing boundary at x: covered on the left, empty on the right.
        for base in &left_cover {
            for gap in crate::span_difference(*base, &right_cover) {
                out.push(BoundaryEdge {
                    side: Side::Right,
                    coord: x,
                    span: gap,
                });
            }
        }
        // Left-facing boundary at x: covered on the right, empty on the left.
        for base in &right_cover {
            for gap in crate::span_difference(*base, &left_cover) {
                out.push(BoundaryEdge {
                    side: Side::Left,
                    coord: x,
                    span: gap,
                });
            }
        }
    }

    let mut ys: Vec<i64> = tiles.iter().flat_map(|t| [t.lo().y, t.hi().y]).collect();
    ys.sort_unstable();
    ys.dedup();
    for y in ys {
        let below_cover = cover_y(y, false);
        let above_cover = cover_y(y, true);
        for base in &below_cover {
            for gap in crate::span_difference(*base, &above_cover) {
                out.push(BoundaryEdge {
                    side: Side::Top,
                    coord: y,
                    span: gap,
                });
            }
        }
        for base in &above_cover {
            for gap in crate::span_difference(*base, &below_cover) {
                out.push(BoundaryEdge {
                    side: Side::Bottom,
                    coord: y,
                    span: gap,
                });
            }
        }
    }

    merge_edges(out)
}

/// Merges collinear touching edges of the same side into maximal runs.
fn merge_edges(mut edges: Vec<BoundaryEdge>) -> Vec<BoundaryEdge> {
    edges.sort_by_key(|e| (e.side as u8, e.coord, e.span.lo(), e.span.hi()));
    let mut out: Vec<BoundaryEdge> = Vec::with_capacity(edges.len());
    for e in edges {
        if e.is_empty() {
            continue;
        }
        if let Some(last) = out.last_mut() {
            if last.side == e.side && last.coord == e.coord && last.span.hi() >= e.span.lo() {
                last.span = last.span.hull(e.span);
                continue;
            }
        }
        out.push(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    fn find(edges: &[BoundaryEdge], side: Side) -> Vec<BoundaryEdge> {
        edges.iter().copied().filter(|e| e.side == side).collect()
    }

    #[test]
    fn rectangle_has_four_edges() {
        let edges = boundary_edges(&TileSet::rect(4, 3));
        assert_eq!(edges.len(), 4);
        assert_eq!(
            find(&edges, Side::Left),
            vec![BoundaryEdge {
                side: Side::Left,
                coord: 0,
                span: Span::new(0, 3)
            }]
        );
        assert_eq!(
            find(&edges, Side::Right),
            vec![BoundaryEdge {
                side: Side::Right,
                coord: 4,
                span: Span::new(0, 3)
            }]
        );
        assert_eq!(
            find(&edges, Side::Bottom),
            vec![BoundaryEdge {
                side: Side::Bottom,
                coord: 0,
                span: Span::new(0, 4)
            }]
        );
        assert_eq!(
            find(&edges, Side::Top),
            vec![BoundaryEdge {
                side: Side::Top,
                coord: 3,
                span: Span::new(0, 4)
            }]
        );
    }

    #[test]
    fn split_rectangle_merges_interior() {
        // Two tiles forming a single 4x2 rectangle: the shared edge at x=2
        // must not appear.
        let ts = TileSet::new(vec![Rect::from_wh(0, 0, 2, 2), Rect::from_wh(2, 0, 2, 2)]).unwrap();
        let edges = boundary_edges(&ts);
        assert_eq!(edges.len(), 4, "{edges:?}");
        assert!(edges.iter().all(|e| e.coord != 2 || !e.side.is_vertical()));
        // Top edge is merged into one run of length 4.
        let top = find(&edges, Side::Top);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].span, Span::new(0, 4));
    }

    #[test]
    fn l_shape_has_six_edges() {
        // L-shape: lower arm 4x2, upper arm 2x2 (notch at top-right).
        let ts = TileSet::new(vec![Rect::from_wh(0, 0, 4, 2), Rect::from_wh(0, 2, 2, 2)]).unwrap();
        let edges = boundary_edges(&ts);
        assert_eq!(edges.len(), 6, "{edges:?}");
        // The notch contributes a right edge at x=2 spanning y in [2,4]...
        assert!(edges.contains(&BoundaryEdge {
            side: Side::Right,
            coord: 2,
            span: Span::new(2, 4)
        }));
        // ...and a top edge at y=2 spanning x in [2,4].
        assert!(edges.contains(&BoundaryEdge {
            side: Side::Top,
            coord: 2,
            span: Span::new(2, 4)
        }));
        // The left edge merges across both arms.
        assert!(edges.contains(&BoundaryEdge {
            side: Side::Left,
            coord: 0,
            span: Span::new(0, 4)
        }));
        // Total length = perimeter.
        let perim: i64 = edges.iter().map(|e| e.len()).sum();
        assert_eq!(perim, 16);
    }

    #[test]
    fn u_shape_boundary() {
        // U-shape: two vertical arms joined by a base.
        let ts = TileSet::new(vec![
            Rect::from_wh(0, 0, 6, 2),
            Rect::from_wh(0, 2, 2, 3),
            Rect::from_wh(4, 2, 2, 3),
        ])
        .unwrap();
        let edges = boundary_edges(&ts);
        let perim: i64 = edges.iter().map(|e| e.len()).sum();
        // Outer: 6+5+2+2+5 on the hull walk plus the notch 3+2+3 = 28.
        assert_eq!(perim, 28, "{edges:?}");
        // Inside of the U: a left-facing edge at x=4 and right-facing at x=2.
        assert!(edges.contains(&BoundaryEdge {
            side: Side::Left,
            coord: 4,
            span: Span::new(2, 5)
        }));
        assert!(edges.contains(&BoundaryEdge {
            side: Side::Right,
            coord: 2,
            span: Span::new(2, 5)
        }));
    }

    #[test]
    fn edge_lengths_balance_per_axis() {
        // For any closed rectilinear boundary, total left length equals
        // total right length, and total top equals total bottom.
        let ts = TileSet::new(vec![
            Rect::from_wh(0, 0, 6, 2),
            Rect::from_wh(2, 2, 2, 2),
            Rect::from_wh(0, 4, 6, 1),
        ])
        .unwrap();
        let edges = boundary_edges(&ts);
        let total =
            |s: Side| -> i64 { edges.iter().filter(|e| e.side == s).map(|e| e.len()).sum() };
        assert_eq!(total(Side::Left), total(Side::Right));
        assert_eq!(total(Side::Top), total(Side::Bottom));
    }
}
