//! Property-based tests of the cooling schedules and the range limiter.

use proptest::prelude::*;

use twmc_anneal::{t_infinity, temperature_scale, CoolingSchedule, RangeLimiter, MIN_WINDOW_SPAN};

proptest! {
    #[test]
    fn cooling_is_strictly_decreasing_and_positive(
        t0 in 1.0f64..1.0e7,
        s_t in 0.01f64..100.0,
        steps in 1usize..200,
    ) {
        for schedule in [CoolingSchedule::stage1(), CoolingSchedule::stage2()] {
            let mut t = t0;
            for _ in 0..steps {
                let next = schedule.next(t, s_t);
                prop_assert!(next < t);
                prop_assert!(next > 0.0);
                // Alpha bounds from the tables.
                let a = next / t;
                prop_assert!((0.69..=0.93).contains(&a), "alpha {a}");
                t = next;
            }
        }
    }

    #[test]
    fn alpha_is_scale_covariant(t in 1.0f64..1.0e6, s_t in 0.01f64..100.0) {
        // alpha(T, S_T) depends only on T / S_T (eq. 19's normalization).
        let s = CoolingSchedule::stage1();
        prop_assert_eq!(s.alpha(t, s_t), s.alpha(t / s_t, 1.0));
    }

    #[test]
    fn window_shrinks_monotonically(
        w in 10.0f64..1.0e5,
        rho in 1.0f64..10.0,
        decades in 1usize..8,
    ) {
        let t_inf = 1.0e5;
        let rl = RangeLimiter::new(w, w, t_inf, rho);
        let mut last = rl.window_x(t_inf);
        prop_assert!((last - w.max(MIN_WINDOW_SPAN)).abs() < 1e-6);
        let mut t = t_inf;
        for _ in 0..decades * 4 {
            t *= 0.56; // ~4 steps per decade
            let wx = rl.window_x(t);
            prop_assert!(wx <= last + 1e-9);
            prop_assert!(wx >= MIN_WINDOW_SPAN);
            last = wx;
        }
    }

    #[test]
    fn window_never_exceeds_full_span(
        w in 10.0f64..1.0e5,
        rho in 1.0f64..10.0,
        t in 1.0e-3f64..1.0e9,
    ) {
        let rl = RangeLimiter::new(w, w, 1.0e5, rho);
        // Even above T_inf the fraction clamps at 1.
        prop_assert!(rl.window_x(t) <= w.max(MIN_WINDOW_SPAN) + 1e-9);
    }

    #[test]
    fn fraction_inverse_roundtrip(mu in 0.001f64..1.0, rho in 1.1f64..10.0) {
        // temperature_for_fraction is the inverse of fraction (eq. 28).
        let rl = RangeLimiter::new(1.0e4, 1.0e4, 1.0e5, rho);
        let t = rl.temperature_for_fraction(mu);
        prop_assert!((rl.fraction(t) - mu).abs() < 1e-6, "{} vs {mu}", rl.fraction(t));
    }

    #[test]
    fn temperature_scale_is_linear(a in 1.0f64..1.0e8, k in 0.1f64..10.0) {
        let s1 = temperature_scale(a);
        let s2 = temperature_scale(k * a);
        prop_assert!((s2 / s1 - k).abs() < 1e-9);
        prop_assert!((t_infinity(s1) / s1 - 1.0e5).abs() < 1e-6);
    }

    #[test]
    fn steps_between_is_monotone_in_floor(
        floor_hi in 1.0f64..100.0,
        ratio in 1.5f64..100.0,
    ) {
        let s = CoolingSchedule::stage1();
        let hi = s.steps_between(1.0e5, floor_hi, 1.0);
        let lo = s.steps_between(1.0e5, floor_hi / ratio, 1.0);
        prop_assert!(lo >= hi);
    }
}
