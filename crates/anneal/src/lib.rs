//! Generic simulated-annealing engine for the TimberWolfMC reproduction.
//!
//! Provides the problem-independent pieces of the paper's annealing
//! machinery:
//!
//! * [`CoolingSchedule`] — the experimentally derived `α(T_old)` tables
//!   (Tables 1 and 2) with `S_T` temperature scaling (eqs. 18–21);
//! * [`RangeLimiter`] — the log-T window control of eqs. 12–14 with the
//!   paper's ρ = 4;
//! * [`anneal`] / [`AnnealState`] — the Metropolis loop with the
//!   inner-loop criterion `A = A_c · N_c` (eq. 17) and the paper's two
//!   stopping criteria.
//!
//! # Examples
//!
//! ```
//! use twmc_anneal::{CoolingSchedule, RangeLimiter, temperature_scale, t_infinity};
//!
//! let s_t = temperature_scale(2.0e4); // circuit with c̄_a = 2·10⁴
//! let t_inf = t_infinity(s_t);
//! assert_eq!(t_inf, 2.0e5);
//! let schedule = CoolingSchedule::stage1();
//! assert_eq!(schedule.alpha(t_inf, s_t), 0.85);
//! let limiter = RangeLimiter::paper(1000.0, 1000.0, t_inf);
//! assert!(limiter.window_x(t_inf / 1000.0) < 1000.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod parallel;
mod range_limiter;
mod schedule;

pub use engine::{
    anneal, anneal_inner_loop, anneal_with, AnnealConfig, AnnealContext, AnnealState, AnnealStats,
    StoppingCriterion, TemperatureStats,
};
pub use parallel::{
    adapt_gap, cool_ladder, derive_seed, initial_gaps, ladder_landed, swap_probability,
    temperature_rungs, GAP_ETA, GAP_INIT, GAP_MAX, GAP_MIN, SWAP_HOT_SCALED_T, SWAP_TARGET,
};
pub use range_limiter::{RangeLimiter, DEFAULT_RHO, MIN_WINDOW_SPAN};
pub use schedule::{
    t_infinity, temperature_scale, CoolingSchedule, REF_AVG_CELL_AREA, REF_T_INFINITY,
};
