//! Problem-independent support for multi-replica annealing.
//!
//! TimberWolf's annealing is embarrassingly restartable: independent
//! replicas with distinct RNG streams explore distinct basins, and the
//! paper's quality/CPU trade (§3.3) extends naturally to "run N replicas,
//! keep the best". This module provides the shared machinery:
//!
//! * [`derive_seed`] — deterministic per-replica seed streams from one
//!   master seed (replica 0 reproduces the single-run stream exactly);
//! * [`temperature_rungs`] — fixed temperature rungs sampled from a
//!   cooling-schedule trajectory, for externally driven (parallel
//!   tempering) execution where the orchestrator, not the engine, owns
//!   the temperature;
//! * [`swap_probability`] — the Metropolis replica-exchange rule between
//!   adjacent rungs;
//! * [`initial_gaps`] / [`adapt_gap`] / [`cool_ladder`] — the adaptive
//!   ladder: per-pair gap ratios steered toward the
//!   [`SWAP_TARGET`] acceptance rate by stochastic approximation, with
//!   the coldest rung anchored to the cooling schedule and the hotter
//!   rungs fanned out above it.

use crate::CoolingSchedule;

/// Derives the RNG seed for replica `replica` from a master seed.
///
/// Replica 0 gets the master seed itself, so a single-replica run is
/// bit-identical to a plain (non-orchestrated) run with the same seed.
/// Higher replicas get SplitMix64-mixed streams: statistically
/// independent, deterministic, and platform-stable.
pub fn derive_seed(master: u64, replica: usize) -> u64 {
    if replica == 0 {
        return master;
    }
    // SplitMix64 finalizer over master ⊕ (replica · golden-ratio odd
    // constant); the full-avalanche mix keeps neighbouring replica
    // indices uncorrelated.
    let mut z = master ^ (replica as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Samples `count` fixed temperature rungs from the trajectory of a
/// cooling schedule, descending from `t_start` to the first temperature
/// `≤ t_floor` (inclusive).
///
/// Rung 0 is the hottest (`t_start`), rung `count - 1` the coldest; the
/// rungs are evenly spaced over the *trajectory index*, so the spacing in
/// temperature follows the schedule's own α(T) profile — dense where the
/// schedule cools slowly (the paper's middle regime), sparse where it
/// cools fast. With `count == 1` only the coldest point is returned.
///
/// # Panics
///
/// Panics if `count` is zero or `t_floor >= t_start`.
pub fn temperature_rungs(
    schedule: &CoolingSchedule,
    t_start: f64,
    s_t: f64,
    t_floor: f64,
    count: usize,
) -> Vec<f64> {
    assert!(count > 0, "need at least one rung");
    assert!(
        t_floor < t_start && t_floor > 0.0,
        "floor {t_floor} must be in (0, {t_start})"
    );
    let mut trajectory = vec![t_start];
    let mut t = t_start;
    while t > t_floor && trajectory.len() < 100_000 {
        t = schedule.next(t, s_t);
        trajectory.push(t);
    }
    let last = trajectory.len() - 1;
    if count == 1 {
        return vec![trajectory[last]];
    }
    (0..count)
        .map(|r| trajectory[r * last / (count - 1)])
        .collect()
}

/// Metropolis acceptance probability for exchanging the configurations of
/// two replicas pinned at temperatures `t_hot > t_cold` with energies
/// `e_hot` and `e_cold`.
///
/// `p = min(1, exp((β_cold − β_hot)(E_cold − E_hot)))` — the detailed-
/// balance-preserving rule of parallel tempering: the swap is free when
/// the cold rung holds the higher energy (the exchange moves the better
/// configuration to the colder rung), and exponentially suppressed
/// otherwise.
pub fn swap_probability(t_hot: f64, t_cold: f64, e_hot: f64, e_cold: f64) -> f64 {
    debug_assert!(t_hot >= t_cold && t_cold > 0.0);
    let d_beta = 1.0 / t_cold - 1.0 / t_hot;
    (d_beta * (e_cold - e_hot)).exp().min(1.0)
}

/// Swap-acceptance rate the adaptive ladder steers every adjacent pair
/// toward — the midpoint of the 20–40% band the run-health checks treat
/// as healthy replica exchange.
pub const SWAP_TARGET: f64 = 0.30;

/// Scaled temperature (`T / S_T`) at or above which the Metropolis
/// exchange rule accepts nearly everything regardless of rung spacing
/// (the first Table-1 breakpoint, where annealing itself still accepts
/// freely). Attempts whose *colder* rung is in this regime accept
/// almost surely; the adaptive controller counts them anyway — the
/// free accepts deliberately widen the young ladder's gaps toward
/// their cold-regime equilibrium — so the run-health band check judges
/// them too, and reports the per-pair hot count alongside the verdict
/// so a rate propped up purely by free exchanges stays visible.
pub const SWAP_HOT_SCALED_T: f64 = 7000.0;

/// Per-attempt adaptation gain of [`adapt_gap`]. Large enough that a
/// pair converges within the ~dozens of sweeps a Table-1 trajectory
/// affords, small enough that a single accept/reject cannot fling the
/// gap across its whole range.
pub const GAP_ETA: f64 = 0.25;

/// Smallest allowed pair gap ratio `T_hot / T_cold` (must stay `> 1` so
/// the ladder keeps a strict temperature order).
pub const GAP_MIN: f64 = 1.02;

/// Largest allowed pair gap ratio — caps how far a pair can drift apart
/// while both rungs sit in the hot always-accept regime.
pub const GAP_MAX: f64 = 6.0;

/// Starting pair gap ratio before any adaptation.
pub const GAP_INIT: f64 = 1.5;

/// Initial per-pair gap ratios for a `count`-rung ladder (`count - 1`
/// adjacent pairs, all starting at [`GAP_INIT`]).
pub fn initial_gaps(count: usize) -> Vec<f64> {
    vec![GAP_INIT; count.saturating_sub(1)]
}

/// One stochastic-approximation update of a pair's gap ratio after a
/// swap attempt: multiplicative step `gap · exp(η·(a − target))` with
/// `a ∈ {0, 1}`, clamped to `[GAP_MIN, GAP_MAX]`.
///
/// The fixed point is exactly the target rate: in steady state
/// `E[log update] = 0` forces `a·(1 − target) = (1 − a)·target`, i.e.
/// an acceptance rate of [`SWAP_TARGET`]. Accepting widens the gap
/// (swaps too easy → rungs too close), rejecting narrows it.
pub fn adapt_gap(gap: f64, accepted: bool) -> f64 {
    let a = if accepted { 1.0 } else { 0.0 };
    (gap * (GAP_ETA * (a - SWAP_TARGET)).exp()).clamp(GAP_MIN, GAP_MAX)
}

/// Advances an adaptive ladder one cooling step with *staggered full
/// descents*: the coldest rung (the anchor, `temps[n-1]`) takes one
/// schedule step floored at `t_floor`; every hotter rung waits at its
/// starting temperature until its colder neighbour has descended a full
/// gap ratio below it, then anneals down at its **own** schedule pace
/// `α(T)` — so every rung spends the Table-1 dwell in its own critical
/// region instead of sprinting through it at a scaled copy of the
/// anchor's profile. Once the neighbour lands on the floor the rung
/// simply finishes its own schedule; the ensemble ends with `n`
/// completed anneals, cold end first, not one anchor plus `n − 1`
/// truncated ones.
///
/// Mid-flight the per-pair gap keeps steering: a rung whose ratio to
/// its neighbour has narrowed below `gaps[i]` pauses (dwells) until the
/// neighbour pulls away again, and one whose ratio is still wide after
/// its step takes a second catch-up step — so the pair breathes around
/// the adapted ratio and swap-rate targeting stays live for the whole
/// descent.
///
/// Two invariants hold by construction: no rung ever re-heats
/// (`temps[i]` is non-increasing round over round — required by the
/// telemetry validator's monotonicity rule), and the ladder stays
/// ordered hottest-first (`temps[i] ≥ temps[i+1]`, so
/// [`swap_probability`]'s precondition always holds).
pub fn cool_ladder(
    schedule: &CoolingSchedule,
    temps: &mut [f64],
    gaps: &[f64],
    s_t: f64,
    t_floor: f64,
) {
    let n = temps.len();
    assert!(n >= 1, "need at least one rung");
    assert_eq!(gaps.len(), n - 1, "need one gap per adjacent pair");
    let anchor = temps[n - 1];
    temps[n - 1] = schedule.next(anchor, s_t).max(t_floor).min(anchor);
    for i in (0..n - 1).rev() {
        let t = temps[i];
        let below = temps[i + 1];
        if below > t_floor && t < below * gaps[i] {
            // Too close to the neighbour (or still waiting for the fan
            // to open): dwell here until the neighbour pulls a full gap
            // ahead.
            continue;
        }
        let mut stepped = schedule.next(t, s_t).max(t_floor);
        if below > t_floor && stepped > below * gaps[i] {
            // Still wide after one step: one catch-up step closes in.
            stepped = schedule.next(stepped, s_t).max(t_floor);
        }
        temps[i] = stepped.max(below).min(t);
    }
}

/// True once every rung of the ladder has landed on the floor — the
/// natural termination point of a staggered-descent tempering run.
pub fn ladder_landed(temps: &[f64], t_floor: f64) -> bool {
    temps.iter().all(|&t| t <= t_floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_zero_is_identity() {
        for master in [0u64, 1, 42, u64::MAX] {
            assert_eq!(derive_seed(master, 0), master);
        }
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for replica in 0..64 {
            assert!(
                seen.insert(derive_seed(42, replica)),
                "collision at {replica}"
            );
        }
        // And different masters give different streams.
        assert_ne!(derive_seed(1, 3), derive_seed(2, 3));
    }

    #[test]
    fn derived_seeds_are_stable() {
        // Pinned values: the derivation is part of the reproducibility
        // contract (a changed constant silently changes every replica).
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), 42);
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
    }

    #[test]
    fn rungs_span_the_trajectory() {
        let s = CoolingSchedule::stage1();
        let rungs = temperature_rungs(&s, 1.0e5, 1.0, 1.0, 5);
        assert_eq!(rungs.len(), 5);
        assert_eq!(rungs[0], 1.0e5);
        assert!(rungs[4] <= 1.0);
        for pair in rungs.windows(2) {
            assert!(pair[0] > pair[1], "{rungs:?}");
        }
    }

    #[test]
    fn single_rung_is_coldest() {
        let s = CoolingSchedule::geometric(0.5);
        let rungs = temperature_rungs(&s, 100.0, 1.0, 1.0, 1);
        assert_eq!(rungs.len(), 1);
        assert!(rungs[0] <= 1.0);
    }

    #[test]
    fn gap_adaptation_converges_to_the_target_rate() {
        // Accepting widens, rejecting narrows, and both stay clamped.
        assert!(adapt_gap(GAP_INIT, true) > GAP_INIT);
        assert!(adapt_gap(GAP_INIT, false) < GAP_INIT);
        assert_eq!(adapt_gap(GAP_MAX, true), GAP_MAX);
        assert_eq!(adapt_gap(GAP_MIN, false), GAP_MIN);
        // The multiplicative rule's fixed point: at the target rate the
        // expected log-step is zero, so a long accept/reject sequence at
        // exactly 30% acceptance leaves the gap where it started.
        let mut gap = 2.0;
        for i in 0..1000 {
            gap = adapt_gap(gap, i % 10 < 3);
        }
        assert!((gap - 2.0).abs() / 2.0 < 0.05, "{gap}");
    }

    #[test]
    fn ladder_cools_without_reheating_and_stays_ordered() {
        let s = CoolingSchedule::stage1();
        let mut temps = vec![1.0e5; 4];
        let gaps = initial_gaps(4);
        let mut prev = temps.clone();
        let mut release = [usize::MAX; 4];
        for round in 0..400 {
            cool_ladder(&s, &mut temps, &gaps, 1.0, 5.0);
            for i in 0..4 {
                assert!(temps[i] <= prev[i], "rung {i} reheated");
                if temps[i] < 1.0e5 && release[i] == usize::MAX {
                    release[i] = round;
                }
            }
            for pair in temps.windows(2) {
                assert!(pair[0] >= pair[1], "{temps:?}");
            }
            prev = temps.clone();
            if ladder_landed(&temps, 5.0) {
                break;
            }
        }
        // The fan opens from the cold end: the anchor moves first, and
        // each hotter rung leaves T∞ strictly after its colder
        // neighbour has pulled a full gap ratio ahead.
        assert_eq!(release[3], 0, "{release:?}");
        for pair in release.windows(2) {
            assert!(pair[0] > pair[1], "{release:?}");
        }
        // Staggered full descents: every rung eventually lands on the
        // floor, not just the anchor.
        assert!(ladder_landed(&temps, 5.0), "{temps:?}");
        assert_eq!(temps[3], 5.0);
        assert_eq!(temps[0], 5.0);
    }

    #[test]
    fn ladder_lands_cold_end_first() {
        let s = CoolingSchedule::stage1();
        let mut temps = vec![1.0e5; 4];
        let gaps = initial_gaps(4);
        let mut landing_round = [usize::MAX; 4];
        for round in 0..400 {
            cool_ladder(&s, &mut temps, &gaps, 1.0, 5.0);
            for i in 0..4 {
                if temps[i] <= 5.0 && landing_round[i] == usize::MAX {
                    landing_round[i] = round;
                }
            }
            if ladder_landed(&temps, 5.0) {
                break;
            }
        }
        assert!(landing_round.iter().all(|&r| r != usize::MAX), "{temps:?}");
        for pair in landing_round.windows(2) {
            assert!(pair[0] >= pair[1], "{landing_round:?}");
        }
        // The stagger is real: the hottest rung lands strictly later
        // than the anchor.
        assert!(landing_round[0] > landing_round[3], "{landing_round:?}");
    }

    #[test]
    fn initial_gaps_match_the_pair_count() {
        assert!(initial_gaps(1).is_empty());
        assert_eq!(initial_gaps(5).len(), 4);
        assert!(initial_gaps(5).iter().all(|&g| g == GAP_INIT));
    }

    #[test]
    fn swap_rule_is_metropolis() {
        // Cold rung holds the worse configuration: always swap.
        assert_eq!(swap_probability(100.0, 10.0, 5.0, 50.0), 1.0);
        // Cold rung already holds the better configuration: suppressed.
        let p = swap_probability(100.0, 10.0, 50.0, 5.0);
        assert!(p < 1.0 && p > 0.0, "{p}");
        // Equal energies: free swap.
        assert_eq!(swap_probability(100.0, 10.0, 7.0, 7.0), 1.0);
        // Exact value: exp((1/10 - 1/100) * (5 - 50)) = exp(-4.05).
        assert!((p - (-4.05f64).exp()).abs() < 1e-12);
    }
}
