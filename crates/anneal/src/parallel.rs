//! Problem-independent support for multi-replica annealing.
//!
//! TimberWolf's annealing is embarrassingly restartable: independent
//! replicas with distinct RNG streams explore distinct basins, and the
//! paper's quality/CPU trade (§3.3) extends naturally to "run N replicas,
//! keep the best". This module provides the shared machinery:
//!
//! * [`derive_seed`] — deterministic per-replica seed streams from one
//!   master seed (replica 0 reproduces the single-run stream exactly);
//! * [`temperature_rungs`] — fixed temperature rungs sampled from a
//!   cooling-schedule trajectory, for externally driven (parallel
//!   tempering) execution where the orchestrator, not the engine, owns
//!   the temperature;
//! * [`swap_probability`] — the Metropolis replica-exchange rule between
//!   adjacent rungs.

use crate::CoolingSchedule;

/// Derives the RNG seed for replica `replica` from a master seed.
///
/// Replica 0 gets the master seed itself, so a single-replica run is
/// bit-identical to a plain (non-orchestrated) run with the same seed.
/// Higher replicas get SplitMix64-mixed streams: statistically
/// independent, deterministic, and platform-stable.
pub fn derive_seed(master: u64, replica: usize) -> u64 {
    if replica == 0 {
        return master;
    }
    // SplitMix64 finalizer over master ⊕ (replica · golden-ratio odd
    // constant); the full-avalanche mix keeps neighbouring replica
    // indices uncorrelated.
    let mut z = master ^ (replica as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Samples `count` fixed temperature rungs from the trajectory of a
/// cooling schedule, descending from `t_start` to the first temperature
/// `≤ t_floor` (inclusive).
///
/// Rung 0 is the hottest (`t_start`), rung `count - 1` the coldest; the
/// rungs are evenly spaced over the *trajectory index*, so the spacing in
/// temperature follows the schedule's own α(T) profile — dense where the
/// schedule cools slowly (the paper's middle regime), sparse where it
/// cools fast. With `count == 1` only the coldest point is returned.
///
/// # Panics
///
/// Panics if `count` is zero or `t_floor >= t_start`.
pub fn temperature_rungs(
    schedule: &CoolingSchedule,
    t_start: f64,
    s_t: f64,
    t_floor: f64,
    count: usize,
) -> Vec<f64> {
    assert!(count > 0, "need at least one rung");
    assert!(
        t_floor < t_start && t_floor > 0.0,
        "floor {t_floor} must be in (0, {t_start})"
    );
    let mut trajectory = vec![t_start];
    let mut t = t_start;
    while t > t_floor && trajectory.len() < 100_000 {
        t = schedule.next(t, s_t);
        trajectory.push(t);
    }
    let last = trajectory.len() - 1;
    if count == 1 {
        return vec![trajectory[last]];
    }
    (0..count)
        .map(|r| trajectory[r * last / (count - 1)])
        .collect()
}

/// Metropolis acceptance probability for exchanging the configurations of
/// two replicas pinned at temperatures `t_hot > t_cold` with energies
/// `e_hot` and `e_cold`.
///
/// `p = min(1, exp((β_cold − β_hot)(E_cold − E_hot)))` — the detailed-
/// balance-preserving rule of parallel tempering: the swap is free when
/// the cold rung holds the higher energy (the exchange moves the better
/// configuration to the colder rung), and exponentially suppressed
/// otherwise.
pub fn swap_probability(t_hot: f64, t_cold: f64, e_hot: f64, e_cold: f64) -> f64 {
    debug_assert!(t_hot >= t_cold && t_cold > 0.0);
    let d_beta = 1.0 / t_cold - 1.0 / t_hot;
    (d_beta * (e_cold - e_hot)).exp().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_zero_is_identity() {
        for master in [0u64, 1, 42, u64::MAX] {
            assert_eq!(derive_seed(master, 0), master);
        }
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for replica in 0..64 {
            assert!(
                seen.insert(derive_seed(42, replica)),
                "collision at {replica}"
            );
        }
        // And different masters give different streams.
        assert_ne!(derive_seed(1, 3), derive_seed(2, 3));
    }

    #[test]
    fn derived_seeds_are_stable() {
        // Pinned values: the derivation is part of the reproducibility
        // contract (a changed constant silently changes every replica).
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), 42);
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
    }

    #[test]
    fn rungs_span_the_trajectory() {
        let s = CoolingSchedule::stage1();
        let rungs = temperature_rungs(&s, 1.0e5, 1.0, 1.0, 5);
        assert_eq!(rungs.len(), 5);
        assert_eq!(rungs[0], 1.0e5);
        assert!(rungs[4] <= 1.0);
        for pair in rungs.windows(2) {
            assert!(pair[0] > pair[1], "{rungs:?}");
        }
    }

    #[test]
    fn single_rung_is_coldest() {
        let s = CoolingSchedule::geometric(0.5);
        let rungs = temperature_rungs(&s, 100.0, 1.0, 1.0, 1);
        assert_eq!(rungs.len(), 1);
        assert!(rungs[0] <= 1.0);
    }

    #[test]
    fn swap_rule_is_metropolis() {
        // Cold rung holds the worse configuration: always swap.
        assert_eq!(swap_probability(100.0, 10.0, 5.0, 50.0), 1.0);
        // Cold rung already holds the better configuration: suppressed.
        let p = swap_probability(100.0, 10.0, 50.0, 5.0);
        assert!(p < 1.0 && p > 0.0, "{p}");
        // Equal energies: free swap.
        assert_eq!(swap_probability(100.0, 10.0, 7.0, 7.0), 1.0);
        // Exact value: exp((1/10 - 1/100) * (5 - 50)) = exp(-4.05).
        assert!((p - (-4.05f64).exp()).abs() < 1e-12);
    }
}
