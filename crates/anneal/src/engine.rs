//! The generic Metropolis annealing engine.
//!
//! The algorithm is characterized by (1) the `generate` function, (2) the
//! acceptance function, (3) the updating function, (4) the inner-loop
//! criterion, and (5) the stopping criterion (paper §2.1). This module
//! provides the loop; problem-specific state (placement, pin assignment,
//! …) plugs in through [`AnnealState`].

use rand::rngs::StdRng;
use rand::Rng;

use twmc_obs::{AnnealTemp, Event, NullRecorder, Recorder};

use crate::{CoolingSchedule, RangeLimiter};

/// Per-temperature context handed to the state on every proposal.
#[derive(Debug, Clone, Copy)]
pub struct AnnealContext {
    /// Current temperature `T`.
    pub temperature: f64,
    /// Horizontal range-limiter window span `W_x(T)` (eq. 12).
    pub window_x: f64,
    /// Vertical range-limiter window span `W_y(T)` (eq. 13).
    pub window_y: f64,
    /// Temperature step index (0-based).
    pub step: usize,
    /// Temperature scale factor `S_T`.
    pub s_t: f64,
}

/// A problem that can be annealed.
///
/// Implementations keep their own pending-move bookkeeping: a successful
/// [`AnnealState::propose`] leaves exactly one move pending, which the
/// engine then either [`AnnealState::commit`]s or [`AnnealState::abandon`]s.
pub trait AnnealState {
    /// Generates one candidate move and returns its cost change `ΔC`, or
    /// `None` if no move could be generated this iteration.
    fn propose(&mut self, ctx: &AnnealContext, rng: &mut StdRng) -> Option<f64>;

    /// Applies the pending move.
    fn commit(&mut self);

    /// Discards the pending move.
    fn abandon(&mut self);

    /// Current total cost (used for stopping criteria and statistics).
    fn cost(&self) -> f64;

    /// Energy used in replica-exchange (parallel tempering) swap tests.
    ///
    /// Defaults to [`AnnealState::cost`]. Override when the annealing
    /// cost contains temperature- or replica-dependent terms that must
    /// not enter the exchange Metropolis rule.
    fn swap_energy(&self) -> f64 {
        self.cost()
    }

    /// Hook invoked at the start of every inner loop (each temperature).
    fn begin_temperature(&mut self, _ctx: &AnnealContext) {}
}

/// When to stop the outer loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoppingCriterion {
    /// Stop after an inner loop performed with the range-limiter window at
    /// its minimum span (stage 1 and the first refinement steps).
    WindowAtMinimum,
    /// Stop once the cost is unchanged for this many consecutive inner
    /// loops (the paper's final refinement step uses 3).
    CostUnchanged {
        /// Number of consecutive unchanged inner loops required.
        inner_loops: usize,
    },
}

/// Configuration of one annealing run.
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// Cooling schedule (Tables 1/2 or geometric).
    pub schedule: CoolingSchedule,
    /// Temperature scale `S_T` (eq. 20).
    pub s_t: f64,
    /// Starting temperature.
    pub t_start: f64,
    /// Hard floor; the run stops if `T` falls below it regardless of the
    /// stopping criterion (safety net, default 1e-6 · S_T is sensible).
    pub t_floor: f64,
    /// Attempts per item per temperature (`A_c`; eq. 17 multiplies by the
    /// item count).
    pub attempts_per_item: usize,
    /// Item count `N_c` (cells for placement).
    pub items: usize,
    /// Range limiter controlling window spans.
    pub limiter: RangeLimiter,
    /// Stopping criterion.
    pub stop: StoppingCriterion,
}

impl AnnealConfig {
    /// Number of inner-loop iterations per temperature, `A = A_c · N_c`
    /// (eq. 17).
    pub fn inner_iterations(&self) -> usize {
        self.attempts_per_item * self.items.max(1)
    }
}

/// Statistics for one temperature step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureStats {
    /// The temperature of this inner loop.
    pub temperature: f64,
    /// New-state attempts made.
    pub attempts: usize,
    /// Attempts accepted.
    pub accepts: usize,
    /// Cost after the inner loop.
    pub cost_after: f64,
    /// Window span `W_x(T)` during the loop.
    pub window_x: f64,
}

impl TemperatureStats {
    /// Fraction of attempts accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.accepts as f64 / self.attempts as f64
        }
    }
}

/// Aggregate statistics of an annealing run.
#[derive(Debug, Clone, Default)]
pub struct AnnealStats {
    /// Per-temperature records, in execution order.
    pub steps: Vec<TemperatureStats>,
    /// Total attempts across all temperatures.
    pub total_attempts: usize,
    /// Total acceptances.
    pub total_accepts: usize,
    /// Cost at the end of the run.
    pub final_cost: f64,
}

impl AnnealStats {
    /// Overall acceptance rate.
    pub fn acceptance_rate(&self) -> f64 {
        if self.total_attempts == 0 {
            0.0
        } else {
            self.total_accepts as f64 / self.total_attempts as f64
        }
    }
}

/// Hard cap on temperature steps, far above the ≈120 of a paper run.
const MAX_TEMPERATURE_STEPS: usize = 2000;

/// Runs one Metropolis inner loop at an externally driven temperature.
///
/// This is the engine's building block for orchestrators that own the
/// temperature themselves — parallel tempering pins each replica to a
/// fixed rung and calls this between swap rounds, while [`anneal`] calls
/// it per step of a cooling schedule.
pub fn anneal_inner_loop<S: AnnealState>(
    ctx: &AnnealContext,
    state: &mut S,
    iterations: usize,
    rng: &mut StdRng,
) -> TemperatureStats {
    state.begin_temperature(ctx);
    let mut attempts = 0;
    let mut accepts = 0;
    for _ in 0..iterations {
        let Some(delta) = state.propose(ctx, rng) else {
            continue;
        };
        attempts += 1;
        let accept = delta <= 0.0 || rng.random::<f64>() < (-delta / ctx.temperature).exp();
        if accept {
            state.commit();
            accepts += 1;
        } else {
            state.abandon();
        }
    }
    TemperatureStats {
        temperature: ctx.temperature,
        attempts,
        accepts,
        cost_after: state.cost(),
        window_x: ctx.window_x,
    }
}

/// Runs the annealing loop to completion.
///
/// Acceptance is standard Metropolis: `ΔC ≤ 0` always accepts, otherwise
/// accept with probability `exp(−ΔC / T)`.
pub fn anneal<S: AnnealState>(
    config: &AnnealConfig,
    state: &mut S,
    rng: &mut StdRng,
) -> AnnealStats {
    anneal_with(config, state, rng, &mut NullRecorder)
}

/// [`anneal`] with telemetry: emits one [`AnnealTemp`] event per
/// temperature step. Recording never touches the RNG, so results are
/// bit-identical to the unrecorded run.
pub fn anneal_with<S: AnnealState>(
    config: &AnnealConfig,
    state: &mut S,
    rng: &mut StdRng,
    rec: &mut dyn Recorder,
) -> AnnealStats {
    let mut stats = AnnealStats::default();
    let mut t = config.t_start;
    let inner = config.inner_iterations();
    let mut unchanged = 0usize;
    let mut last_cost = f64::NAN;

    for step in 0..MAX_TEMPERATURE_STEPS {
        let ctx = AnnealContext {
            temperature: t,
            window_x: config.limiter.window_x(t),
            window_y: config.limiter.window_y(t),
            step,
            s_t: config.s_t,
        };
        let step_stats = anneal_inner_loop(&ctx, state, inner, rng);
        let cost_after = step_stats.cost_after;
        stats.total_attempts += step_stats.attempts;
        stats.total_accepts += step_stats.accepts;
        if rec.enabled() {
            rec.record(&Event::AnnealTemp(AnnealTemp {
                step,
                temperature: ctx.temperature,
                s_t: ctx.s_t,
                window_x: ctx.window_x,
                window_y: ctx.window_y,
                inner,
                attempts: step_stats.attempts,
                accepts: step_stats.accepts,
                cost: cost_after,
            }));
        }
        stats.steps.push(step_stats);

        // Stopping criteria (evaluated after the inner loop, per §3.3).
        match config.stop {
            StoppingCriterion::WindowAtMinimum => {
                if config.limiter.at_minimum(t) {
                    break;
                }
            }
            StoppingCriterion::CostUnchanged { inner_loops } => {
                if (cost_after - last_cost).abs() <= 1e-9 * cost_after.abs().max(1.0) {
                    unchanged += 1;
                    if unchanged >= inner_loops {
                        break;
                    }
                } else {
                    unchanged = 0;
                }
                last_cost = cost_after;
                // The window floor also ends refinement runs eventually.
                if t < config.t_floor {
                    break;
                }
            }
        }
        if t < config.t_floor {
            break;
        }
        t = config.schedule.next(t, config.s_t);
    }

    stats.final_cost = state.cost();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Toy problem: minimize Σ |x_i| by nudging coordinates; the nudge
    /// magnitude follows the range-limiter window (L1 keeps ΔC on the
    /// same scale as T_∞, as the paper's S_T normalization arranges).
    struct Quadratic {
        xs: Vec<f64>,
        pending: Option<(usize, f64)>,
    }

    impl Quadratic {
        fn new(n: usize) -> Self {
            Quadratic {
                xs: (0..n)
                    .map(|i| 500.0 * ((i as f64) - (n as f64) / 2.0))
                    .collect(),
                pending: None,
            }
        }
    }

    impl AnnealState for Quadratic {
        fn propose(&mut self, ctx: &AnnealContext, rng: &mut StdRng) -> Option<f64> {
            let i = rng.random_range(0..self.xs.len());
            let step = (rng.random::<f64>() - 0.5) * ctx.window_x;
            // Confine to a bounded domain, as the core boundary confines
            // cells in the real problem.
            let new = (self.xs[i] + step).clamp(-5000.0, 5000.0);
            let delta = new.abs() - self.xs[i].abs();
            self.pending = Some((i, new));
            Some(delta)
        }

        fn commit(&mut self) {
            let (i, v) = self.pending.take().expect("pending move");
            self.xs[i] = v;
        }

        fn abandon(&mut self) {
            self.pending = None;
        }

        fn cost(&self) -> f64 {
            self.xs.iter().map(|x| x.abs()).sum()
        }
    }

    fn config() -> AnnealConfig {
        AnnealConfig {
            schedule: CoolingSchedule::geometric(0.85),
            s_t: 1.0,
            t_start: 1.0e5,
            t_floor: 1.0e-6,
            attempts_per_item: 20,
            items: 10,
            limiter: RangeLimiter::paper(1.0e4, 1.0e4, 1.0e5),
            stop: StoppingCriterion::WindowAtMinimum,
        }
    }

    #[test]
    fn optimizes_quadratic() {
        let mut state = Quadratic::new(10);
        let initial = state.cost();
        let mut rng = StdRng::seed_from_u64(7);
        let stats = anneal(&config(), &mut state, &mut rng);
        assert!(
            stats.final_cost < initial / 10.0,
            "{} -> {}",
            initial,
            stats.final_cost
        );
        assert_eq!(stats.final_cost, state.cost());
        assert!(!stats.steps.is_empty());
    }

    #[test]
    fn nearly_all_accepted_at_t_infinity() {
        // §3.3: T_∞ is chosen so virtually every new state is accepted.
        let mut state = Quadratic::new(10);
        let mut rng = StdRng::seed_from_u64(7);
        let stats = anneal(&config(), &mut state, &mut rng);
        let first = stats.steps.first().expect("at least one step");
        assert!(
            first.acceptance_rate() > 0.95,
            "first-step acceptance {}",
            first.acceptance_rate()
        );
        // Acceptance falls as T drops.
        let last = stats.steps.last().expect("steps");
        assert!(last.acceptance_rate() < first.acceptance_rate());
    }

    #[test]
    fn window_at_minimum_stops_run() {
        let mut state = Quadratic::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let stats = anneal(&config(), &mut state, &mut rng);
        // Stopped by the window, not the step cap.
        assert!(stats.steps.len() < MAX_TEMPERATURE_STEPS);
        let last = stats.steps.last().expect("steps");
        assert_eq!(last.window_x, crate::MIN_WINDOW_SPAN);
    }

    #[test]
    fn cost_unchanged_stop() {
        let mut cfg = config();
        cfg.stop = StoppingCriterion::CostUnchanged { inner_loops: 3 };
        cfg.t_start = 1.0e-9; // effectively greedy: converges, then stalls
        cfg.t_floor = 1.0e-30;
        let mut state = Quadratic::new(6);
        let mut rng = StdRng::seed_from_u64(3);
        let stats = anneal(&cfg, &mut state, &mut rng);
        assert!(stats.steps.len() < MAX_TEMPERATURE_STEPS);
    }

    #[test]
    fn telemetry_matches_stats_and_leaves_results_unchanged() {
        let mut rec = twmc_obs::SummaryRecorder::new();
        let mut recorded = Quadratic::new(10);
        let mut rng = StdRng::seed_from_u64(7);
        let stats = anneal_with(&config(), &mut recorded, &mut rng, &mut rec);

        let mut plain = Quadratic::new(10);
        let mut rng = StdRng::seed_from_u64(7);
        let baseline = anneal(&config(), &mut plain, &mut rng);
        assert_eq!(
            stats.final_cost, baseline.final_cost,
            "recording perturbed the run"
        );

        assert_eq!(rec.count("anneal_temp"), stats.steps.len());
        for (ev, step) in rec.events().iter().zip(&stats.steps) {
            let twmc_obs::Event::AnnealTemp(t) = ev else {
                panic!("unexpected event {ev:?}")
            };
            assert_eq!(t.temperature, step.temperature);
            assert_eq!(t.attempts, step.attempts);
            assert_eq!(t.accepts, step.accepts);
            assert_eq!(t.cost, step.cost_after);
            assert_eq!(t.inner, config().inner_iterations());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut state = Quadratic::new(10);
            let mut rng = StdRng::seed_from_u64(seed);
            anneal(&config(), &mut state, &mut rng).final_cost
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn inner_iterations_follow_eq17() {
        let cfg = config();
        assert_eq!(cfg.inner_iterations(), 200);
    }
}
