//! Cooling schedules and temperature scaling.
//!
//! The paper's cooling schedule was determined experimentally: a fast
//! high-temperature regime, a slow middle regime where the TEIC drops
//! steadily, and a fast convergence regime (§3.3). Tables 1 and 2 give the
//! multiplier `α(T_old)` as a function of `T_old`, with thresholds scaled
//! by `S_T = c̄_a / c̄*_a` (eqs. 19–21) to normalize for circuit and grid
//! size.

/// Reference average cell area `c̄*_a` of the paper's calibration circuits.
pub const REF_AVG_CELL_AREA: f64 = 1.0e4;

/// Reference starting temperature `T*_∞` yielding ≈100% initial acceptance
/// on the calibration circuits.
pub const REF_T_INFINITY: f64 = 1.0e5;

/// Temperature scale factor `S_T = c̄_a / c̄*_a` (eq. 20).
///
/// `avg_cell_area` should include the estimated interconnect area, per the
/// paper's calibration.
pub fn temperature_scale(avg_cell_area: f64) -> f64 {
    (avg_cell_area / REF_AVG_CELL_AREA).max(f64::MIN_POSITIVE)
}

/// Starting temperature `T_∞ = S_T · T*_∞` (eq. 21).
pub fn t_infinity(s_t: f64) -> f64 {
    s_t * REF_T_INFINITY
}

/// A piecewise-constant cooling schedule: `T_new = α(T_old) · T_old`
/// (eq. 18), with thresholds expressed in units of `S_T`.
#[derive(Debug, Clone, PartialEq)]
pub struct CoolingSchedule {
    /// `(threshold, α)` pairs, descending by threshold: the first entry
    /// whose threshold is `<= T/S_T` supplies α. A final catch-all entry
    /// with threshold 0 is required.
    entries: Vec<(f64, f64)>,
}

impl CoolingSchedule {
    /// Builds a schedule from `(threshold, alpha)` pairs in descending
    /// threshold order, ending with a threshold-0 catch-all.
    ///
    /// # Panics
    ///
    /// Panics if the pairs are not descending, the last threshold is not
    /// zero, or any α is outside `(0, 1)`.
    pub fn new(entries: Vec<(f64, f64)>) -> Self {
        assert!(!entries.is_empty(), "schedule needs at least one entry");
        assert_eq!(
            entries.last().expect("nonempty").0,
            0.0,
            "last threshold must be 0"
        );
        for pair in entries.windows(2) {
            assert!(
                pair[0].0 > pair[1].0,
                "thresholds must be strictly descending"
            );
        }
        for &(_, a) in &entries {
            assert!(0.0 < a && a < 1.0, "alpha must be in (0, 1), got {a}");
        }
        CoolingSchedule { entries }
    }

    /// The stage-1 schedule of the paper's Table 1.
    ///
    /// | for `T_old ≥`    | α    |
    /// |------------------|------|
    /// | `S_T · 7000`     | 0.85 |
    /// | `S_T · 200`      | 0.92 |
    /// | `S_T · 10`       | 0.85 |
    /// | 0                | 0.80 |
    pub fn stage1() -> Self {
        CoolingSchedule::new(vec![
            (7000.0, 0.85),
            (200.0, 0.92),
            (10.0, 0.85),
            (0.0, 0.80),
        ])
    }

    /// The stage-2 (placement refinement) schedule of Table 2.
    ///
    /// | for `T_old ≥` | α    |
    /// |---------------|------|
    /// | `S_T · 10`    | 0.82 |
    /// | 0             | 0.70 |
    pub fn stage2() -> Self {
        CoolingSchedule::new(vec![(10.0, 0.82), (0.0, 0.70)])
    }

    /// A plain geometric schedule with constant α (used by the Fig. 3
    /// move-ratio experiment, which cooled with α = 0.90).
    pub fn geometric(alpha: f64) -> Self {
        CoolingSchedule::new(vec![(0.0, alpha)])
    }

    /// The multiplier `α(T_old)` for the given temperature and scale.
    pub fn alpha(&self, t_old: f64, s_t: f64) -> f64 {
        let scaled = t_old / s_t;
        self.entries
            .iter()
            .find(|&&(thr, _)| scaled >= thr)
            .map(|&(_, a)| a)
            .unwrap_or_else(|| self.entries.last().expect("nonempty").1)
    }

    /// One update step: `T_new = α(T_old) · T_old`.
    pub fn next(&self, t_old: f64, s_t: f64) -> f64 {
        t_old * self.alpha(t_old, s_t)
    }

    /// Number of temperature steps from `t_start` down to `t_floor`.
    pub fn steps_between(&self, t_start: f64, t_floor: f64, s_t: f64) -> usize {
        let mut t = t_start;
        let mut n = 0;
        while t > t_floor && n < 100_000 {
            t = self.next(t, s_t);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_thresholds() {
        let s = CoolingSchedule::stage1();
        // Unit scale.
        assert_eq!(s.alpha(8000.0, 1.0), 0.85);
        assert_eq!(s.alpha(7000.0, 1.0), 0.85);
        assert_eq!(s.alpha(6999.0, 1.0), 0.92);
        assert_eq!(s.alpha(200.0, 1.0), 0.92);
        assert_eq!(s.alpha(199.0, 1.0), 0.85);
        assert_eq!(s.alpha(10.0, 1.0), 0.85);
        assert_eq!(s.alpha(9.0, 1.0), 0.80);
    }

    #[test]
    fn table2_thresholds() {
        let s = CoolingSchedule::stage2();
        assert_eq!(s.alpha(11.0, 1.0), 0.82);
        assert_eq!(s.alpha(10.0, 1.0), 0.82);
        assert_eq!(s.alpha(1.0, 1.0), 0.70);
    }

    #[test]
    fn scale_shifts_thresholds() {
        let s = CoolingSchedule::stage1();
        // With S_T = 2 the 7000 threshold sits at 14000.
        assert_eq!(s.alpha(13999.0, 2.0), 0.92);
        assert_eq!(s.alpha(14000.0, 2.0), 0.85);
    }

    #[test]
    fn paper_says_about_120_temperatures() {
        // "approximately 120 temperature values were to be considered in a
        // typical execution" (§3.3): T from 1e5 down to ~1e-1 at unit S_T.
        let s = CoolingSchedule::stage1();
        let n = s.steps_between(1.0e5, 1.0e-2, 1.0);
        assert!(
            (90..=150).contains(&n),
            "expected ≈120 steps over six-plus decades, got {n}"
        );
    }

    #[test]
    fn temperature_scaling() {
        assert_eq!(temperature_scale(1.0e4), 1.0);
        assert_eq!(temperature_scale(2.0e4), 2.0);
        assert_eq!(t_infinity(temperature_scale(1.0e4)), 1.0e5);
    }

    #[test]
    fn cooling_is_monotone() {
        let s = CoolingSchedule::stage1();
        let mut t = t_infinity(1.0);
        for _ in 0..200 {
            let n = s.next(t, 1.0);
            assert!(n < t && n > 0.0);
            t = n;
        }
    }

    #[test]
    #[should_panic(expected = "descending")]
    fn rejects_unsorted_thresholds() {
        let _ = CoolingSchedule::new(vec![(10.0, 0.9), (20.0, 0.8), (0.0, 0.8)]);
    }

    #[test]
    #[should_panic(expected = "last threshold")]
    fn rejects_missing_catch_all() {
        let _ = CoolingSchedule::new(vec![(10.0, 0.9)]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = CoolingSchedule::new(vec![(0.0, 1.5)]);
    }
}
