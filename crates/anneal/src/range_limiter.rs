//! The range-limiter window (paper §3.2.2, eqs. 12–14).
//!
//! Large-distance moves at low temperature almost always increase the cost
//! and are rejected; the range limiter prohibits them by restricting the
//! displacement target to a window centered on the moving cell. The window
//! span shrinks as a function of `log₁₀(T)`:
//!
//! ```text
//! W_x(T) = W_x^∞ · ρ^{log₁₀ T} / λ,     λ = ρ^{log₁₀ T_∞}
//! ```
//!
//! The paper chose ρ = 4: final TEIL was flat for ρ ∈ [1, 4], and larger ρ
//! lowered the residual cell overlap by forcing more local moves at low T.

/// The paper's chosen range-limiter exponent.
pub const DEFAULT_RHO: f64 = 4.0;

/// Minimum window span, in grid units: the end-of-stage-1 condition is the
/// window reaching a span of 6 units (paper §3.2.3).
pub const MIN_WINDOW_SPAN: f64 = 6.0;

/// Computes the log-T window control of eqs. 12–14.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeLimiter {
    w_inf_x: f64,
    w_inf_y: f64,
    t_inf: f64,
    rho: f64,
    lambda: f64,
    min_span: f64,
}

impl RangeLimiter {
    /// Creates a limiter with full-span windows `(w_inf_x, w_inf_y)` at
    /// temperature `t_inf`, shrinking with exponent `rho`.
    ///
    /// # Panics
    ///
    /// Panics if `rho < 1`, or any span/temperature is non-positive.
    pub fn new(w_inf_x: f64, w_inf_y: f64, t_inf: f64, rho: f64) -> Self {
        assert!(
            rho >= 1.0,
            "rho must be >= 1 (paper tests 1..=10), got {rho}"
        );
        assert!(
            w_inf_x > 0.0 && w_inf_y > 0.0,
            "window spans must be positive"
        );
        assert!(t_inf > 0.0, "T_infinity must be positive");
        RangeLimiter {
            w_inf_x,
            w_inf_y,
            t_inf,
            rho,
            lambda: rho.powf(t_inf.log10()),
            min_span: MIN_WINDOW_SPAN,
        }
    }

    /// The limiter with the paper's ρ = 4.
    pub fn paper(w_inf_x: f64, w_inf_y: f64, t_inf: f64) -> Self {
        RangeLimiter::new(w_inf_x, w_inf_y, t_inf, DEFAULT_RHO)
    }

    /// The raw shrink factor `ρ^{log₁₀ T} / λ ∈ (0, 1]` (1 at `T = T_∞`).
    pub fn fraction(&self, t: f64) -> f64 {
        if self.rho == 1.0 {
            // ρ = 1 never shrinks (a degenerate limiter the paper tested).
            return 1.0;
        }
        (self.rho.powf(t.max(f64::MIN_POSITIVE).log10()) / self.lambda).min(1.0)
    }

    /// Horizontal window span at temperature `t` (eq. 12), floored at the
    /// minimum span.
    pub fn window_x(&self, t: f64) -> f64 {
        (self.w_inf_x * self.fraction(t)).max(self.min_span)
    }

    /// Vertical window span at temperature `t` (eq. 13).
    pub fn window_y(&self, t: f64) -> f64 {
        (self.w_inf_y * self.fraction(t)).max(self.min_span)
    }

    /// Whether both window spans have reached the minimum — the stage-1
    /// stopping condition.
    pub fn at_minimum(&self, t: f64) -> bool {
        self.w_inf_x * self.fraction(t) <= self.min_span
            && self.w_inf_y * self.fraction(t) <= self.min_span
    }

    /// The temperature `T'` at which the window is fraction `μ` of the full
    /// span — the stage-2 starting temperature (eq. 28):
    /// `T' = μ^{log_ρ 10} · T_∞`.
    pub fn temperature_for_fraction(&self, mu: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&mu) && mu > 0.0,
            "mu must be in (0, 1]"
        );
        if self.rho == 1.0 {
            return self.t_inf;
        }
        mu.powf(std::f64::consts::LN_10 / self.rho.ln()) * self.t_inf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_span_at_t_infinity() {
        let rl = RangeLimiter::paper(1000.0, 800.0, 1.0e5);
        assert!((rl.window_x(1.0e5) - 1000.0).abs() < 1e-9);
        assert!((rl.window_y(1.0e5) - 800.0).abs() < 1e-9);
        assert!((rl.fraction(1.0e5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shrinks_monotonically_with_t() {
        let rl = RangeLimiter::paper(1000.0, 1000.0, 1.0e5);
        let mut last = f64::INFINITY;
        let mut t = 1.0e5;
        while t > 1.0e-2 {
            let w = rl.window_x(t);
            assert!(w <= last + 1e-9, "window grew at T={t}");
            last = w;
            t *= 0.8;
        }
        assert_eq!(last, MIN_WINDOW_SPAN);
    }

    #[test]
    fn each_decade_divides_by_rho() {
        let rl = RangeLimiter::new(4096.0, 4096.0, 1.0e5, 4.0);
        // One decade below T_inf the span is 1/4 of full.
        assert!((rl.window_x(1.0e4) - 1024.0).abs() < 1e-6);
        assert!((rl.window_x(1.0e3) - 256.0).abs() < 1e-6);
    }

    #[test]
    fn rho_one_never_shrinks() {
        let rl = RangeLimiter::new(500.0, 500.0, 1.0e5, 1.0);
        assert_eq!(rl.window_x(1.0e-3), 500.0);
        assert!(!rl.at_minimum(1.0e-3));
    }

    #[test]
    fn at_minimum_threshold() {
        let rl = RangeLimiter::paper(6000.0, 6000.0, 1.0e5);
        // Need fraction <= 6/6000 = 1e-3, i.e. rho^(log10 T - 5) <= 1e-3:
        // log10 T <= 5 - 3*ln10/ln4 ≈ 0.017.
        assert!(!rl.at_minimum(10.0));
        assert!(rl.at_minimum(1.0e-1));
    }

    #[test]
    fn stage2_start_temperature_matches_eq28() {
        let rl = RangeLimiter::paper(1.0, 1.0, 1.0e5);
        let mu = 0.03f64;
        let t = rl.temperature_for_fraction(mu);
        // Eq. 28: T' = mu^(log_4 10) * T_inf.
        let expect = mu.powf(10f64.log(4.0)) * 1.0e5;
        assert!((t - expect).abs() / expect < 1e-12);
        // And indeed the window at T' is mu of full span.
        assert!((rl.fraction(t) - mu).abs() < 1e-9);
    }

    #[test]
    fn larger_rho_gives_smaller_windows_at_same_t() {
        // §3.2.2: for a given T, as ρ increases the window size is smaller.
        let t = 1.0e3;
        let spans: Vec<f64> = [1.5, 2.0, 4.0, 8.0]
            .iter()
            .map(|&rho| RangeLimiter::new(1.0e4, 1.0e4, 1.0e5, rho).window_x(t))
            .collect();
        for pair in spans.windows(2) {
            assert!(pair[0] > pair[1], "{spans:?}");
        }
    }

    #[test]
    #[should_panic(expected = "rho must be >= 1")]
    fn rejects_bad_rho() {
        let _ = RangeLimiter::new(10.0, 10.0, 1.0e5, 0.5);
    }
}
