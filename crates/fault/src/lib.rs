//! Deterministic filesystem fault injection for crash-consistency tests.
//!
//! Every durable write path in the daemon stack (checkpoint envelopes in
//! `twmc-resume`, the job spool in `twmc-serve`, the JSONL telemetry sink in
//! `twmc-obs`) funnels its syscalls through the [`Vfs`] trait defined here.
//! Production code uses [`RealVfs`], a thin passthrough to `std::fs` that
//! adds the fsync discipline the paper-era code skipped. Tests swap in
//! [`FaultVfs`], which injects failures from a seeded, fully deterministic
//! [`FaultSchedule`]:
//!
//! * **EIO / ENOSPC** on write, sync, or rename (`eio=write`,
//!   `enospc=sync_file`) — the classic full-disk and dying-device cases;
//! * **torn writes** (`torn=write`) — the write call reports success but
//!   only a seeded prefix of the bytes reaches the file, modelling a
//!   kernel page writeback cut short by power loss;
//! * **crashpoints** (`crash=state.json:after_rename`) — named markers
//!   between each syscall of the atomic-write sequence. Hitting one
//!   either latches the [`FaultVfs`] into a "machine is off" state where
//!   every subsequent operation fails (the in-process test mode), or
//!   aborts the process outright (`with_abort`, for scripted kill tests).
//!
//! The one atomic-write sequence everything shares is
//! [`atomic_write_durable`]: write `path.tmp`, fsync it, rename over
//! `path`, fsync the parent directory — with a crashpoint before and after
//! every step ([`ATOMIC_STAGES`]). A recovery harness can therefore
//! enumerate every possible crash prefix of a durable write and assert the
//! reader survives each one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// How hard a durable write tries to survive power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// No fsync at all: fast, but a crash can lose or tear the write.
    /// Only appropriate for files that are rebuilt from scratch anyway.
    None,
    /// Fsync the file before rename, but not the parent directory. The
    /// file contents are safe; the rename itself may be lost on power
    /// failure (the old version reappears).
    File,
    /// Fsync the file before rename and the parent directory after: the
    /// full discipline. A crash leaves either the old or the new
    /// version, never a torn or missing file.
    Full,
}

/// Abstraction over the syscalls a durable write path performs.
///
/// Implementations must be shareable across threads; the daemon hands one
/// `Arc<dyn Vfs>` to the spool, the checkpoint writer, and the telemetry
/// sink.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Write `bytes` to `path`, creating or truncating it.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Read the full contents of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Flush `path`'s data and metadata to stable storage.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Flush the directory entry table of `dir` to stable storage, making
    /// renames and unlinks inside it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Atomically rename `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// A named marker between syscalls of a compound sequence. The real
    /// VFS does nothing; a fault VFS may simulate a crash here. Sequences
    /// must propagate the error and stop immediately when this fails.
    fn crashpoint(&self, _name: &str) -> io::Result<()> {
        Ok(())
    }
}

/// The production [`Vfs`]: a passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directories are fsynced by opening them read-only and calling
        // fsync on the handle; on platforms where that is unsupported
        // (notably Windows) the open itself fails and we degrade to a
        // no-op rather than poisoning an otherwise-successful write.
        match fs::File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// Stage names of the [`atomic_write_durable`] sequence, in order.
///
/// A crashpoint named `"<file_name>:<stage>"` fires before/after each
/// syscall; a recovery harness iterates this list to cover every prefix.
pub const ATOMIC_STAGES: &[&str] = &[
    "before_write",
    "after_write",
    "after_sync_file",
    "after_rename",
    "after_sync_dir",
];

/// Sibling path used for the atomic-write scratch file: `<path>.tmp`.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".tmp");
    PathBuf::from(s)
}

/// The canonical crash-safe write: tmp file, fsync, rename, dir fsync.
///
/// Crashpoints named `"<file_name>:<stage>"` (see [`ATOMIC_STAGES`]) fire
/// between each step so a [`FaultVfs`] can freeze the disk at any prefix
/// of the sequence. With [`Durability::Full`] a crash at any point leaves
/// either the old file intact or the new file complete — never a torn
/// `path`, though a stale `.tmp` sibling may remain for the startup scan
/// to sweep.
pub fn atomic_write_durable(
    vfs: &dyn Vfs,
    path: &Path,
    bytes: &[u8],
    durability: Durability,
) -> io::Result<()> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string_lossy().into_owned());
    let tmp = tmp_sibling(path);
    vfs.crashpoint(&format!("{name}:before_write"))?;
    vfs.write(&tmp, bytes)?;
    vfs.crashpoint(&format!("{name}:after_write"))?;
    if durability != Durability::None {
        vfs.sync_file(&tmp)?;
    }
    vfs.crashpoint(&format!("{name}:after_sync_file"))?;
    vfs.rename(&tmp, path)?;
    vfs.crashpoint(&format!("{name}:after_rename"))?;
    if durability == Durability::Full {
        if let Some(dir) = path.parent() {
            vfs.sync_dir(dir)?;
        }
    }
    vfs.crashpoint(&format!("{name}:after_sync_dir"))?;
    Ok(())
}

/// Which fault a schedule clause injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Generic I/O error (`EIO`).
    Eio,
    /// Out of space (`ENOSPC`).
    Enospc,
    /// The write reports success but only a seeded prefix lands on disk.
    Torn,
    /// Simulated crash: latch the VFS dead (or abort the process).
    Crash,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "eio" => Some(FaultKind::Eio),
            "enospc" => Some(FaultKind::Enospc),
            "torn" => Some(FaultKind::Torn),
            "crash" => Some(FaultKind::Crash),
            _ => None,
        }
    }

    fn error(&self) -> io::Error {
        match self {
            // 5 = EIO, 28 = ENOSPC on Linux.
            FaultKind::Eio => io::Error::from_raw_os_error(5),
            FaultKind::Enospc => io::Error::from_raw_os_error(28),
            FaultKind::Torn => io::Error::other("torn write"),
            FaultKind::Crash => io::Error::other("simulated crash"),
        }
    }
}

/// One clause of a [`FaultSchedule`]: inject `kind` on the `nth` matching
/// occurrence of operation `op` whose path (or crashpoint name) contains
/// `pattern`.
#[derive(Debug, Clone)]
struct FaultRule {
    kind: FaultKind,
    /// Operation name: `write`, `sync_file`, `sync_dir`, `rename`,
    /// `remove_file`, `read`, or `crashpoint`.
    op: String,
    /// Substring the target path / crashpoint name must contain
    /// (empty = match all).
    pattern: String,
    /// Fire on the nth match (1-based); 0 = every match.
    nth: u64,
    hits: u64,
    fired: bool,
}

impl FaultRule {
    fn matches(&mut self, op: &str, target: &str) -> bool {
        if self.op != op || !target.contains(&self.pattern) {
            return false;
        }
        self.hits += 1;
        if self.nth == 0 {
            return true;
        }
        if self.fired || self.hits != self.nth {
            return false;
        }
        self.fired = true;
        true
    }
}

/// A parsed, seeded fault schedule.
///
/// Spec grammar (comma- or semicolon-separated clauses):
///
/// ```text
/// seed=42, enospc=write:state.json@2, torn=write:run.ckpt, crash=job.ckpt:after_rename
/// ```
///
/// * `seed=N` — seeds the deterministic torn-write length choice;
/// * `<fault>=<op>[:<pattern>][@<nth>]` with fault ∈ `eio | enospc |
///   torn`, op ∈ `write | sync_file | sync_dir | rename | remove_file |
///   read`, `pattern` a path substring, `nth` the 1-based occurrence to
///   hit (omitted = every occurrence);
/// * `crash=<pattern>[@<nth>]` — fire at the crashpoint whose name
///   contains `pattern` (crashpoint names are `"<file>:<stage>"`, e.g.
///   `state.json:after_rename`).
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultSchedule {
    /// Parse a schedule spec; returns a human-readable error for bad
    /// clauses.
    pub fn parse(spec: &str) -> Result<FaultSchedule, String> {
        let mut sched = FaultSchedule::default();
        for clause in spec.split([',', ';']) {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}`: expected key=value"))?;
            let (key, val) = (key.trim(), val.trim());
            if key == "seed" {
                sched.seed = val
                    .parse()
                    .map_err(|_| format!("fault clause `{clause}`: bad seed"))?;
                continue;
            }
            let kind = FaultKind::parse(key)
                .ok_or_else(|| format!("fault clause `{clause}`: unknown fault `{key}`"))?;
            let (body, nth) = match val.rsplit_once('@') {
                Some((body, n)) => (
                    body,
                    n.parse::<u64>()
                        .map_err(|_| format!("fault clause `{clause}`: bad occurrence"))?,
                ),
                None => (val, 0),
            };
            let (op, pattern) = if kind == FaultKind::Crash {
                ("crashpoint".to_string(), body.to_string())
            } else {
                match body.split_once(':') {
                    Some((op, pat)) => (op.to_string(), pat.to_string()),
                    None => (body.to_string(), String::new()),
                }
            };
            const OPS: &[&str] = &[
                "write",
                "sync_file",
                "sync_dir",
                "rename",
                "remove_file",
                "read",
                "crashpoint",
            ];
            if !OPS.contains(&op.as_str()) {
                return Err(format!("fault clause `{clause}`: unknown op `{op}`"));
            }
            sched.rules.push(FaultRule {
                kind,
                op,
                pattern,
                nth,
                hits: 0,
                fired: false,
            });
        }
        Ok(sched)
    }

    /// Convenience: a schedule with a single crashpoint clause matching
    /// `pattern` on its first occurrence.
    pub fn crash_at(pattern: &str) -> FaultSchedule {
        FaultSchedule {
            seed: 0,
            rules: vec![FaultRule {
                kind: FaultKind::Crash,
                op: "crashpoint".to_string(),
                pattern: pattern.to_string(),
                nth: 1,
                hits: 0,
                fired: false,
            }],
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A [`Vfs`] that injects faults from a [`FaultSchedule`].
///
/// All real I/O is delegated to `std::fs`; the schedule decides which
/// calls fail instead (or, for torn writes, half-succeed). Once a crash
/// fires, the VFS latches: every subsequent operation fails with a
/// "crashed" error, modelling a machine that is off. With
/// [`with_abort`](FaultVfs::with_abort) the crash calls
/// `std::process::abort()` instead, for harnesses that really do restart
/// a process.
#[derive(Debug)]
pub struct FaultVfs {
    sched: Mutex<FaultSchedule>,
    crashed: AtomicBool,
    abort_on_crash: bool,
    torn_writes: AtomicBool,
}

impl FaultVfs {
    /// Build a fault VFS over a parsed schedule (latch-mode crashes).
    pub fn new(sched: FaultSchedule) -> FaultVfs {
        FaultVfs {
            sched: Mutex::new(sched),
            crashed: AtomicBool::new(false),
            abort_on_crash: false,
            torn_writes: AtomicBool::new(false),
        }
    }

    /// Make crashpoint hits abort the process instead of latching.
    /// Use only under a harness that expects the process to die.
    pub fn with_abort(mut self) -> FaultVfs {
        self.abort_on_crash = true;
        self
    }

    /// True once a crash clause has fired (latch mode). All operations
    /// fail from that moment on; the on-disk state is frozen exactly as
    /// it was at the crashpoint.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Did any torn-write clause fire yet?
    pub fn tore(&self) -> bool {
        self.torn_writes.load(Ordering::SeqCst)
    }

    fn check(&self, op: &str, target: &Path) -> io::Result<Option<FaultKind>> {
        self.check_name(op, &target.to_string_lossy())
    }

    fn check_name(&self, op: &str, target: &str) -> io::Result<Option<FaultKind>> {
        if self.crashed() {
            return Err(io::Error::other("vfs crashed (simulated power loss)"));
        }
        let mut sched = self.sched.lock().unwrap();
        for rule in &mut sched.rules {
            if rule.matches(op, target) {
                if rule.kind == FaultKind::Crash {
                    drop(sched);
                    if self.abort_on_crash {
                        eprintln!("twmc-fault: aborting at crashpoint `{target}`");
                        std::process::abort();
                    }
                    self.crashed.store(true, Ordering::SeqCst);
                    return Err(io::Error::other(format!("simulated crash at `{target}`")));
                }
                return Ok(Some(rule.kind));
            }
        }
        Ok(None)
    }

    fn torn_len(&self, path: &Path, full: usize) -> usize {
        let sched = self.sched.lock().unwrap();
        let mut h = sched.seed ^ 0x7477_6d63_5f66_6c74; // "twmc_flt"
        for b in path.to_string_lossy().as_bytes() {
            h = splitmix64(h ^ u64::from(*b));
        }
        if full == 0 {
            0
        } else {
            (splitmix64(h) % full as u64) as usize
        }
    }
}

impl Vfs for FaultVfs {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.check("write", path)? {
            Some(FaultKind::Torn) => {
                self.torn_writes.store(true, Ordering::SeqCst);
                let keep = self.torn_len(path, bytes.len());
                let mut f = fs::File::create(path)?;
                f.write_all(&bytes[..keep])?;
                // The caller sees success: exactly what a page-cache
                // write followed by power loss looks like.
                Ok(())
            }
            Some(kind) => Err(kind.error()),
            None => fs::write(path, bytes),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.check("read", path)? {
            Some(kind) => Err(kind.error()),
            None => {
                let mut buf = Vec::new();
                fs::File::open(path)?.read_to_end(&mut buf)?;
                Ok(buf)
            }
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        match self.check("sync_file", path)? {
            Some(kind) => Err(kind.error()),
            None => fs::File::open(path)?.sync_all(),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.check("sync_dir", dir)? {
            Some(kind) => Err(kind.error()),
            None => match fs::File::open(dir) {
                Ok(d) => d.sync_all(),
                Err(_) => Ok(()),
            },
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.check("rename", to)? {
            Some(kind) => Err(kind.error()),
            None => fs::rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.check("remove_file", path)? {
            Some(kind) => Err(kind.error()),
            None => fs::remove_file(path),
        }
    }

    fn crashpoint(&self, name: &str) -> io::Result<()> {
        match self.check_name("crashpoint", name)? {
            Some(kind) => Err(kind.error()),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("twmc-fault-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn real_vfs_atomic_write_roundtrips() {
        let dir = tmpdir("real");
        let path = dir.join("state.json");
        atomic_write_durable(&RealVfs, &path, b"{\"a\":1}", Durability::Full).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"a\":1}");
        assert!(!tmp_sibling(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn schedule_parses_and_rejects() {
        let s = FaultSchedule::parse("seed=7, enospc=write:state.json@2, crash=ckpt:after_rename")
            .unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.rules.len(), 2);
        assert!(FaultSchedule::parse("bogus=write").is_err());
        assert!(FaultSchedule::parse("eio=frobnicate").is_err());
        assert!(FaultSchedule::parse("eio").is_err());
        assert!(FaultSchedule::parse("eio=write:x@zz").is_err());
    }

    #[test]
    fn enospc_fires_on_nth_occurrence_only() {
        let dir = tmpdir("nth");
        let vfs = FaultVfs::new(FaultSchedule::parse("enospc=write:state.json@2").unwrap());
        let path = dir.join("state.json");
        vfs.write(&path, b"one").unwrap();
        let err = vfs.write(&path, b"two").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        vfs.write(&path, b"three").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"three");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_reports_success_but_truncates_deterministically() {
        let dir = tmpdir("torn");
        let vfs = FaultVfs::new(FaultSchedule::parse("seed=3, torn=write:run.ckpt@1").unwrap());
        let path = dir.join("run.ckpt");
        let payload = vec![b'x'; 1000];
        vfs.write(&path, &payload).unwrap();
        let len1 = fs::read(&path).unwrap().len();
        assert!(len1 < payload.len(), "torn write must shorten the file");
        assert!(vfs.tore());
        // Same seed, same path => same tear point.
        let vfs2 = FaultVfs::new(FaultSchedule::parse("seed=3, torn=write:run.ckpt@1").unwrap());
        vfs2.write(&path, &payload).unwrap();
        assert_eq!(fs::read(&path).unwrap().len(), len1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_latches_and_freezes_disk_state() {
        let dir = tmpdir("crash");
        let path = dir.join("state.json");
        fs::write(&path, b"old").unwrap();
        let vfs = FaultVfs::new(FaultSchedule::crash_at("state.json:after_sync_file"));
        let err = atomic_write_durable(&vfs, &path, b"new", Durability::Full).unwrap_err();
        assert!(err.to_string().contains("simulated crash"), "{err}");
        assert!(vfs.crashed());
        // Frozen at after_sync_file: tmp exists with full contents, the
        // target still holds the old version, and the dead VFS rejects
        // further work.
        assert_eq!(fs::read(&path).unwrap(), b"old");
        assert_eq!(fs::read(tmp_sibling(&path)).unwrap(), b"new");
        assert!(vfs.write(&path, b"again").is_err());
        assert!(vfs.read(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_atomic_stage_crash_leaves_old_or_new_never_torn() {
        for stage in ATOMIC_STAGES {
            let dir = tmpdir(&format!("stage-{stage}"));
            let path = dir.join("job.ckpt");
            fs::write(&path, b"old-version").unwrap();
            let vfs = FaultVfs::new(FaultSchedule::crash_at(&format!("job.ckpt:{stage}")));
            let res = atomic_write_durable(&vfs, &path, b"new-version", Durability::Full);
            if *stage == "after_sync_dir" {
                // The final crashpoint fires after the sequence is
                // already durable; the write itself errors but the new
                // version is on disk.
                assert!(res.is_err());
                assert_eq!(fs::read(&path).unwrap(), b"new-version");
            } else {
                assert!(res.is_err());
                let got = fs::read(&path).unwrap();
                assert!(
                    got == b"old-version" || got == b"new-version",
                    "stage {stage}: target must be old or new, got {} bytes",
                    got.len()
                );
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn eio_on_sync_dir_surfaces_with_full_durability_only() {
        let dir = tmpdir("syncdir");
        let path = dir.join("spec.json");
        let vfs = FaultVfs::new(FaultSchedule::parse("eio=sync_dir").unwrap());
        assert!(atomic_write_durable(&vfs, &path, b"x", Durability::Full).is_err());
        // File mode never touches the directory, so the same schedule
        // passes.
        let vfs = FaultVfs::new(FaultSchedule::parse("eio=sync_dir").unwrap());
        atomic_write_durable(&vfs, &path, b"x", Durability::File).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"x");
        let _ = fs::remove_dir_all(&dir);
    }
}
