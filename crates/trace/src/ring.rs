//! The per-lane lock-free span ring.
//!
//! Each lane is a fixed power-of-two ring of slots written by exactly
//! one thread (enforced by the checkout protocol in
//! [`crate::Tracer::lane`]) and read by any number of collectors. A
//! slot is published with a per-slot sequence stamp — odd while a
//! write is in flight, bumped to the next even value when it lands —
//! so a collector that catches a slot mid-overwrite skips it instead
//! of reporting torn data. When the ring wraps, the oldest span is
//! evicted; eviction is just the head index outrunning the capacity,
//! so the dropped count is exact and recording is wait-free.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{Interner, SpanRecord};

/// One ring slot: four atomics so readers never see a partial word.
struct Slot {
    /// Seqlock stamp: odd = write in flight, even = generation stable.
    seq: AtomicU64,
    /// `name_id << 32 | cat_id`.
    meta: AtomicU64,
    /// Start, nanoseconds since the tracer epoch.
    ts_ns: AtomicU64,
    /// Duration, nanoseconds.
    dur_ns: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            ts_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

/// The shared state of one lane: the ring plus its checkout flag.
pub struct LaneShared {
    name: String,
    mask: u64,
    slots: Vec<Slot>,
    /// Total spans ever written; `head - capacity` of them (when
    /// positive) have been evicted.
    head: AtomicU64,
    busy: AtomicBool,
}

impl LaneShared {
    pub(crate) fn new(name: String, capacity: usize) -> LaneShared {
        debug_assert!(capacity.is_power_of_two());
        LaneShared {
            name,
            mask: capacity as u64 - 1,
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            busy: AtomicBool::new(false),
        }
    }

    /// Lane name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attempts to claim exclusive write access; true on success.
    pub(crate) fn checkout(&self) -> bool {
        !self.busy.swap(true, Ordering::AcqRel)
    }

    fn checkin(&self) {
        self.busy.store(false, Ordering::Release);
    }

    /// Spans evicted by wraparound so far.
    pub fn dropped(&self) -> u64 {
        self.head
            .load(Ordering::Acquire)
            .saturating_sub(self.slots.len() as u64)
    }

    /// Writer-side push. Only the checkout holder may call this.
    fn push(&self, name_id: u32, cat_id: u32, ts_ns: u64, dur_ns: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head & self.mask) as usize];
        let open = slot.seq.load(Ordering::Relaxed) | 1;
        slot.seq.store(open, Ordering::Release);
        slot.meta.store(
            (u64::from(name_id) << 32) | u64::from(cat_id),
            Ordering::Release,
        );
        slot.ts_ns.store(ts_ns, Ordering::Release);
        slot.dur_ns.store(dur_ns, Ordering::Release);
        slot.seq.store(open.wrapping_add(1), Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Reader-side collection: the surviving spans (oldest first) and
    /// the dropped count. Slots caught mid-overwrite are skipped.
    pub(crate) fn read(&self, names: &[String], base_unix_ns: u64) -> (Vec<SpanRecord>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut spans = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i & self.mask) as usize];
            let before = slot.seq.load(Ordering::Acquire);
            if before & 1 == 1 {
                continue; // write in flight right now
            }
            let meta = slot.meta.load(Ordering::Acquire);
            let ts_ns = slot.ts_ns.load(Ordering::Acquire);
            let dur_ns = slot.dur_ns.load(Ordering::Acquire);
            if slot.seq.load(Ordering::Acquire) != before {
                continue; // overwritten while we read it
            }
            let name_id = (meta >> 32) as usize;
            let cat_id = (meta & 0xffff_ffff) as usize;
            let unknown = "?".to_owned();
            spans.push(SpanRecord {
                name: names.get(name_id).unwrap_or(&unknown).clone(),
                cat: names.get(cat_id).unwrap_or(&unknown).clone(),
                ts_ns: base_unix_ns + ts_ns,
                dur_ns,
            });
        }
        (spans, self.dropped())
    }
}

/// The exclusive writer handle for one lane. Checked out from
/// [`crate::Tracer::lane`]; dropping it checks the lane back in.
/// Recording through a `Lane` is lock-free and allocation-free — the
/// only non-ring state is a tiny pointer-equality cache over the
/// `&'static str` span names this writer has used.
pub struct Lane {
    shared: Arc<LaneShared>,
    interner: Arc<Interner>,
    epoch: Instant,
    cache: Vec<(&'static str, u32)>,
}

impl Lane {
    pub(crate) fn new(shared: Arc<LaneShared>, interner: Arc<Interner>, epoch: Instant) -> Lane {
        Lane {
            shared,
            interner,
            epoch,
            cache: Vec::with_capacity(16),
        }
    }

    /// Lane name.
    pub fn name(&self) -> &str {
        self.shared.name()
    }

    fn id(&mut self, name: &'static str) -> u32 {
        // Pointer equality first: static span names are unique per
        // call site, so this is a hit for every span after the first.
        if let Some((_, id)) = self
            .cache
            .iter()
            .find(|(cached, _)| std::ptr::eq(cached.as_ptr(), name.as_ptr()))
        {
            return *id;
        }
        let id = self.interner.intern(name);
        self.cache.push((name, id));
        id
    }

    fn rel_ns(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }

    /// Records a completed span that started at `start` and ran `dur`.
    pub fn span(&mut self, name: &'static str, cat: &'static str, start: Instant, dur: Duration) {
        let ts = self.rel_ns(start);
        self.span_rel(name, cat, ts, dur.as_nanos() as u64);
    }

    /// Records a completed span by epoch-relative nanoseconds. Used by
    /// the synthetic cost-term children (laid out inside a measured
    /// block) and by tests.
    pub fn span_rel(&mut self, name: &'static str, cat: &'static str, ts_ns: u64, dur_ns: u64) {
        let name_id = self.id(name);
        let cat_id = self.id(cat);
        self.shared.push(name_id, cat_id, ts_ns, dur_ns);
    }

    /// Records an instant marker (zero-duration span) at `at`.
    pub fn mark(&mut self, name: &'static str, cat: &'static str, at: Instant) {
        let ts = self.rel_ns(at);
        self.span_rel(name, cat, ts, 0);
    }

    /// Epoch-relative nanoseconds of `t` on this lane's clock.
    pub fn rel_of(&self, t: Instant) -> u64 {
        self.rel_ns(t)
    }

    /// Spans evicted from this lane so far.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped()
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        self.shared.checkin();
    }
}
