//! Chrome Trace Event Format export.
//!
//! Emits the JSON object form (`{"traceEvents": [...]}`) with
//! complete ("X") events, one `tid` per lane, thread-name metadata,
//! and an instant event per lane that dropped spans — loadable
//! directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`. Timestamps are microseconds (fractional)
//! relative to the earliest span, so the viewer timeline starts at 0.

use crate::TraceSnapshot;

/// Escapes `s` for a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with sub-ns-safe precision for the `ts`/`dur` fields.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1_000.0)
}

/// Converts a collected trace to Chrome Trace Event Format JSON.
pub fn chrome_trace_json(snap: &TraceSnapshot) -> String {
    let t0 = snap
        .lanes
        .iter()
        .flat_map(|l| l.spans.iter().map(|s| s.ts_ns))
        .min()
        .unwrap_or(snap.base_unix_ns);

    let mut events: Vec<String> = Vec::with_capacity(snap.total_spans() + snap.lanes.len() + 1);
    events.push(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"twmc\"}}"
            .to_owned(),
    );
    for (idx, lane) in snap.lanes.iter().enumerate() {
        let tid = idx + 1;
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(&lane.name)
        ));
        for span in &lane.spans {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"{}\",\
                 \"ts\":{},\"dur\":{}}}",
                json_escape(&span.name),
                json_escape(&span.cat),
                us(span.ts_ns.saturating_sub(t0)),
                us(span.dur_ns),
            ));
        }
        if lane.dropped > 0 {
            // Flag the eviction where the surviving window begins.
            let at = lane.spans.first().map(|s| s.ts_ns).unwrap_or(t0);
            events.push(format!(
                "{{\"ph\":\"I\",\"pid\":1,\"tid\":{tid},\"name\":\"dropped_spans\",\
                 \"cat\":\"trace\",\"s\":\"t\",\"ts\":{},\"args\":{{\"count\":{}}}}}",
                us(at.saturating_sub(t0)),
                lane.dropped,
            ));
        }
    }

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LaneSnapshot, SpanRecord};

    #[test]
    fn exports_complete_events_with_thread_lanes() {
        let snap = TraceSnapshot {
            base_unix_ns: 1_000,
            lanes: vec![LaneSnapshot {
                name: "main".into(),
                spans: vec![SpanRecord {
                    name: "temp_step".into(),
                    cat: "place".into(),
                    ts_ns: 5_000,
                    dur_ns: 2_500,
                }],
                dropped: 4,
            }],
        };
        let json = chrome_trace_json(&snap);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"temp_step\""));
        // Normalized to the earliest span; 2500 ns = 2.5 us.
        assert!(json.contains("\"ts\":0.000,\"dur\":2.500"), "{json}");
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"dropped_spans\""));
        assert!(json.contains("\"count\":4"));
    }

    #[test]
    fn escapes_names() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
