//! The on-disk capture format: JSONL, one object per line, in the
//! same spirit as the telemetry event stream.
//!
//! ```text
//! {"kind":"trace_meta","base_unix_ns":...,"lanes":2}
//! {"kind":"span","lane":"main","name":"temp_step","cat":"place","ts_ns":...,"dur_ns":...}
//! {"kind":"trace_drop","lane":"main","dropped":92}
//! ```
//!
//! Timestamps are absolute Unix nanoseconds, so captures from a
//! preempted job's separate attempts concatenate into one valid
//! timeline. This crate only *writes* the format (it is
//! dependency-free); parsing lives in `twmc-analyze`, next to the
//! telemetry stream reader.

use crate::chrome::json_escape;
use crate::TraceSnapshot;

/// Serializes a collected trace to capture JSONL.
pub fn capture_to_string(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"kind\":\"trace_meta\",\"base_unix_ns\":{},\"lanes\":{}}}\n",
        snap.base_unix_ns,
        snap.lanes.len()
    ));
    for lane in &snap.lanes {
        let lane_name = json_escape(&lane.name);
        for span in &lane.spans {
            out.push_str(&format!(
                "{{\"kind\":\"span\",\"lane\":\"{lane_name}\",\"name\":\"{}\",\"cat\":\"{}\",\
                 \"ts_ns\":{},\"dur_ns\":{}}}\n",
                json_escape(&span.name),
                json_escape(&span.cat),
                span.ts_ns,
                span.dur_ns,
            ));
        }
        if lane.dropped > 0 {
            out.push_str(&format!(
                "{{\"kind\":\"trace_drop\",\"lane\":\"{lane_name}\",\"dropped\":{}}}\n",
                lane.dropped
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LaneSnapshot, SpanRecord};

    #[test]
    fn writes_meta_spans_and_drops() {
        let snap = TraceSnapshot {
            base_unix_ns: 42,
            lanes: vec![LaneSnapshot {
                name: "main".into(),
                spans: vec![SpanRecord {
                    name: "run".into(),
                    cat: "run".into(),
                    ts_ns: 100,
                    dur_ns: 7,
                }],
                dropped: 3,
            }],
        };
        let text = capture_to_string(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"trace_meta\""));
        assert!(lines[0].contains("\"base_unix_ns\":42"));
        assert!(lines[1].contains("\"kind\":\"span\""));
        assert!(lines[1].contains("\"ts_ns\":100"));
        assert!(lines[2].contains("\"dropped\":3"));
    }
}
