//! Span tracing for the TimberWolfMC reproduction.
//!
//! The metrics plane (`twmc-metrics`) answers "how much, how often";
//! this crate answers "*where did the wall clock go*": hierarchical
//! spans — run → stage1 → temp_step → move-block, cost terms inside
//! move evaluation, route iterations, checkpoint writes, daemon job
//! lifecycles — recorded into per-thread lock-free ring buffers and
//! exported as Chrome Trace Event JSON (Perfetto / `chrome://tracing`)
//! or folded into a self-time attribution table.
//!
//! Design rules, in priority order:
//!
//! 1. **Zero cost when off.** Instrumented code asks its recorder for
//!    a tracer once per scope (`Recorder::tracer()`, mirroring
//!    `hub()`); with no tracer attached not a single atomic is touched.
//! 2. **Bit-identical results when on.** Recording reads clocks and
//!    writes ring slots — it never touches an RNG stream or a cost
//!    value, so a traced run places identically to an untraced one.
//! 3. **Bounded memory, never blocking.** Each lane is a fixed-size
//!    power-of-two ring written by exactly one thread. When a lane
//!    wraps, the oldest spans are evicted and counted as dropped;
//!    recording never allocates after lane checkout, never locks, and
//!    never waits for a reader.
//! 4. **Eviction cannot corrupt structure.** Spans are *complete*
//!    events (start + duration); parent/child nesting is re-derived
//!    from time containment at read time, so losing an old span can
//!    never orphan or misparent a surviving one.
//!
//! The hot-path protocol matches the benched `MOVE_EVAL_SAMPLE` trick
//! from the metrics plane: one span per 32-move block (two `Instant`
//! reads that are shared with the block-latency histogram), keeping
//! the traced path under the same <2% per-move overhead gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod chrome;
mod profile;
mod ring;

pub use capture::capture_to_string;
pub use chrome::chrome_trace_json;
pub use profile::{profile, Profile, ProfileRow};
pub use ring::{Lane, LaneShared};

use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default per-lane span capacity (slots). Power of two; at one span
/// per 32-move block this holds the last ~2M move evaluations per
/// thread, plus every coarse span of any realistic run.
pub const DEFAULT_LANE_CAPACITY: usize = 65_536;

/// Span names are interned to `u32` ids so a ring slot is four words.
/// The table is append-only under a mutex; writers hit it only on a
/// lane-local cache miss (a handful of times per lane, ever).
#[derive(Default)]
struct Interner {
    names: Mutex<Vec<&'static str>>,
}

impl Interner {
    fn intern(&self, name: &'static str) -> u32 {
        let mut names = self.names.lock().unwrap();
        if let Some(id) = names.iter().position(|n| *n == name) {
            return id as u32;
        }
        names.push(name);
        (names.len() - 1) as u32
    }

    fn resolve(&self) -> Vec<String> {
        self.names
            .lock()
            .unwrap()
            .iter()
            .map(|n| (*n).to_owned())
            .collect()
    }
}

/// One recorded span, resolved into owned form by [`Tracer::collect`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (`move_block`, `temp_step`, `route_net`, ...).
    pub name: String,
    /// Category (`place`, `route`, `cost`, `ckpt`, `serve`, `run`).
    pub cat: String,
    /// Start time in nanoseconds since the Unix epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 = instant marker).
    pub dur_ns: u64,
}

impl SpanRecord {
    /// End time in nanoseconds since the Unix epoch.
    pub fn end_ns(&self) -> u64 {
        self.ts_ns + self.dur_ns
    }
}

/// One lane of a collected trace: the surviving spans of one writer
/// thread, in recording (completion) order.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSnapshot {
    /// Lane name (`main`, `replica3`, `rung2`, `route`, `job`, ...).
    pub name: String,
    /// Surviving spans.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted by ring wraparound before this collection.
    pub dropped: u64,
}

/// A collected trace: every lane's surviving spans plus drop counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    /// Nanoseconds since the Unix epoch at tracer creation; span
    /// timestamps are absolute, so snapshots from separate processes
    /// (or a preempted job's attempts) share one timeline.
    pub base_unix_ns: u64,
    /// Per-writer lanes.
    pub lanes: Vec<LaneSnapshot>,
}

impl TraceSnapshot {
    /// Total surviving spans across all lanes.
    pub fn total_spans(&self) -> usize {
        self.lanes.iter().map(|l| l.spans.len()).sum()
    }

    /// Total dropped (evicted) spans across all lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// The lane named `name`, if present.
    pub fn lane(&self, name: &str) -> Option<&LaneSnapshot> {
        self.lanes.iter().find(|l| l.name == name)
    }

    /// Merges another snapshot into this one (used to stitch the
    /// attempts of a preempted-and-resumed job into one timeline).
    /// Lanes with the same name are concatenated in time order.
    pub fn merge(&mut self, other: TraceSnapshot) {
        if self.base_unix_ns == 0 {
            self.base_unix_ns = other.base_unix_ns;
        }
        for lane in other.lanes {
            match self.lanes.iter_mut().find(|l| l.name == lane.name) {
                Some(mine) => {
                    mine.dropped += lane.dropped;
                    mine.spans.extend(lane.spans);
                    mine.spans.sort_by_key(|s| s.ts_ns);
                }
                None => self.lanes.push(lane),
            }
        }
    }
}

/// The tracing hub: owns the lane pool and the name table. Cloned by
/// `Arc` into every instrumented scope (recorders hand out
/// `Option<&Arc<Tracer>>`, exactly like the metrics hub).
pub struct Tracer {
    epoch: Instant,
    base_unix_ns: u64,
    capacity: usize,
    interner: Arc<Interner>,
    lanes: Mutex<Vec<Arc<LaneShared>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity)
            .field("lanes", &self.lanes.lock().unwrap().len())
            .finish()
    }
}

impl Tracer {
    /// A tracer with the default per-lane capacity.
    pub fn new() -> Arc<Tracer> {
        Tracer::with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// A tracer whose lanes hold `capacity` spans each (rounded up to
    /// a power of two, minimum 8) before evicting the oldest.
    pub fn with_capacity(capacity: usize) -> Arc<Tracer> {
        let capacity = capacity.max(8).next_power_of_two();
        let base_unix_ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Arc::new(Tracer {
            epoch: Instant::now(),
            base_unix_ns,
            capacity,
            interner: Arc::new(Interner::default()),
            lanes: Mutex::new(Vec::new()),
        })
    }

    /// Per-lane span capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds since the Unix epoch at tracer creation.
    pub fn base_unix_ns(&self) -> u64 {
        self.base_unix_ns
    }

    /// Checks out the writer handle for the lane named `name`,
    /// creating it on first use. A lane has exactly one writer at a
    /// time: re-checking-out a name still held elsewhere yields a
    /// fresh ring under the same name (collected as a separate lane),
    /// so two threads can never race one ring. Dropping the [`Lane`]
    /// checks it back in. This is the only lock on the recording path,
    /// paid once per scope (per temp step, per route call, per job) —
    /// never per span.
    pub fn lane(self: &Arc<Self>, name: &str) -> Lane {
        let mut lanes = self.lanes.lock().unwrap();
        let shared = match lanes.iter().find(|l| l.name() == name && l.checkout()) {
            Some(found) => Arc::clone(found),
            None => {
                let fresh = Arc::new(LaneShared::new(name.to_owned(), self.capacity));
                assert!(fresh.checkout(), "fresh lane is checked in");
                lanes.push(Arc::clone(&fresh));
                fresh
            }
        };
        Lane::new(shared, Arc::clone(&self.interner), self.epoch)
    }

    /// Total spans evicted by wraparound, across all lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes.lock().unwrap().iter().map(|l| l.dropped()).sum()
    }

    /// Collects every lane's surviving spans into an owned snapshot.
    /// Safe to call while writers are live (a span being written at
    /// this instant is skipped, not torn); lanes appear in creation
    /// order and spans within a lane in recording order.
    pub fn collect(&self) -> TraceSnapshot {
        let names = self.interner.resolve();
        let lanes = self.lanes.lock().unwrap();
        let mut out = Vec::with_capacity(lanes.len());
        for lane in lanes.iter() {
            let (mut spans, dropped) = lane.read(&names, self.base_unix_ns);
            spans.sort_by_key(|s| s.ts_ns);
            out.push(LaneSnapshot {
                name: lane.name().to_owned(),
                spans,
                dropped,
            });
        }
        TraceSnapshot {
            base_unix_ns: self.base_unix_ns,
            lanes: out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn rel(lane: &mut Lane, name: &'static str, cat: &'static str, ts: u64, dur: u64) {
        lane.span_rel(name, cat, ts, dur);
    }

    #[test]
    fn records_and_collects_spans() {
        let tracer = Tracer::with_capacity(64);
        let mut lane = tracer.lane("main");
        rel(&mut lane, "inner", "place", 100, 50);
        rel(&mut lane, "outer", "place", 0, 1000);
        drop(lane);
        let snap = tracer.collect();
        assert_eq!(snap.lanes.len(), 1);
        let lane = &snap.lanes[0];
        assert_eq!(lane.name, "main");
        assert_eq!(lane.dropped, 0);
        // Sorted by start time at collection.
        assert_eq!(lane.spans[0].name, "outer");
        assert_eq!(lane.spans[1].name, "inner");
        assert_eq!(lane.spans[1].ts_ns, snap.base_unix_ns + 100);
        assert_eq!(lane.spans[1].dur_ns, 50);
    }

    #[test]
    fn instant_based_spans_use_the_epoch() {
        let tracer = Tracer::new();
        let mut lane = tracer.lane("main");
        let t0 = Instant::now();
        lane.span("work", "place", t0, Duration::from_micros(5));
        drop(lane);
        let snap = tracer.collect();
        let span = &snap.lanes[0].spans[0];
        assert_eq!(span.dur_ns, 5_000);
        assert!(span.ts_ns >= snap.base_unix_ns);
    }

    #[test]
    fn wraparound_evicts_oldest_and_counts_drops() {
        let tracer = Tracer::with_capacity(8);
        let mut lane = tracer.lane("main");
        for i in 0..100u64 {
            rel(&mut lane, "s", "place", i * 10, 5);
        }
        drop(lane);
        let snap = tracer.collect();
        let lane = &snap.lanes[0];
        assert_eq!(lane.spans.len(), 8);
        assert_eq!(lane.dropped, 92);
        assert_eq!(tracer.dropped(), 92);
        // The survivors are exactly the newest 8, still in order.
        let ts: Vec<u64> = lane
            .spans
            .iter()
            .map(|s| s.ts_ns - snap.base_unix_ns)
            .collect();
        assert_eq!(ts, (92..100).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn wraparound_preserves_containment_nesting() {
        // Parents recorded after their children (completion order, as
        // the real instrumentation does). After heavy eviction the
        // survivors must still profile without panicking and with
        // exclusive time <= inclusive time everywhere.
        let tracer = Tracer::with_capacity(16);
        let mut lane = tracer.lane("main");
        for step in 0..50u64 {
            let base = step * 1_000;
            for blk in 0..4u64 {
                rel(&mut lane, "move_block", "place", base + blk * 200, 180);
            }
            rel(&mut lane, "temp_step", "place", base, 900);
        }
        drop(lane);
        let snap = tracer.collect();
        assert_eq!(snap.lanes[0].spans.len(), 16);
        assert!(snap.dropped() > 0);
        let prof = profile(&snap);
        for row in &prof.rows {
            assert!(row.excl_ns <= row.incl_ns, "{row:?}");
        }
    }

    #[test]
    fn lane_checkout_is_exclusive_and_reusable() {
        let tracer = Tracer::with_capacity(16);
        let mut a = tracer.lane("main");
        rel(&mut a, "x", "place", 0, 1);
        // Same name while held: a distinct ring, not a shared writer.
        let mut b = tracer.lane("main");
        rel(&mut b, "y", "place", 5, 1);
        drop(a);
        drop(b);
        // After check-in the original ring is reused.
        let mut c = tracer.lane("main");
        rel(&mut c, "z", "place", 9, 1);
        drop(c);
        let snap = tracer.collect();
        assert_eq!(snap.lanes.len(), 2);
        let names: Vec<&str> = snap.lanes[0]
            .spans
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, ["x", "z"]);
        assert_eq!(snap.lanes[1].spans[0].name, "y");
    }

    #[test]
    fn concurrent_collect_never_tears_or_panics() {
        let tracer = Tracer::with_capacity(32);
        let writer = {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                let mut lane = tracer.lane("w");
                for i in 0..20_000u64 {
                    // dur encodes ts so a torn read would be visible.
                    lane.span_rel("s", "place", i, i + 1);
                }
            })
        };
        let mut seen = 0usize;
        while !writer.is_finished() {
            let snap = tracer.collect();
            for lane in &snap.lanes {
                for s in &lane.spans {
                    let i = s.ts_ns - snap.base_unix_ns;
                    assert_eq!(s.dur_ns, i + 1, "torn slot read");
                    seen += 1;
                }
            }
        }
        writer.join().unwrap();
        let snap = tracer.collect();
        assert_eq!(
            snap.lanes[0].spans.len() as u64 + snap.lanes[0].dropped,
            20_000
        );
        let _ = seen;
    }

    #[test]
    fn merge_stitches_lanes_by_name() {
        let mut a = TraceSnapshot {
            base_unix_ns: 100,
            lanes: vec![LaneSnapshot {
                name: "job".into(),
                spans: vec![SpanRecord {
                    name: "queued".into(),
                    cat: "serve".into(),
                    ts_ns: 100,
                    dur_ns: 10,
                }],
                dropped: 1,
            }],
        };
        let b = TraceSnapshot {
            base_unix_ns: 100,
            lanes: vec![
                LaneSnapshot {
                    name: "job".into(),
                    spans: vec![SpanRecord {
                        name: "running".into(),
                        cat: "serve".into(),
                        ts_ns: 120,
                        dur_ns: 10,
                    }],
                    dropped: 2,
                },
                LaneSnapshot {
                    name: "main".into(),
                    spans: vec![],
                    dropped: 0,
                },
            ],
        };
        a.merge(b);
        assert_eq!(a.lanes.len(), 2);
        assert_eq!(a.lanes[0].spans.len(), 2);
        assert_eq!(a.lanes[0].dropped, 3);
        assert_eq!(a.lanes[0].spans[1].name, "running");
    }
}
