//! Self-time attribution: folds a collected trace into per-span-name
//! inclusive/exclusive wall-time totals.
//!
//! Nesting is re-derived from time containment per lane: spans are
//! swept in start order with a stack of open ancestors, and each
//! span's duration is subtracted from the *exclusive* time of its
//! nearest enclosing span. Complete events make this robust to ring
//! eviction — a lost parent simply promotes its surviving children to
//! the next enclosing span (or to the lane root), never to a wrong
//! parent.

use std::collections::BTreeMap;

use crate::TraceSnapshot;

/// Aggregated wall time of one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Span name.
    pub name: String,
    /// Span category.
    pub cat: String,
    /// Occurrences across all lanes.
    pub count: u64,
    /// Total inclusive time (children counted), nanoseconds.
    pub incl_ns: u64,
    /// Total exclusive time (children subtracted), nanoseconds.
    pub excl_ns: u64,
}

/// A folded trace: rows sorted by exclusive time, descending.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Aggregated rows, hottest self-time first.
    pub rows: Vec<ProfileRow>,
    /// Wall clock covered: latest span end minus earliest span start,
    /// nanoseconds, across all lanes.
    pub wall_ns: u64,
    /// Total surviving spans folded.
    pub spans: u64,
    /// Total spans evicted before collection.
    pub dropped: u64,
}

impl Profile {
    /// The row for `name`, if present.
    pub fn row(&self, name: &str) -> Option<&ProfileRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Total exclusive time of every row in category `cat`.
    pub fn cat_excl_ns(&self, cat: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.cat == cat)
            .map(|r| r.excl_ns)
            .sum()
    }

    /// Renders the attribution table (top `top` rows by exclusive
    /// time, plus a per-category footer).
    pub fn format_table(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:<6} {:>9} {:>12} {:>12} {:>7}\n",
            "span", "cat", "count", "incl", "excl", "excl%"
        ));
        let total_excl: u64 = self.rows.iter().map(|r| r.excl_ns).sum();
        for row in self.rows.iter().take(top) {
            let pct = if total_excl > 0 {
                row.excl_ns as f64 / total_excl as f64 * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<20} {:<6} {:>9} {:>12} {:>12} {:>6.1}%\n",
                row.name,
                row.cat,
                row.count,
                fmt_ns(row.incl_ns),
                fmt_ns(row.excl_ns),
                pct
            ));
        }
        let mut cats: BTreeMap<&str, u64> = BTreeMap::new();
        for row in &self.rows {
            *cats.entry(row.cat.as_str()).or_default() += row.excl_ns;
        }
        out.push('\n');
        for (cat, ns) in cats {
            let pct = if total_excl > 0 {
                ns as f64 / total_excl as f64 * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<27} {:>12} {:>6.1}%\n",
                format!("cat:{cat}"),
                fmt_ns(ns),
                pct
            ));
        }
        out.push_str(&format!(
            "\nwall {}   spans {}   dropped {}\n",
            fmt_ns(self.wall_ns),
            self.spans,
            self.dropped
        ));
        out
    }
}

/// Humanizes nanoseconds (`532 ns`, `1.24 ms`, `3.50 s`).
pub(crate) fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns_f / 1e6)
    } else {
        format!("{:.2} s", ns_f / 1e9)
    }
}

/// Folds `snap` into per-name inclusive/exclusive totals.
pub fn profile(snap: &TraceSnapshot) -> Profile {
    // Aggregate rows keyed by (name, cat).
    let mut index: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut rows: Vec<ProfileRow> = Vec::new();
    let mut excl: Vec<i128> = Vec::new();
    let mut min_ts = u64::MAX;
    let mut max_end = 0u64;
    let mut spans = 0u64;

    for lane in &snap.lanes {
        // Start order; longer span first on ties so a parent sharing
        // its child's start time opens before the child.
        let mut order: Vec<&crate::SpanRecord> = lane.spans.iter().collect();
        order.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then(b.dur_ns.cmp(&a.dur_ns)));

        // Stack of open ancestors: (end_ns, row index).
        let mut stack: Vec<(u64, usize)> = Vec::new();
        for span in order {
            spans += 1;
            min_ts = min_ts.min(span.ts_ns);
            max_end = max_end.max(span.end_ns());
            while let Some(&(end, _)) = stack.last() {
                if end <= span.ts_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            let key = (span.name.clone(), span.cat.clone());
            let row = *index.entry(key).or_insert_with(|| {
                rows.push(ProfileRow {
                    name: span.name.clone(),
                    cat: span.cat.clone(),
                    count: 0,
                    incl_ns: 0,
                    excl_ns: 0,
                });
                excl.push(0);
                rows.len() - 1
            });
            rows[row].count += 1;
            rows[row].incl_ns += span.dur_ns;
            excl[row] += i128::from(span.dur_ns);
            if let Some(&(parent_end, parent)) = stack.last() {
                if span.end_ns() <= parent_end {
                    // Contained: self time moves from parent to child.
                    excl[parent] -= i128::from(span.dur_ns);
                } else {
                    // Partial overlap (clock skew at a boundary):
                    // treat as a sibling rather than misattribute.
                    stack.pop();
                }
            }
            stack.push((span.end_ns(), row));
        }
    }

    for (row, e) in rows.iter_mut().zip(excl) {
        row.excl_ns = u64::try_from(e.max(0)).unwrap_or(0);
    }
    rows.sort_by(|a, b| b.excl_ns.cmp(&a.excl_ns).then(a.name.cmp(&b.name)));
    Profile {
        rows,
        wall_ns: max_end.saturating_sub(if min_ts == u64::MAX { 0 } else { min_ts }),
        spans,
        dropped: snap.dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LaneSnapshot, SpanRecord, TraceSnapshot};

    fn span(name: &str, cat: &str, ts: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat: cat.into(),
            ts_ns: ts,
            dur_ns: dur,
        }
    }

    fn snap(spans: Vec<SpanRecord>) -> TraceSnapshot {
        TraceSnapshot {
            base_unix_ns: 0,
            lanes: vec![LaneSnapshot {
                name: "main".into(),
                spans,
                dropped: 0,
            }],
        }
    }

    #[test]
    fn exclusive_time_subtracts_children() {
        let p = profile(&snap(vec![
            span("temp_step", "place", 0, 1_000),
            span("move_block", "place", 100, 300),
            span("move_block", "place", 500, 300),
        ]));
        let step = p.row("temp_step").unwrap();
        assert_eq!(step.incl_ns, 1_000);
        assert_eq!(step.excl_ns, 400);
        let blocks = p.row("move_block").unwrap();
        assert_eq!(blocks.count, 2);
        assert_eq!(blocks.incl_ns, 600);
        assert_eq!(blocks.excl_ns, 600);
        assert_eq!(p.wall_ns, 1_000);
        // Hottest self time sorts first.
        assert_eq!(p.rows[0].name, "move_block");
    }

    #[test]
    fn grandchildren_subtract_from_their_own_parent() {
        let p = profile(&snap(vec![
            span("run", "run", 0, 10_000),
            span("temp_step", "place", 1_000, 4_000),
            span("move_block", "place", 1_500, 2_000),
        ]));
        assert_eq!(p.row("run").unwrap().excl_ns, 6_000);
        assert_eq!(p.row("temp_step").unwrap().excl_ns, 2_000);
        assert_eq!(p.row("move_block").unwrap().excl_ns, 2_000);
    }

    #[test]
    fn shared_start_times_nest_longer_span_outside() {
        let p = profile(&snap(vec![
            span("outer", "place", 0, 100),
            span("inner", "place", 0, 40),
        ]));
        assert_eq!(p.row("outer").unwrap().excl_ns, 60);
        assert_eq!(p.row("inner").unwrap().excl_ns, 40);
    }

    #[test]
    fn partial_overlap_counts_as_sibling() {
        let p = profile(&snap(vec![
            span("a", "place", 0, 100),
            span("b", "place", 50, 100),
        ]));
        // Not contained, so no subtraction happens.
        assert_eq!(p.row("a").unwrap().excl_ns, 100);
        assert_eq!(p.row("b").unwrap().excl_ns, 100);
        assert_eq!(p.wall_ns, 150);
    }

    #[test]
    fn lanes_fold_independently() {
        let mut s = snap(vec![span("x", "place", 0, 100)]);
        s.lanes.push(LaneSnapshot {
            name: "replica1".into(),
            spans: vec![span("x", "place", 10, 100)],
            dropped: 3,
        });
        let p = profile(&s);
        let x = p.row("x").unwrap();
        assert_eq!(x.count, 2);
        assert_eq!(x.incl_ns, 200);
        assert_eq!(x.excl_ns, 200);
        assert_eq!(p.dropped, 3);
    }

    #[test]
    fn table_renders_rows_and_categories() {
        let p = profile(&snap(vec![
            span("temp_step", "place", 0, 1_000),
            span("net_span", "cost", 100, 200),
        ]));
        let table = p.format_table(10);
        assert!(table.contains("temp_step"));
        assert!(table.contains("cat:cost"));
        assert!(table.contains("dropped 0"));
    }
}
