//! Render a placed-and-routed chip as SVG — the view the paper's
//! Figs. 8–9 show: cells, critical-region channels (shaded by whether
//! they carry routed nets), and the route trees.
//!
//! ```sh
//! cargo run --release --example render_placement [outfile.svg]
//! ```

use timberwolfmc::core::{render_svg, run_timberwolf, RenderOptions, TimberWolfConfig};
use timberwolfmc::netlist::{synthesize, SynthParams};
use timberwolfmc::place::PlaceParams;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "placement.svg".to_owned());

    let circuit = synthesize(&SynthParams {
        cells: 12,
        nets: 30,
        pins: 110,
        custom_fraction: 0.25,
        rectilinear_fraction: 0.3,
        seed: 9,
        ..Default::default()
    });
    let config = TimberWolfConfig {
        place: PlaceParams {
            attempts_per_cell: 80,
            ..Default::default()
        },
        seed: 9,
        ..Default::default()
    };
    eprintln!("placing and routing {} cells...", circuit.stats().cells);
    let result = run_timberwolf(&circuit, &config);

    let svg = render_svg(
        &result.placement,
        Some(&result.stage2.final_routing),
        result.chip,
        &RenderOptions::default(),
    );
    std::fs::write(&out, &svg).expect("writable output path");
    println!(
        "wrote {out}: chip {} x {}, TEIL {:.0}, {} channels, {} routed nets",
        result.chip.width(),
        result.chip.height(),
        result.teil,
        result.stage2.final_routing.graph.len(),
        result
            .stage2
            .final_routing
            .routes
            .iter()
            .filter(|r| r.is_some())
            .count(),
    );
}
