//! Table-4-style comparison on one paper-profile circuit: TimberWolfMC
//! versus the quadratic (resistive-network), greedy, and shelf baselines.
//!
//! ```sh
//! cargo run --release --example baseline_comparison [circuit] [seed]
//! ```
//!
//! `circuit` is one of the paper's nine names (default `i3`, the
//! smallest).

use timberwolfmc::core::{
    compare, format_table4, greedy_placement, quadratic_placement, run_timberwolf, shelf_placement,
    TimberWolfConfig,
};
use timberwolfmc::estimator::EstimatorParams;
use timberwolfmc::netlist::{paper_circuit, synthesize_profile};
use timberwolfmc::place::PlaceParams;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "i3".to_owned());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let profile = paper_circuit(&name).unwrap_or_else(|| {
        eprintln!("unknown circuit `{name}`; expected one of i1,p1,x1,i2,i3,l1,d2,d1,d3");
        std::process::exit(1);
    });
    let circuit = synthesize_profile(profile, seed);
    let stats = circuit.stats();
    println!(
        "{name}: {} cells, {} nets, {} pins (synthetic circuit at the published size)\n",
        stats.cells, stats.nets, stats.pins
    );

    let config = TimberWolfConfig {
        place: PlaceParams {
            attempts_per_cell: 60,
            ..Default::default()
        },
        seed,
        ..Default::default()
    };
    let est = EstimatorParams::default();

    println!("running TimberWolfMC...");
    let twmc = run_timberwolf(&circuit, &config);
    println!("running quadratic baseline...");
    let quad = quadratic_placement(&circuit, &est, seed);
    println!("running greedy baseline...");
    let greedy = greedy_placement(&circuit, &est, 60, seed);
    println!("running shelf baseline...\n");
    let shelf = shelf_placement(&circuit, &est, seed);

    let rows = vec![
        compare(&name, &stats, &twmc, &quad),
        compare(&name, &stats, &twmc, &greedy),
        compare(&name, &stats, &twmc, &shelf),
    ];
    println!("{}", format_table4(&rows));

    println!(
        "(paper Table 4 reports TEIL reductions of 8-49% and area reductions of 4-56%\n\
         against resistive-network, CIPAR, and manual placements)"
    );
}
