//! Quickstart: place and globally route a small macro-cell circuit
//! end-to-end, printing the numbers the paper reports (TEIL, chip area,
//! stage-2 stability).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use timberwolfmc::core::{run_timberwolf, TimberWolfConfig};
use timberwolfmc::netlist::{synthesize, SynthParams};
use timberwolfmc::place::PlaceParams;

fn main() {
    // A 15-cell macro circuit, the scale of the paper's smaller tests.
    let circuit = synthesize(&SynthParams {
        cells: 15,
        nets: 40,
        pins: 150,
        custom_fraction: 0.0,
        seed: 42,
        ..Default::default()
    });
    let stats = circuit.stats();
    println!(
        "circuit: {} cells, {} nets, {} pins",
        stats.cells, stats.nets, stats.pins
    );

    let config = TimberWolfConfig {
        place: PlaceParams {
            attempts_per_cell: 50,
            ..Default::default()
        },
        seed: 42,
        ..Default::default()
    };
    let result = run_timberwolf(&circuit, &config);

    println!("\n== stage 1 (annealing placement) ==");
    println!("TEIL              : {:>10.0}", result.stage1.teil);
    println!(
        "chip bbox         : {:>6} x {}",
        result.stage1.chip.width(),
        result.stage1.chip.height()
    );
    println!("residual overlap  : {:>10}", result.stage1.residual_overlap);
    println!("temperatures      : {:>10}", result.stage1.history.len());
    println!(
        "move acceptance   : {:>9.1}%",
        100.0 * result.stage1.moves.accepts() as f64 / result.stage1.moves.attempts().max(1) as f64
    );

    println!("\n== stage 2 (channel definition + global routing + refinement) ==");
    for (k, r) in result.stage2.records.iter().enumerate() {
        println!(
            "refinement {}: routed length {:>7}, overflow {:>3}, max channel density {:>3}, TEIL {:.0} -> {:.0}",
            k + 1,
            r.routed_length,
            r.overflow,
            r.max_density,
            r.teil_before,
            r.teil_after,
        );
    }

    println!("\n== final ==");
    println!("TEIL              : {:>10.0}", result.teil);
    println!(
        "chip bbox         : {:>6} x {}",
        result.chip.width(),
        result.chip.height()
    );
    println!("routed length     : {:>10}", result.routed_length);
    println!(
        "stage-2 TEIL drift: {:>9.1}%  (Table 3 reports small values — the estimator was accurate)",
        100.0 * result.stage2_teil_change()
    );
    println!(
        "stage-2 area drift: {:>9.1}%",
        100.0 * result.stage2_area_change()
    );

    println!("\nfinal placement:");
    for cell in &result.placement {
        println!(
            "  {:<6} at ({:>5}, {:>5})  {:>3?}  {}x{}",
            cell.name,
            cell.pos.x,
            cell.pos.y,
            cell.orientation,
            cell.bbox.width(),
            cell.bbox.height(),
        );
    }
}
