//! Validates a `--telemetry` JSONL stream: every line must parse as a
//! known, schema-complete event, and the stream must cover the core
//! pipeline kinds. Used by CI as the telemetry smoke check.
//!
//! ```sh
//! cargo run --release --example validate_telemetry run.jsonl
//! ```

use std::process::ExitCode;

use timberwolfmc::obs::validate::{expect_kinds, validate_jsonl};

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_telemetry FILE.jsonl");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = match validate_jsonl(&text) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("{path}: invalid telemetry stream: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = expect_kinds(
        &stats,
        &["run_start", "place_temp", "stage_span", "run_end"],
    ) {
        eprintln!("{path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{path}: {} events valid", stats.lines);
    for (kind, count) in &stats.kind_counts {
        println!("  {kind:<16} {count}");
    }
    ExitCode::SUCCESS
}
