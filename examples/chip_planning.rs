//! Chip planning: a mixed macro/custom circuit exercising the features
//! no prior simulated-annealing placer combined (paper §1): custom-cell
//! pin placement, aspect-ratio selection, instance selection, rectilinear
//! macro geometry, and all eight orientations — simultaneously.
//!
//! ```sh
//! cargo run --release --example chip_planning
//! ```

use timberwolfmc::core::{run_timberwolf, TimberWolfConfig};
use timberwolfmc::geom::{Point, Rect, Side, TileSet};
use timberwolfmc::netlist::{AspectRange, NetPin, NetlistBuilder, SideSet};
use timberwolfmc::place::PlaceParams;

fn main() {
    let mut b = NetlistBuilder::new();

    // An L-shaped fixed macro (controller) with pins on several edges.
    let ctl = b.add_macro(
        "ctl",
        TileSet::new(vec![
            Rect::from_wh(0, 0, 40, 16),
            Rect::from_wh(0, 16, 18, 14),
        ])
        .expect("L tiles disjoint"),
    );
    let ctl_pins: Vec<_> = [
        ("clk", Point::new(0, 8)),
        ("d0", Point::new(40, 4)),
        ("d1", Point::new(40, 10)),
        ("a0", Point::new(18, 22)),
        ("a1", Point::new(10, 30)),
        ("en", Point::new(20, 0)),
    ]
    .iter()
    .map(|(n, p)| b.add_fixed_pin(ctl, n, *p).expect("pin on boundary"))
    .collect();

    // A macro with two selectable instances (wide and tall datapath).
    let dp = b.add_macro("dp", TileSet::rect(50, 20));
    let dp_in = b.add_fixed_pin(dp, "in", Point::new(0, 10)).expect("pin");
    let dp_out = b.add_fixed_pin(dp, "out", Point::new(50, 10)).expect("pin");
    let dp_clk = b.add_fixed_pin(dp, "clk", Point::new(25, 0)).expect("pin");
    b.add_instance(
        dp,
        "tall",
        TileSet::rect(20, 50),
        vec![Point::new(0, 25), Point::new(20, 25), Point::new(10, 0)],
    )
    .expect("instance pins");

    // Two custom cells with estimated area, continuous aspect range, and
    // uncommitted pins: a register file with a sequenced data bus, and a
    // RAM with edge-restricted pins.
    let rf = b.add_custom(
        "rf",
        1200,
        AspectRange::Continuous { min: 0.5, max: 2.0 },
        8,
    );
    let rf_bus: Vec<_> = (0..4)
        .map(|i| {
            b.add_site_pin(rf, &format!("q{i}"), SideSet::ALL)
                .expect("custom pin")
        })
        .collect();
    b.add_group(
        rf,
        "qbus",
        SideSet::of(&[Side::Left, Side::Right]),
        true, // sequenced: q0..q3 keep their order along the edge
        rf_bus.clone(),
    )
    .expect("group");
    let rf_clk = b
        .add_site_pin(rf, "clk", SideSet::single(Side::Bottom))
        .expect("pin");

    let ram = b.add_custom("ram", 2000, AspectRange::Discrete(vec![0.5, 1.0, 2.0]), 8);
    let ram_d: Vec<_> = (0..4)
        .map(|i| {
            b.add_site_pin(ram, &format!("d{i}"), SideSet::of(&[Side::Left, Side::Top]))
                .expect("custom pin")
        })
        .collect();
    let ram_en = b.add_site_pin(ram, "en", SideSet::ALL).expect("pin");
    let ram_a = b
        .add_site_pin(ram, "a", SideSet::of(&[Side::Bottom, Side::Right]))
        .expect("pin");

    // Nets: clock tree, data buses, control. The dp "in" has an
    // electrically-equivalent alternative on the controller (d0/d1 pair).
    b.add_simple_net("clk", &[ctl_pins[0], dp_clk, rf_clk])
        .expect("net");
    b.add_net(
        "dbus0",
        vec![
            NetPin {
                primary: ctl_pins[1],
                equivalents: vec![ctl_pins[2]],
            },
            NetPin::simple(dp_in),
            NetPin::simple(ram_d[0]),
        ],
        1.0,
        1.0,
    )
    .expect("net");
    b.add_simple_net("dbus1", &[dp_out, rf_bus[0], ram_d[1]])
        .expect("net");
    b.add_simple_net("dbus2", &[rf_bus[1], ram_d[2]])
        .expect("net");
    b.add_simple_net("dbus3", &[rf_bus[2], ram_d[3]])
        .expect("net");
    b.add_simple_net("abus", &[ctl_pins[3], rf_bus[3]])
        .expect("net");
    b.add_simple_net("en", &[ctl_pins[5], ram_en]).expect("net");
    b.add_simple_net("a1", &[ctl_pins[4], ram_a]).expect("net");

    let circuit = b.build().expect("valid netlist");
    println!(
        "chip plan: {} cells ({} custom), {} nets, {} pins",
        circuit.stats().cells,
        circuit.cells().iter().filter(|c| c.is_custom()).count(),
        circuit.stats().nets,
        circuit.stats().pins
    );

    let config = TimberWolfConfig {
        place: PlaceParams {
            attempts_per_cell: 120,
            ..Default::default()
        },
        seed: 7,
        ..Default::default()
    };
    let result = run_timberwolf(&circuit, &config);

    println!(
        "\nfinal chip plan ({} x {}):",
        result.chip.width(),
        result.chip.height()
    );
    for cell in &result.placement {
        let c = circuit.cell_by_name(&cell.name).expect("cell exists");
        let kind = if c.is_custom() {
            format!("custom, aspect {:.2}", cell.aspect)
        } else if c.instance_count() > 1 {
            format!("macro, instance {}", cell.instance)
        } else {
            "macro".to_owned()
        };
        println!(
            "  {:<4} {:>4}x{:<4} at ({:>5},{:>5}) {:>5?}  [{kind}]",
            cell.name,
            cell.bbox.width(),
            cell.bbox.height(),
            cell.pos.x,
            cell.pos.y,
            cell.orientation,
        );
    }
    println!(
        "\nTEIL {:.0}, routed length {}",
        result.teil, result.routed_length
    );
    println!(
        "stage-2 drift: TEIL {:+.1}%, area {:+.1}%",
        100.0 * result.stage2_teil_change(),
        100.0 * result.stage2_area_change()
    );
}
