//! Import a chip described in YAL (the MCNC macro-cell benchmark
//! format) and run the full TimberWolfMC flow on it.
//!
//! ```sh
//! cargo run --release --example yal_import [file.yal]
//! ```
//!
//! Defaults to the bundled `examples/data/fab9.yal`, a 9-block chip in
//! the style of the apte/xerox benchmarks.

use timberwolfmc::core::{render_svg, run_timberwolf, RenderOptions, TimberWolfConfig};
use timberwolfmc::netlist::parse_yal;
use timberwolfmc::place::PlaceParams;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data/fab9.yal").into());
    let text = std::fs::read_to_string(&path).expect("readable YAL file");
    let circuit = parse_yal(&text).expect("valid YAL");
    let stats = circuit.stats();
    println!(
        "{path}: {} cells, {} nets, {} pins",
        stats.cells, stats.nets, stats.pins
    );
    for cell in circuit.cells() {
        let s = cell.default_shape();
        println!(
            "  {:<8} {:>4} x {:<4} ({} tiles, {} pins)",
            cell.name,
            s.width(),
            s.height(),
            s.tiles().len(),
            cell.pins.len()
        );
    }

    let config = TimberWolfConfig {
        place: PlaceParams {
            attempts_per_cell: 100,
            ..Default::default()
        },
        seed: 1988,
        ..Default::default()
    };
    let result = run_timberwolf(&circuit, &config);
    println!(
        "\nplaced: TEIL {:.0}, chip {} x {}, routed length {}",
        result.teil,
        result.chip.width(),
        result.chip.height(),
        result.routed_length
    );
    let svg = render_svg(
        &result.placement,
        Some(&result.stage2.final_routing),
        result.chip,
        &RenderOptions::default(),
    );
    std::fs::write("fab9.svg", svg).expect("writable cwd");
    println!("wrote fab9.svg");
}
