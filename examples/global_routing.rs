//! Global routing on a fixed placement: channel definition, the channel
//! graph, M-shortest-path route enumeration, and congestion-driven route
//! selection — the machinery of the paper's §4.1–4.2, shown in isolation.
//!
//! ```sh
//! cargo run --release --example global_routing
//! ```

use timberwolfmc::geom::{Point, Rect, TileSet};
use timberwolfmc::route::{
    critical_regions, global_route, ChannelKind, NetPins, PlacedGeometry, RouterParams,
};

fn main() {
    // A hand-made floorplan: five cells, one rectilinear, as in the
    // paper's Fig. 8.
    let geometry = PlacedGeometry {
        cells: vec![
            (TileSet::rect(30, 25), Point::new(-48, -40)), // C1 SW
            (TileSet::rect(30, 30), Point::new(-44, -4)),  // C2 NW
            (TileSet::rect(26, 20), Point::new(14, 16)),   // C3 NE
            (
                // C4: L-shaped like the paper's 12-edge cell
                TileSet::new(vec![
                    Rect::from_wh(0, 0, 36, 16),
                    Rect::from_wh(0, 16, 16, 18),
                ])
                .expect("L tiles disjoint"),
                Point::new(-6, -42),
            ),
            (TileSet::rect(20, 24), Point::new(24, -16)), // C5 E
        ],
        core: Rect::from_wh(-55, -50, 110, 96),
    };

    // Channel definition.
    let regions = critical_regions(&geometry);
    let vertical = regions
        .iter()
        .filter(|r| r.kind == ChannelKind::Vertical)
        .count();
    println!(
        "channel definition: {} critical regions ({} vertical, {} horizontal)",
        regions.len(),
        vertical,
        regions.len() - vertical
    );
    let overlapping = regions
        .iter()
        .enumerate()
        .flat_map(|(i, a)| regions[i + 1..].iter().map(move |b| (a, b)))
        .filter(|(a, b)| a.rect.overlap_area(b.rect) > 0)
        .count();
    println!("overlapping region pairs kept (Chen's method would drop these): {overlapping}");

    // Nets: pins sit on cell edges; net 2 has an equivalent pin pair.
    let nets = vec![
        NetPins {
            // C1 east edge to C4 west edge.
            points: vec![vec![Point::new(-18, -30)], vec![Point::new(-6, -30)]],
        },
        NetPins {
            // C2 north to C3 west, three-pin with C5 north.
            points: vec![
                vec![Point::new(-30, 26)],
                vec![Point::new(14, 24)],
                vec![Point::new(34, 8)],
            ],
        },
        NetPins {
            // C4 top to either of two equivalent C3 pins.
            points: vec![
                vec![Point::new(2, -8)],
                vec![Point::new(20, 16), Point::new(40, 16)],
            ],
        },
        NetPins {
            // A long cross-chip net.
            points: vec![vec![Point::new(-48, -20)], vec![Point::new(44, -4)]],
        },
    ];

    let params = RouterParams::default();
    let routing = global_route(&geometry, &nets, &params, 42);

    println!("\nglobal routing:");
    println!(
        "  channel graph: {} nodes, {} edges",
        routing.graph.len(),
        routing.graph.edges.len()
    );
    println!("  total length L = {}", routing.total_length());
    println!("  overflow X     = {}", routing.overflow());
    println!("  unrouted nets  = {}", routing.unrouted);

    for (i, route) in routing.routes.iter().enumerate() {
        match route {
            Some(tree) => println!(
                "  net {i}: length {:>4}, {} channels, {} segments",
                tree.length,
                tree.nodes.len(),
                tree.edges.len()
            ),
            None => println!("  net {i}: UNROUTED"),
        }
    }

    // Channel widths the refinement step would enforce (eq. 22).
    println!("\nbusiest channels (width = (d+2)*t_s):");
    let mut dense: Vec<(usize, u32)> = routing
        .node_density
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, d)| d > 0)
        .collect();
    dense.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
    for &(node, d) in dense.iter().take(5) {
        let r = &routing.graph.nodes[node].region;
        println!(
            "  {:?} channel {} (separation {:>3}): density {}, required width {:.0}",
            r.kind,
            r.rect,
            r.separation(),
            d,
            routing.required_width(node, params.track_spacing)
        );
    }
}
